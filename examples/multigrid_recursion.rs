//! Recursion through the interface (paper §5.2e): a multigrid LISI
//! solver whose **coarse-grid solver is itself a LISI solver** — the RMG
//! component's coarsest level is handed to an RSLU (direct) adapter
//! through the very same `SparseSolver` interface. This is the
//! "multi-level solver developer can use LISI on each level solve" mode
//! the paper describes.
//!
//! ```text
//! cargo run --example multigrid_recursion
//! ```

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    RmgAdapter, RsluAdapter, SolveReport, SparseSolverPort, SparseStruct, STATUS_LEN,
};

fn main() {
    let m = 31; // coarsens 31 → 15 → 7 → 3 → 1
    let a = cca_lisi::sparse::generate::laplacian_2d(m);
    let n = m * m;
    let x_true = cca_lisi::sparse::generate::random_vector(n, 42);
    let b = a.matvec(&x_true).unwrap();
    println!("multigrid on {m}×{m} Poisson, coarse level solved by a nested LISI/RSLU solver");

    let results = Universe::run(1, |comm| {
        let outer = RmgAdapter::new();

        // The nested LISI solver: every coarse-grid visit spins up an
        // RSLU adapter and drives it through the standard interface —
        // re-entrancy in action.
        let coarse_comm = comm.dup().unwrap();
        outer.set_coarse_solver(move |a_c, b_c| {
            let nc = a_c.rows();
            let inner = RsluAdapter::new();
            inner
                .initialize(coarse_comm.dup().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            inner.set_start_row(0).map_err(|e| e.to_string())?;
            inner.set_local_rows(nc).map_err(|e| e.to_string())?;
            inner.set_global_cols(nc).map_err(|e| e.to_string())?;
            inner
                .setup_matrix(a_c.values(), a_c.row_ptr(), a_c.col_idx(), SparseStruct::Csr)
                .map_err(|e| e.to_string())?;
            inner.setup_rhs(b_c, 1).map_err(|e| e.to_string())?;
            let mut x = vec![0.0; nc];
            let mut status = [0.0; STATUS_LEN];
            inner.solve(&mut x, &mut status).map_err(|e| e.to_string())?;
            Ok(x)
        });

        outer.initialize(comm.dup().unwrap()).unwrap();
        outer.set_start_row(0).unwrap();
        outer.set_local_rows(n).unwrap();
        outer.set_global_cols(n).unwrap();
        outer.set("cycle", "v").unwrap();
        outer.set("smoother", "sgs").unwrap();
        outer.set_double("tol", 1e-10).unwrap();
        outer
            .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
            .unwrap();
        outer.setup_rhs(&b, 1).unwrap();
        let mut x = vec![0.0; n];
        let mut status = [0.0; STATUS_LEN];
        outer.solve(&mut x, &mut status).unwrap();
        (SolveReport::from_slice(&status), x)
    });

    let (report, x) = &results[0];
    let err = x
        .iter()
        .zip(&x_true)
        .fold(0.0f64, |mx, (g, e)| mx.max((g - e).abs()));
    println!("converged : {}", report.converged);
    println!("V-cycles  : {}", report.iterations);
    println!("max error : {err:.3e}");
    assert!(report.converged && err < 1e-6);
    assert!(report.iterations < 25, "multigrid should need O(1) cycles");
    println!("OK — a LISI solver ran inside a LISI solver");
}
