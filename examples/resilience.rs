//! Surviving failures: the resilient driver rides a seeded fault.
//!
//! A fault plan poisons rank 2's contribution to CG's ‖r₀‖ reduction, so
//! the first solve attempt diverges on every rank. The resilient driver
//! then swaps its backend uses port — a CCA builder `disconnect` +
//! `connect`, visible in the event log — to GMRES and, if need be, to
//! the RSLU direct solver, and the solve completes. The recovery is
//! visible in the status array: attempts ≥ 2, recovery code 2.
//!
//! ```text
//! cargo run --example resilience
//! RSPARSE_FAULTS='op=recv,rank=1,tag=7001,call=1,kind=corrupt' cargo run --example resilience
//! RSPARSE_PROBE=json cargo run --example resilience   # per-attempt JSONL events
//! ```

use std::sync::Arc;

use cca_lisi::cca::{BuilderEvent, Framework};
use cca_lisi::comm::Universe;
use cca_lisi::lisi::resilient::{FrameworkSwitch, ResilientSolverComponent, BACKEND_PORT};
use cca_lisi::lisi::{
    SolveReport, SolverComponent, SparseSolverPort, SparseStruct, STATUS_LEN,
};
use cca_lisi::sparse::{generate, BlockRowPartition};
use parking_lot::RwLock;

const RANKS: usize = 4;
const N_SIDE: usize = 20;

/// One resilient solve over the 2-D Laplacian; returns each rank's
/// report and the builder events that rewired the backend port.
fn solve_once() -> Vec<(SolveReport, Vec<String>, f64)> {
    let a = generate::laplacian_2d(N_SIDE);
    let n = N_SIDE * N_SIDE;
    let b = vec![1.0; n];
    Universe::run(RANKS, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();

        // SPMD: every rank assembles the identical component cohort.
        let fw = Arc::new(RwLock::new(Framework::with_registry(
            cca_lisi::cca::sidl::SidlRegistry::lisi(),
        )));
        let (driver, res_id, cg_id, gmres_id, lu_id) = {
            let mut f = fw.write();
            let comp = ResilientSolverComponent::new();
            let driver = comp.solver();
            let res_id = f.instantiate("resilient", Box::new(comp)).unwrap();
            let cg_id = f.instantiate("cg", Box::new(SolverComponent::rksp())).unwrap();
            let gmres_id =
                f.instantiate("gmres", Box::new(SolverComponent::rksp())).unwrap();
            let lu_id = f.instantiate("lu", Box::new(SolverComponent::rslu())).unwrap();
            (driver, res_id, cg_id, gmres_id, lu_id)
        };
        let switch = FrameworkSwitch::new(&fw, res_id, BACKEND_PORT)
            .with_provider("cg", cg_id)
            .with_provider("gmres", gmres_id)
            .with_provider("lu", lu_id);
        driver.set_backends(Arc::new(switch));

        driver.initialize(comm.dup().unwrap()).unwrap();
        driver.set_start_row(range.start).unwrap();
        driver.set_local_rows(range.len()).unwrap();
        driver.set_global_cols(n).unwrap();
        driver.set_double("tol", 1e-10).unwrap();
        driver
            .set(
                "retry_policy",
                "cg:solver=cg -> gmres:solver=gmres,restart=30 -> lu",
            )
            .unwrap();
        driver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        driver.setup_rhs(&b[range.clone()], 1).unwrap();

        let mut x = vec![0.0; range.len()];
        let mut status = vec![0.0; STATUS_LEN];
        // Exhaustion still writes the status array; the demo reports it.
        let _ = driver.solve(&mut x, &mut status);

        let events: Vec<String> = fw
            .read()
            .events()
            .iter()
            .filter_map(|e| match e {
                BuilderEvent::Connected { uses_port, provider, .. }
                    if uses_port == BACKEND_PORT =>
                {
                    Some(format!("connect -> {provider}"))
                }
                BuilderEvent::Disconnected { uses_port, .. } if uses_port == BACKEND_PORT => {
                    Some("disconnect".into())
                }
                _ => None,
            })
            .collect();

        // ‖b − A·x‖∞ over the gathered solution. Rank-divergent fault
        // plans (kind=error) can leave one rank still retrying while its
        // peers reach this gather; the laggard's watchdog then fails the
        // collective. That is expected skew, not a bug — report the
        // residual as unknown (NaN) instead of unwrapping.
        let resid = match comm.allgatherv(&x) {
            Ok(full) => {
                let a = generate::laplacian_2d(N_SIDE);
                let ax = a.matvec(&full).unwrap();
                ax.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max)
            }
            Err(_) => f64::NAN,
        };
        (SolveReport::from_slice(&status), events, resid)
    })
}

fn main() {
    println!(
        "Resilient solve demo: {RANKS} ranks, 2-D Laplacian {n}x{n}, \
         policy cg -> gmres(30) -> lu\n",
        n = N_SIDE
    );

    // Default the probe to the summary sink so the cross-rank analytics
    // at the end always have spans to chew on; RSPARSE_PROBE overrides.
    if cca_lisi::probe::mode() == cca_lisi::probe::ProbeMode::Off {
        cca_lisi::probe::set_mode(cca_lisi::probe::ProbeMode::Summary);
    }
    cca_lisi::probe::reset();

    // Honor an operator-supplied RSPARSE_FAULTS plan; otherwise arm the
    // canonical demo fault (rank 2 poisons CG's ‖r₀‖ reduction).
    let custom_plan = std::env::var("RSPARSE_FAULTS").ok().filter(|s| !s.trim().is_empty());
    let spec = custom_plan
        .clone()
        .unwrap_or_else(|| "op=allreduce,rank=2,call=2,kind=corrupt;seed=11".into());
    println!("fault plan: {spec}");
    cca_lisi::comm::fault::arm(cca_lisi::comm::FaultPlan::parse(&spec).expect("bad fault plan"));

    let faulted = solve_once();
    cca_lisi::comm::fault::disarm();

    println!("\n-- with the fault armed --");
    for (rank, (rep, events, resid)) in faulted.iter().enumerate() {
        println!(
            "rank {rank}: converged={} attempts={} recovery={} its={} resid_inf={resid:.2e}",
            rep.converged, rep.attempts, rep.recovery, rep.iterations
        );
        if rank == 0 {
            println!("  backend port rewiring: {}", events.join(", "));
        }
    }

    let clean = solve_once();
    println!("\n-- fault disarmed (control) --");
    let (rep, _, resid) = &clean[0];
    println!(
        "rank 0: converged={} attempts={} recovery={} its={} resid_inf={resid:.2e}",
        rep.converged, rep.attempts, rep.recovery, rep.iterations
    );

    // A custom plan can be anything from benign (delay) to unrecoverable,
    // so the recovery-shape asserts only apply to the canonical demo
    // fault; `scripts/fault_matrix.sh` sweeps custom plans and reads the
    // printed outcomes instead.
    if custom_plan.is_none() {
        assert!(
            faulted.iter().all(|(r, _, _)| r.converged && r.attempts >= 2 && r.recovery == 2)
        );
    }
    assert!(clean.iter().all(|(r, _, _)| r.converged && r.attempts == 1 && r.recovery == 0));
    println!("\nrecovered: the swap is CCA re-wiring, not solver-specific code.");

    // Cross-rank analytics (cumulative over both runs): which spans skew
    // across ranks, how much time each rank spent blocked, and who sent
    // what to whom.
    let reports = cca_lisi::probe::aggregate();
    println!();
    print!("{}", cca_lisi::probe::render_imbalance(&reports));
    print!("{}", cca_lisi::probe::render_wait_attribution(&reports));
    print!("{}", cca_lisi::probe::render_comm_matrix(&reports));
    // With RSPARSE_TRACE=1 the causal trace of the last solve yields a
    // critical-path attribution; empty (and silent) otherwise.
    print!("{}", cca_lisi::probe::critpath::render_latest());
}
