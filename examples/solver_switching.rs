//! The paper's Figure 4 demo: one driver component, three solver
//! components (RKSP, RAztec, RSLU), and the builder service rewiring the
//! driver's uses port from one to the next at run time — no change to the
//! driver's code, which only ever talks to `lisi.SparseSolver`.
//!
//! ```text
//! cargo run --example solver_switching
//! ```

use std::sync::Arc;

use cca_lisi::cca::{BuilderService, CcaResult, Component, Framework, Services};
use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    SolveReport, SolverComponent, SparseSolverPort, SparseStruct, SOLVER_PORT,
    SOLVER_PORT_TYPE, STATUS_LEN,
};
use cca_lisi::sparse::BlockRowPartition;

/// The application component: it *uses* a solver port and never names a
/// package.
struct Driver;
impl Component for Driver {
    fn set_services(&mut self, services: &Services) -> CcaResult<()> {
        services.register_uses_port("solver", SOLVER_PORT_TYPE)
    }
}

fn main() {
    let m = 30;
    let manufactured = cca_lisi::mesh::manufactured::paper_manufactured(m);
    let n = manufactured.exact.len();
    let ranks = 2;
    println!("Figure 4 demo: same driver, three solver components, {ranks} ranks\n");

    let results = Universe::run(ranks, |comm| {
        // Every rank builds the identical component assembly (a cohort
        // per component).
        let mut fw = Framework::with_registry(cca_lisi::cca::sidl::SidlRegistry::lisi());
        let (driver, rksp, raztec, rslu) = {
            // Assemble the application through the builder service, as a
            // Ccaffeine script would.
            let mut builder = BuilderService::new(&mut fw);
            let driver = builder.create_instance("driver", Box::new(Driver)).unwrap();
            let rksp = builder
                .create_instance("rksp", Box::new(SolverComponent::rksp()))
                .unwrap();
            let raztec = builder
                .create_instance("raztec", Box::new(SolverComponent::raztec()))
                .unwrap();
            let rslu = builder
                .create_instance("rslu", Box::new(SolverComponent::rslu()))
                .unwrap();
            (driver, rksp, raztec, rslu)
        };

        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = manufactured.matrix.row_block(range.start, range.end).unwrap();
        let local_rhs = &manufactured.rhs[range.clone()];

        let mut lines = Vec::new();
        let mut first = true;
        for (name, id) in [("rksp", &rksp), ("raztec", &raztec), ("rslu", &rslu)] {
            // Dynamic switching: disconnect the old provider, connect the
            // new one. The driver's code below does not change.
            if !first {
                fw.disconnect(&driver, "solver").unwrap();
            }
            fw.connect(&driver, "solver", id, SOLVER_PORT).unwrap();
            first = false;

            // ---- Driver code: identical for every package. ----
            let port = fw
                .services(&driver)
                .unwrap()
                .get_port::<Arc<dyn SparseSolverPort>>("solver")
                .unwrap();
            port.initialize(comm.dup().unwrap()).unwrap();
            port.set_start_row(range.start).unwrap();
            port.set_local_rows(range.len()).unwrap();
            port.set_global_cols(n).unwrap();
            port.set("tol", "1e-10").unwrap();
            port.setup_matrix(
                local.values(),
                local.row_ptr(),
                local.col_idx(),
                SparseStruct::Csr,
            )
            .unwrap();
            port.setup_rhs(local_rhs, 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = [0.0; STATUS_LEN];
            port.solve(&mut x, &mut status).unwrap();
            // ---- End driver code. ----

            let report = SolveReport::from_slice(&status);
            let full = comm.allgatherv(&x).unwrap();
            lines.push((name, report, manufactured.error_inf(&full)));
        }
        lines
    });

    println!("package  converged  iters  residual    max-error");
    for (name, report, err) in &results[0] {
        println!(
            "{:<8} {:<10} {:<6} {:<11.3e} {:.3e}",
            name, report.converged, report.iterations, report.residual, err
        );
        assert!(report.converged && *err < 1e-6);
    }
    println!("\nall three packages solved the same system through one unchanged driver — OK");
}
