//! The five usage scenarios of paper §5.2, exercised back to back
//! against the RSLU (direct) and RKSP (iterative) adapters:
//!
//! (a) one-shot solve;
//! (b) precompute + reuse the factorization;
//! (c) multiple right-hand sides;
//! (d) new matrix values on the same sparsity pattern;
//! (e) recursion — shown separately in `multigrid_recursion.rs`.
//!
//! ```text
//! cargo run --example usage_scenarios
//! ```

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{RsluAdapter, SolveReport, SparseSolverPort, SparseStruct, STATUS_LEN};
use cca_lisi::sparse::generate;

fn main() {
    let n = 400;
    let a = generate::random_diag_dominant(n, 4, 7);
    println!("usage scenarios on a {n}×{n} system through LISI/RSLU\n");

    Universe::run(1, |comm| {
        let solver = RsluAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(0).unwrap();
        solver.set_local_rows(n).unwrap();
        solver.set_global_cols(n).unwrap();
        solver
            .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
            .unwrap();

        // (a) One-shot solve.
        let x1_true = generate::random_vector(n, 1);
        let b1 = a.matvec(&x1_true).unwrap();
        solver.setup_rhs(&b1, 1).unwrap();
        let mut x = vec![0.0; n];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        let rep_a = SolveReport::from_slice(&status);
        let err = max_err(&x, &x1_true);
        println!("(a) one-shot solve:            err = {err:.2e}, setup = {:.4}s", rep_a.setup_seconds);
        assert!(err < 1e-8);

        // (b) Reuse: a second solve must not refactor (setup ≈ 0).
        let x2_true = generate::random_vector(n, 2);
        let b2 = a.matvec(&x2_true).unwrap();
        solver.setup_rhs(&b2, 1).unwrap();
        solver.solve(&mut x, &mut status).unwrap();
        let rep_b = SolveReport::from_slice(&status);
        let err = max_err(&x, &x2_true);
        println!(
            "(b) factor reuse:              err = {err:.2e}, setup = {:.4}s (vs {:.4}s first time)",
            rep_b.setup_seconds, rep_a.setup_seconds
        );
        assert!(err < 1e-8);
        assert!(
            rep_b.setup_seconds < rep_a.setup_seconds,
            "reused factorization must cost less setup"
        );

        // (c) Multiple right-hand sides in one call (column-major).
        let x3_true = generate::random_vector(n, 3);
        let x4_true = generate::random_vector(n, 4);
        let mut b34 = a.matvec(&x3_true).unwrap();
        b34.extend(a.matvec(&x4_true).unwrap());
        solver.setup_rhs(&b34, 2).unwrap();
        let mut x2 = vec![0.0; 2 * n];
        solver.solve(&mut x2, &mut status).unwrap();
        let err = max_err(&x2[..n], &x3_true).max(max_err(&x2[n..], &x4_true));
        println!("(c) two RHS, one call:         err = {err:.2e}");
        assert!(err < 1e-8);

        // (d) New values, same pattern: pass the rescaled values; the
        // adapter refactors (epoch bump) but the symbolic analysis is
        // reused inside the package.
        let scaled = cca_lisi::sparse::ops::scale(3.0, &a);
        solver
            .setup_matrix(scaled.values(), scaled.row_ptr(), scaled.col_idx(), SparseStruct::Csr)
            .unwrap();
        let b5 = scaled.matvec(&x1_true).unwrap();
        solver.setup_rhs(&b5, 1).unwrap();
        solver.solve(&mut x, &mut status).unwrap();
        let err = max_err(&x, &x1_true);
        println!("(d) new values, same pattern:  err = {err:.2e}");
        assert!(err < 1e-8);
    });

    println!("\n(e) recursion: see `cargo run --example multigrid_recursion`");
    println!("OK");
}

fn max_err(got: &[f64], want: &[f64]) -> f64 {
    got.iter().zip(want).fold(0.0f64, |m, (g, e)| m.max((g - e).abs()))
}
