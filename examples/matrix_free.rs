//! Matrix-free solve (paper §5.5): the application never assembles the
//! coefficient matrix — it provides a `lisi.MatrixFree` port that applies
//! the 5-point convection–diffusion stencil on the fly, and the solver
//! component pulls matrix–vector products through the CCA connection.
//!
//! ```text
//! cargo run --example matrix_free
//! ```

use std::sync::Arc;

use cca_lisi::cca::{CcaResult, Component, Framework, Services};
use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    LisiResult, MatrixFreeComponent, MatrixFreePort, OperatorId, SolveReport, SolverComponent,
    SparseSolverPort, MATRIX_FREE_PORT, SOLVER_PORT, SOLVER_PORT_TYPE, STATUS_LEN,
};

/// The application operator: applies the paper's PDE stencil directly
/// from grid geometry — no sparse matrix anywhere. For the
/// preconditioner callback it applies the inverse of the stencil's
/// diagonal (point Jacobi), showing both `ID` variants in action.
struct StencilOperator {
    m: usize,
    /// Stencil coefficients (diag, east, west, north, south).
    coeffs: (f64, f64, f64, f64, f64),
}

impl MatrixFreePort for StencilOperator {
    fn mat_mult(&self, id: OperatorId, x: &[f64], y: &mut [f64]) -> LisiResult<()> {
        let m = self.m;
        let (cd, ce, cw, cn, cs) = self.coeffs;
        match id {
            OperatorId::Matrix => {
                for i in 0..m {
                    for j in 0..m {
                        let k = i * m + j;
                        let mut acc = cd * x[k];
                        if j > 0 {
                            acc += cw * x[k - 1];
                        }
                        if j + 1 < m {
                            acc += ce * x[k + 1];
                        }
                        if i > 0 {
                            acc += cs * x[k - m];
                        }
                        if i + 1 < m {
                            acc += cn * x[k + m];
                        }
                        y[k] = acc;
                    }
                }
            }
            OperatorId::Preconditioner => {
                for (yi, xi) in y.iter_mut().zip(x) {
                    *yi = xi / cd;
                }
            }
        }
        Ok(())
    }
}

struct Driver;
impl Component for Driver {
    fn set_services(&mut self, services: &Services) -> CcaResult<()> {
        services.register_uses_port("solver", SOLVER_PORT_TYPE)
    }
}

fn main() {
    let m = 40;
    let problem = cca_lisi::mesh::paper_problem(m);
    let n = problem.grid().unknowns();
    // Reference: the assembled matrix, used only to manufacture an exact
    // solution for verification — the solver never sees it.
    let manufactured = cca_lisi::mesh::manufactured::paper_manufactured(m);
    println!("matrix-free solve of {n} unknowns via the lisi.MatrixFree port (serial cohort)");

    let results = Universe::run(1, |comm| {
        let mut fw = Framework::with_registry(cca_lisi::cca::sidl::SidlRegistry::lisi());
        let driver = fw.instantiate("driver", Box::new(Driver)).unwrap();
        let operator = fw
            .instantiate(
                "operator",
                Box::new(MatrixFreeComponent::new(Arc::new(StencilOperator {
                    m,
                    coeffs: problem.stencil(),
                }))),
            )
            .unwrap();
        let solver = fw
            .instantiate("solver", Box::new(SolverComponent::rksp()))
            .unwrap();
        fw.connect(&driver, "solver", &solver, SOLVER_PORT).unwrap();
        // The hybrid uses–provides pattern of §5.6(c): the solver *uses*
        // the application's matrix-free port.
        fw.connect(&solver, MATRIX_FREE_PORT, &operator, MATRIX_FREE_PORT).unwrap();

        let port = fw
            .services(&driver)
            .unwrap()
            .get_port::<Arc<dyn SparseSolverPort>>("solver")
            .unwrap();
        port.initialize(comm.dup().unwrap()).unwrap();
        port.set_start_row(0).unwrap();
        port.set_local_rows(n).unwrap();
        port.set_global_cols(n).unwrap();
        port.set_bool("matrix_free", true).unwrap();
        port.set("solver", "bicgstab").unwrap();
        port.set("preconditioner", "matrix_free").unwrap();
        port.set_double("tol", 1e-10).unwrap();
        port.setup_rhs(&manufactured.rhs, 1).unwrap();
        let mut x = vec![0.0; n];
        let mut status = [0.0; STATUS_LEN];
        port.solve(&mut x, &mut status).unwrap();
        (SolveReport::from_slice(&status), x)
    });

    let (report, x) = &results[0];
    let err = manufactured.error_inf(x);
    println!("converged      : {}", report.converged);
    println!("iterations     : {}", report.iterations);
    println!("final residual : {:.3e}", report.residual);
    println!("max error      : {err:.3e}");
    assert!(report.converged && err < 1e-6);
    println!("OK — solved without ever assembling the matrix");
}
