//! Quickstart: solve the paper's PDE through the LISI interface on four
//! SPMD ranks, print the status array, and verify the answer.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{RkspAdapter, SolveReport, SparseSolverPort, SparseStruct, STATUS_LEN};
use cca_lisi::sparse::BlockRowPartition;

fn main() {
    // The paper's test problem: u_xx + u_yy − 3·u_x = f on the unit
    // square, f = (2 − 6x − x²)·sin(x), 5-point differences, 40×40 grid.
    let m = 40;
    let problem = cca_lisi::mesh::paper_problem(m);
    let n = problem.grid().unknowns();

    // A manufactured solution so we can check the answer exactly.
    let manufactured = cca_lisi::mesh::manufactured::paper_manufactured(m);

    let ranks = 4;
    println!("solving {n} unknowns (nnz = {}) on {ranks} ranks through LISI/RKSP", 5 * m * m - 4 * m);

    let results = Universe::run(ranks, |comm| {
        // Each rank assembles only its block rows — the paper's parallel
        // mesh generator.
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = manufactured.matrix.row_block(range.start, range.end).unwrap();
        let local_rhs = &manufactured.rhs[range.clone()];

        // Phase 1: initialize + describe the distribution.
        let solver = RkspAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(range.start).unwrap();
        solver.set_local_rows(range.len()).unwrap();
        solver.set_local_nnz(local.nnz()).unwrap();
        solver.set_global_cols(n).unwrap();

        // Phase 2: pass the system + generic parameters.
        solver.set("solver", "bicgstab").unwrap();
        solver.set("preconditioner", "ilu").unwrap();
        solver.set_double("tol", 1e-10).unwrap();
        solver.set_int("maxits", 5000).unwrap();
        solver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        solver.setup_rhs(local_rhs, 1).unwrap();

        // Phase 3: solve.
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
    });

    let (report, solution) = &results[0];
    println!("converged      : {}", report.converged);
    println!("iterations     : {}", report.iterations);
    println!("final residual : {:.3e}", report.residual);
    println!("setup seconds  : {:.4}", report.setup_seconds);
    println!("solve seconds  : {:.4}", report.solve_seconds);
    println!("parameters set :\n{}", {
        let s = RkspAdapter::new();
        s.set("solver", "bicgstab").unwrap();
        s.get_all()
    });

    let err = manufactured.error_inf(solution);
    println!("max error vs manufactured solution: {err:.3e}");
    assert!(report.converged && err < 1e-6, "quickstart must solve accurately");
    println!("OK");
}
