//! Solve an external MatrixMarket system through LISI — the "bring your
//! own matrix" workflow. Pass a `.mtx` path (plus optionally a rhs
//! `.mtx`) on the command line, or run bare to use a generated demo file.
//! The solver package and parameters come from the command line too, so
//! this doubles as a small driver utility:
//!
//! ```text
//! cargo run --release --example external_matrix -- \
//!     [matrix.mtx] [--solver rksp|raztec|rslu] [--ranks N] [--key value]...
//! ```

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    RaztecAdapter, RkspAdapter, RsluAdapter, SolveReport, SparseSolverPort, SparseStruct,
    STATUS_LEN,
};
use cca_lisi::sparse::BlockRowPartition;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut matrix_path: Option<String> = None;
    let mut package = "rksp".to_string();
    let mut ranks = 2usize;
    let mut params: Vec<(String, String)> = vec![("tol".into(), "1e-10".into())];
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--solver" => package = it.next().expect("--solver needs a value"),
            "--ranks" => ranks = it.next().expect("--ranks needs a value").parse().unwrap(),
            key if key.starts_with("--") => {
                let v = it.next().unwrap_or_else(|| "true".into());
                params.push((key.trim_start_matches("--").to_string(), v));
            }
            path => matrix_path = Some(path.to_string()),
        }
    }

    // Load or fabricate the system.
    let (a, b, note) = match &matrix_path {
        Some(p) => {
            let a = cca_lisi::sparse::io::read_matrix_file(p).expect("readable MatrixMarket file");
            let b = vec![1.0; a.rows()];
            (a, b, format!("loaded {p}"))
        }
        None => {
            // Write a demo file first so the full IO path is exercised.
            let dir = std::env::temp_dir().join("cca_lisi_external");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("demo.mtx");
            let demo = cca_lisi::sparse::generate::random_diag_dominant(200, 4, 2024);
            cca_lisi::sparse::io::write_matrix_file(&path, &demo).unwrap();
            let a = cca_lisi::sparse::io::read_matrix_file(&path).unwrap();
            let b = vec![1.0; a.rows()];
            (a, b, format!("generated + round-tripped {}", path.display()))
        }
    };
    let n = a.rows();
    assert_eq!(a.cols(), n, "system must be square");
    println!("{note}: {n} unknowns, {} nonzeros, package = {package}, ranks = {ranks}", a.nnz());

    let results = Universe::run(ranks, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let solver: Box<dyn SparseSolverPort> = match package.as_str() {
            "rksp" => Box::new(RkspAdapter::new()),
            "raztec" => Box::new(RaztecAdapter::new()),
            "rslu" => Box::new(RsluAdapter::new()),
            other => panic!("unknown package '{other}' (rksp|raztec|rslu)"),
        };
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(range.start).unwrap();
        solver.set_local_rows(range.len()).unwrap();
        solver.set_global_cols(n).unwrap();
        for (k, v) in &params {
            solver.set(k, v).unwrap();
        }
        solver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        solver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
    });

    let (report, x) = &results[0];
    let r = cca_lisi::sparse::ops::residual(&a, x, &b).unwrap();
    let rel = cca_lisi::sparse::dense::norm2(&r) / cca_lisi::sparse::dense::norm2(&b);
    println!("converged         : {}", report.converged);
    println!("iterations        : {}", report.iterations);
    println!("relative residual : {rel:.3e}");
    assert!(report.converged && rel < 1e-8);
    println!("OK");
}
