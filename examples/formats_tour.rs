//! A tour of every `SparseStruct` input format (paper §5.3): the same
//! system is fed to the same solver five ways — COO, CSR, MSR, VBR and
//! FEM element contributions, plus Fortran-style 1-based indexing through
//! the `setupMatrix[large_args]` overload — and every path must give the
//! same answer. This is the "adapter converts the input data format"
//! promise, verified.
//!
//! ```text
//! cargo run --example formats_tour
//! ```

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{RkspAdapter, SparseSolverPort, SparseStruct, STATUS_LEN};
use cca_lisi::sparse::{convert, generate, MsrMatrix};

fn main() {
    // An SPD block-structured test matrix: 2×2 blocks on a 1-D mesh (so
    // VBR with bs = 2 is natural), diagonally dominant.
    let n = 64;
    let a = generate::random_diag_dominant(n, 3, 11);
    let x_true = generate::random_vector(n, 5);
    let b = a.matvec(&x_true).unwrap();
    println!("same {n}×{n} system through every SparseStruct format:\n");

    let solve_with = |label: &str, setup: &(dyn Fn(&RkspAdapter) + Sync)| {
        let b = b.clone();
        let results = Universe::run(1, |comm| {
            let s = RkspAdapter::new();
            s.initialize(comm.dup().unwrap()).unwrap();
            s.set_start_row(0).unwrap();
            s.set_local_rows(n).unwrap();
            s.set_global_cols(n).unwrap();
            s.set("solver", "gmres").unwrap();
            s.set("preconditioner", "ilu").unwrap();
            s.set_double("tol", 1e-11).unwrap();
            setup(&s);
            s.setup_rhs(&b, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut status = [0.0; STATUS_LEN];
            s.solve(&mut x, &mut status).unwrap();
            x
        });
        let err = results[0]
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
        println!("  {label:<26} max error = {err:.2e}");
        assert!(err < 1e-7, "{label}");
    };

    // COO (the few_args overload).
    let coo = a.to_coo();
    let (rows, cols, vals) = coo.triplets();
    solve_with("COO / few_args", &|s| {
        s.setup_matrix_coo(vals, rows, cols).unwrap();
    });

    // CSR (media_args).
    solve_with("CSR / media_args", &|s| {
        s.setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr).unwrap();
    });

    // CSR, 1-based Fortran indexing (large_args).
    let ptr1: Vec<usize> = a.row_ptr().iter().map(|p| p + 1).collect();
    let col1: Vec<usize> = a.col_idx().iter().map(|c| c + 1).collect();
    solve_with("CSR 1-based / large_args", &|s| {
        s.setup_matrix_offset(a.values(), &ptr1, &col1, SparseStruct::Csr, 1).unwrap();
    });

    // MSR (SPARSKIT layout).
    let msr = MsrMatrix::from_csr(&a).unwrap();
    let (mval, mja) = msr.parts();
    solve_with("MSR", &|s| {
        s.setup_matrix(mval, &[], mja, SparseStruct::Msr).unwrap();
    });

    // VBR with uniform 2×2 blocks.
    let bs = 2;
    let vbr = build_uniform_vbr_arrays(&a, bs);
    solve_with("VBR (2x2 blocks)", &|s| {
        s.set_block_size(bs).unwrap();
        s.setup_matrix(&vbr.0, &vbr.1, &vbr.2, SparseStruct::Vbr).unwrap();
    });

    // FEM: element contributions that assemble to the same matrix. Use a
    // fresh FEM-natural problem to keep the demonstration honest.
    println!("\nFEM element input (1-D bar assembly):");
    let fem = cca_lisi::sparse::fem::stiffness_1d(32);
    let a_fem = fem.to_csr();
    let nf = a_fem.rows();
    // Pin the first dof (Dirichlet) to make it nonsingular.
    let mut coo = a_fem.to_coo();
    coo.push(0, 0, 1e6).unwrap();
    let a_pinned = coo.to_csr();
    let xf_true = generate::random_vector(nf, 9);
    let bf = a_pinned.matvec(&xf_true).unwrap();
    let conn: Vec<usize> = fem.elements().iter().flat_map(|e| e.dofs.clone()).collect();
    let mut vals: Vec<f64> = fem.elements().iter().flat_map(|e| e.matrix.clone()).collect();
    // Fold the pin into the first element's (0,0) entry.
    vals[0] += 1e6;
    let results = Universe::run(1, |comm| {
        let s = RkspAdapter::new();
        s.initialize(comm.dup().unwrap()).unwrap();
        s.set_start_row(0).unwrap();
        s.set_local_rows(nf).unwrap();
        s.set_global_cols(nf).unwrap();
        s.set_block_size(2).unwrap(); // element arity
        s.set("solver", "cg").unwrap();
        s.set("preconditioner", "jacobi").unwrap();
        s.set_double("tol", 1e-12).unwrap();
        s.setup_matrix(&vals, &[], &conn, SparseStruct::Fem).unwrap();
        s.setup_rhs(&bf, 1).unwrap();
        let mut x = vec![0.0; nf];
        let mut status = [0.0; STATUS_LEN];
        s.solve(&mut x, &mut status).unwrap();
        x
    });
    let err = results[0]
        .iter()
        .zip(&xf_true)
        .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
    println!("  FEM elements               max error = {err:.2e}");
    assert!(err < 1e-5);

    // Storage formats: the same CSR system solved under every SpMV
    // storage format (the reserved "format" key, or the RSPARSE_FORMAT
    // environment variable). SELL-C-σ and block-CSR kernels are
    // bit-identical to CSR, so the *solutions* must match bitwise — the
    // format is purely a performance knob the autotuner can turn.
    println!("\nSpMV storage formats (set(\"format\", ...) / RSPARSE_FORMAT):");
    let mut baseline: Option<Vec<f64>> = None;
    for format in ["csr", "sell", "bcsr", "auto"] {
        let b = b.clone();
        let results = Universe::run(1, |comm| {
            let s = RkspAdapter::new();
            s.initialize(comm.dup().unwrap()).unwrap();
            s.set_start_row(0).unwrap();
            s.set_local_rows(n).unwrap();
            s.set_global_cols(n).unwrap();
            s.set("format", format).unwrap();
            s.set("solver", "gmres").unwrap();
            s.set("preconditioner", "ilu").unwrap();
            s.set_double("tol", 1e-11).unwrap();
            s.setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
                .unwrap();
            s.setup_rhs(&b, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut status = [0.0; STATUS_LEN];
            s.solve(&mut x, &mut status).unwrap();
            x
        });
        let x = &results[0];
        match &baseline {
            None => baseline = Some(x.clone()),
            Some(base) => {
                let identical =
                    x.iter().zip(base).all(|(p, q)| p.to_bits() == q.to_bits());
                assert!(identical, "format {format} diverged from csr");
            }
        }
        println!("  format={format:<5} solution bit-identical to csr");
    }
    // Restore the default so the knob does not leak out of the demo.
    cca_lisi::sparse::autotune::set_policy(cca_lisi::sparse::FormatPolicy::parse("csr").unwrap());

    println!("\nall formats agreed — OK");
}

/// Uniform-block VBR arrays `(values, block_row_ptr, block_cols)` as the
/// LISI VBR convention expects.
fn build_uniform_vbr_arrays(
    a: &cca_lisi::sparse::CsrMatrix,
    bs: usize,
) -> (Vec<f64>, Vec<usize>, Vec<usize>) {
    let n = a.rows();
    assert_eq!(n % bs, 0);
    let nbr = n / bs;
    let mut bptr = vec![0usize];
    let mut bindx = Vec::new();
    let mut vals = Vec::new();
    for br in 0..nbr {
        let mut present: Vec<usize> = Vec::new();
        for lr in 0..bs {
            for &c in a.row(br * bs + lr).0 {
                let bc = c / bs;
                if !present.contains(&bc) {
                    present.push(bc);
                }
            }
        }
        present.sort_unstable();
        for &bc in &present {
            let base = vals.len();
            vals.resize(base + bs * bs, 0.0);
            for lr in 0..bs {
                let (cs, vs) = a.row(br * bs + lr);
                for (&c, &v) in cs.iter().zip(vs) {
                    if c / bs == bc {
                        vals[base + (c % bs) * bs + lr] = v;
                    }
                }
            }
            bindx.push(bc);
        }
        bptr.push(bindx.len());
    }
    let _ = convert::csr_to_vbr_uniform(a, bs); // sanity: format exists
    (vals, bptr, bindx)
}
