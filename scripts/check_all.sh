#!/usr/bin/env bash
# Full verification sweep: build, tests, examples, doc build, benches
# (compile only). The experiment regeneration itself is table1/figure5
# (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (all targets) =="
cargo build --workspace --all-targets

echo "== clippy (every non-shim package) =="
cargo clippy -p lisi-probe -p lisi-comm -p lisi-sparse -p lisi-mesh -p lisi-krylov \
  -p lisi-aztec -p lisi-direct -p lisi-multigrid -p lisi-cca -p lisi-core \
  -p lisi-bench -p cca-lisi --all-targets -- -D warnings

echo "== tests (RSPARSE_THREADS=1) =="
RSPARSE_THREADS=1 \
RCOMM_DEADLOCK_TIMEOUT_SECS=${RCOMM_DEADLOCK_TIMEOUT_SECS:-30} cargo test --workspace

echo "== tests (RSPARSE_THREADS=4) =="
# Same suite with the rank-local thread pool engaged: exercises the
# level-scheduled sweeps, chunked SpMV and blocked reductions, whose
# results must be bit-identical to the serial run.
RSPARSE_THREADS=4 \
RCOMM_DEADLOCK_TIMEOUT_SECS=${RCOMM_DEADLOCK_TIMEOUT_SECS:-30} cargo test --workspace

echo "== tests (RSPARSE_FORMAT=auto) =="
# Same suite with the storage-format autotuner choosing per matrix:
# SELL-C-σ / block-CSR kernels are bit-identical to CSR, so every test
# must pass unchanged whatever the selector picks.
RSPARSE_FORMAT=auto \
RCOMM_DEADLOCK_TIMEOUT_SECS=${RCOMM_DEADLOCK_TIMEOUT_SECS:-30} cargo test --workspace

echo "== examples =="
for e in quickstart solver_switching matrix_free multigrid_recursion \
         usage_scenarios formats_tour external_matrix resilience; do
  echo "-- $e"
  cargo run --release --example "$e" >/dev/null
done

echo "== fault matrix (incl. kill-rank elastic recovery) =="
scripts/fault_matrix.sh

echo "== causal tracing (resilience example, RSPARSE_TRACE=1) =="
# Same example again with tracing armed: the run must still converge and
# additionally print a critical-path attribution built from the merged
# cross-rank trace of the last solve. (Captured, not piped: grep -q would
# SIGPIPE the example under pipefail.)
traced_out="$(RSPARSE_TRACE=1 cargo run --release --example resilience)"
grep -q "critical path" <<<"$traced_out"

echo "== telemetry exporter smoke (std TcpStream, curl-free) =="
cargo run -q -p lisi-bench --release --bin export_smoke

echo "== bench regression sentinel (solve ledger + BENCH_*.json) =="
# First-ever run records baselines instead of gating; later runs diff the
# fresh ledger and the stored bench records against baselines/ and fail
# on efficiency regressions.
if [[ -f baselines/solve_ledger.json ]]; then
  scripts/regression_sentinel.sh
else
  BENCH_ALLOW_MISSING_BASELINE=1 scripts/regression_sentinel.sh
fi

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== bench compile =="
cargo bench --workspace --no-run

echo "ALL CHECKS PASSED"
