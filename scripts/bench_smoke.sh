#!/usr/bin/env bash
# Quick SpMV benchmark smoke run: exercises the `spmv` criterion group for a
# short wall-clock budget and records elements/sec for the serial and dist4
# variants at m=200 into BENCH_spmv.json under the given label.
#
# Usage: scripts/bench_smoke.sh [pre|post]   (default: post)
#
# BENCH_spmv.json accumulates one entry per label, so running once before a
# performance change with "pre" and once after with "post" leaves both
# baselines side by side for comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-post}"
# Absolute path: cargo runs bench binaries with cwd = the package dir, so a
# relative CRITERION_SHIM_OUT would land under crates/bench/.
OUT_DIR="$(pwd)/target/criterion-shim"
rm -rf "$OUT_DIR"

echo "== spmv bench smoke (label: $LABEL) =="
BENCH_MEASURE_MS="${BENCH_MEASURE_MS:-600}" BENCH_WARMUP_MS="${BENCH_WARMUP_MS:-150}" \
CRITERION_SHIM_OUT="$OUT_DIR" \
  cargo bench -q -p lisi-bench --bench kernels -- spmv

python3 - "$LABEL" "$OUT_DIR" <<'EOF'
import json, os, sys

label, out_dir = sys.argv[1], sys.argv[2]
entry = {}
for variant in ("serial", "dist4"):
    path = os.path.join(out_dir, f"spmv_{variant}_200.json")
    with open(path) as f:
        rec = json.load(f)
    entry[variant] = {
        "mean_ns": rec["mean_ns"],
        "elements_per_sec": rec.get("per_sec"),
    }

bench_file = "BENCH_spmv.json"
data = {}
if os.path.exists(bench_file):
    with open(bench_file) as f:
        data = json.load(f)
data[label] = entry
with open(bench_file, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")

print(f"recorded '{label}' into {bench_file}:")
print(json.dumps(entry, indent=2))
if "pre" in data and "post" in data:
    for variant in ("serial", "dist4"):
        pre = data["pre"][variant]["elements_per_sec"]
        post = data["post"][variant]["elements_per_sec"]
        if pre and post:
            print(f"{variant}: {post / pre:.2f}x vs pre")
EOF
