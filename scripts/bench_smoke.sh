#!/usr/bin/env bash
# Quick SpMV benchmark smoke run: exercises the `spmv` criterion group for a
# short wall-clock budget and records elements/sec for the serial and dist4
# variants at m=200 into BENCH_spmv.json under the given label.
#
# Also runs the paired probe-overhead guard (`probe_guard` bin: the same
# dist4 m=200 SpMV workload with the probe disabled vs enabled in
# alternating pairs, so machine-load drift cancels) and writes
# BENCH_probe_overhead.json with the median paired overhead against a <2%
# target. The disabled path is the same machine code as the plain spmv
# dist4 bench (mode checks are single relaxed atomic loads), so the
# disabled-vs-plain delta is recorded only as a cross-process noise-floor
# reference. A miss prints a WARN but does not fail the script (shared
# machines are noisy).
#
# Fault-injection guards (two distinct budgets):
#   * no-faults (<1%): the fresh disarmed throughput of this run is
#     compared against the stored BENCH_spmv.json baseline — the disarmed
#     hook is one relaxed atomic load per call and must stay invisible.
#   * armed-but-inert (<5%, diagnostic): the `fault_guard` bin measures
#     disarmed vs armed-with-a-never-matching-plan in alternating pairs
#     over the SpMV burst and a fused-reduction CG solve; the armed path
#     (mutex + rule scan per call) is only paid while testing faults.
# Both land in BENCH_fault_overhead.json; misses WARN, never fail.
#
# Krylov-checkpoint guard (same two-budget shape): the `checkpoint_guard`
# bin pairs checkpointing-off against every-10-iterations over a fused-
# reduction CG solve; the off path (<1%) gates against the previously
# stored median, the every-10 snapshot cost gates at <5%. Both land in
# BENCH_checkpoint_overhead.json.
#
# Usage: scripts/bench_smoke.sh [pre|post]   (default: post)
#
# BENCH_spmv.json accumulates one entry per label, so running once before a
# performance change with "pre" and once after with "post" leaves both
# baselines side by side for comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-post}"
# Absolute path: cargo runs bench binaries with cwd = the package dir, so a
# relative CRITERION_SHIM_OUT would land under crates/bench/.
OUT_DIR="$(pwd)/target/criterion-shim"
rm -rf "$OUT_DIR"

echo "== spmv bench smoke (label: $LABEL) =="
BENCH_MEASURE_MS="${BENCH_MEASURE_MS:-600}" BENCH_WARMUP_MS="${BENCH_WARMUP_MS:-150}" \
CRITERION_SHIM_OUT="$OUT_DIR" \
  cargo bench -q -p lisi-bench --bench kernels -- spmv

echo "== probe overhead guard (paired) =="
cargo run -q -p lisi-bench --release --bin probe_guard > "$OUT_DIR/probe_guard.json"

echo "== fault-machinery overhead guard (paired) =="
cargo run -q -p lisi-bench --release --bin fault_guard > "$OUT_DIR/fault_guard.json"

echo "== flight-recorder overhead guard (paired) =="
cargo run -q -p lisi-bench --release --bin flight_guard > "$OUT_DIR/flight_guard.json"

echo "== causal-tracing overhead guard (paired) =="
cargo run -q -p lisi-bench --release --bin trace_guard > "$OUT_DIR/trace_guard.json"

echo "== Krylov-checkpoint overhead guard (paired) =="
cargo run -q -p lisi-bench --release --bin checkpoint_guard > "$OUT_DIR/checkpoint_guard.json"

echo "== solve-ledger overhead guard (paired) =="
cargo run -q -p lisi-bench --release --bin ledger_guard > "$OUT_DIR/ledger_guard.json"

echo "== triangular-solve speedup guard (paired) =="
cargo run -q -p lisi-bench --release --bin trsv_guard > "$OUT_DIR/trsv_guard.json"

echo "== sparse-format speedup guard (paired) =="
cargo run -q -p lisi-bench --release --bin format_guard > "$OUT_DIR/format_guard.json"

echo "== multi-RHS batching + session-cache guard (paired) =="
cargo run -q -p lisi-bench --release --bin multirhs_guard > "$OUT_DIR/multirhs_guard.json"

python3 - "$LABEL" "$OUT_DIR" <<'EOF'
import json, os, sys

label, out_dir = sys.argv[1], sys.argv[2]
entry = {}
for variant in ("serial", "dist4"):
    path = os.path.join(out_dir, f"spmv_{variant}_200.json")
    with open(path) as f:
        rec = json.load(f)
    entry[variant] = {
        "mean_ns": rec["mean_ns"],
        "elements_per_sec": rec.get("per_sec"),
    }

bench_file = "BENCH_spmv.json"
data = {}
if os.path.exists(bench_file):
    with open(bench_file) as f:
        data = json.load(f)
# The previously stored entry under this label is the no-faults baseline
# below: it was recorded before the current change, so fresh-vs-stored
# measures whatever the change added to the disarmed path.
prev_entry = data.get(label)
data[label] = entry
with open(bench_file, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")

print(f"recorded '{label}' into {bench_file}:")
print(json.dumps(entry, indent=2))
if "pre" in data and "post" in data:
    for variant in ("serial", "dist4"):
        pre = data["pre"][variant]["elements_per_sec"]
        post = data["post"][variant]["elements_per_sec"]
        if pre and post:
            print(f"{variant}: {post / pre:.2f}x vs pre")

# Probe-overhead guard. The disabled path is the same machine code as the
# plain dist4 bench (probe is compiled in everywhere; "off" is one relaxed
# atomic load per site), so the runtime-measurable probe cost is the
# enabled-vs-disabled delta. probe_guard measures it in alternating pairs
# (median paired ratio) so machine-load drift cancels. The disabled-vs-
# plain delta crosses two processes and only bounds the measurement noise
# floor; it is recorded for reference, not gated.
with open(os.path.join(out_dir, "probe_guard.json")) as f:
    paired = json.load(f)

with open(os.path.join(out_dir, "spmv_dist4_200.json")) as f:
    baseline = json.load(f)["mean_ns"]

overhead_pct = paired["overhead_pct"]
guard = {
    "workload": paired["workload"],
    "trials": paired["trials"],
    "plain_mean_ns": baseline,
    "disabled_median_ns": paired["disabled_median_ns"],
    "enabled_median_ns": paired["enabled_median_ns"],
    "overhead_pct": overhead_pct,
    "noise_floor_pct":
        100.0 * (paired["disabled_median_ns"] - baseline) / baseline,
    "target_pct": 2.0,
    "pass": overhead_pct < 2.0,
}
with open("BENCH_probe_overhead.json", "w") as f:
    json.dump(guard, f, indent=2)
    f.write("\n")
verdict = "PASS" if guard["pass"] else "WARN (noisy machine or a regression)"
print(f"probe overhead (enabled vs disabled): {overhead_pct:+.2f}% "
      f"(target < 2%) -> {verdict}")
print(f"cross-process noise floor (disabled vs plain): "
      f"{guard['noise_floor_pct']:+.2f}%")
print("recorded BENCH_probe_overhead.json")

# Fault-injection guards. (1) No-faults budget: the disarmed fault hook
# is one relaxed atomic load per communication call, so this run's fresh
# disarmed throughput must sit within 1% of the entry previously stored
# under the same label (recorded before the current change). A
# cross-process comparison, so a miss WARNs rather than fails.
# (2) Armed-but-inert budget: the paired fault_guard measurement bounds
# the armed path's mutex + rule-scan cost over both workloads at <5% —
# only paid while a fault plan is loaded for testing.
with open(os.path.join(out_dir, "fault_guard.json")) as f:
    fg = json.load(f)

NO_FAULTS_TARGET_PCT = 1.0
ARMED_TARGET_PCT = 5.0
baseline_label = f"stored '{label}'"
no_faults = {}
for variant in ("serial", "dist4"):
    base = (prev_entry or {}).get(variant, {}).get("elements_per_sec")
    now = entry[variant]["elements_per_sec"]
    if not (base and now):
        continue
    slowdown_pct = 100.0 * (base / now - 1.0)
    no_faults[variant] = {
        "baseline_label": baseline_label,
        "baseline_elements_per_sec": base,
        "current_elements_per_sec": now,
        "slowdown_pct": slowdown_pct,
        "pass": slowdown_pct < NO_FAULTS_TARGET_PCT,
    }

fault_rec = {
    "no_faults": {"target_pct": NO_FAULTS_TARGET_PCT, **no_faults},
    "armed_inert": {"target_pct": ARMED_TARGET_PCT, "trials": fg["trials"]},
}
for wl in ("spmv", "fused_cg"):
    w = fg[wl]
    fault_rec["armed_inert"][wl] = {
        **w,
        "pass": w["overhead_pct"] < ARMED_TARGET_PCT,
    }
with open("BENCH_fault_overhead.json", "w") as f:
    json.dump(fault_rec, f, indent=2)
    f.write("\n")

if not no_faults:
    # A missing stored baseline means the no-faults regression gate
    # silently never ran — fail loudly so CI can't rot, unless the caller
    # explicitly acknowledges a first run.
    if os.environ.get("BENCH_ALLOW_MISSING_BASELINE") == "1":
        print(f"no-faults baseline: no previous '{label}' entry to compare "
              f"against (recorded one for next time; allowed by "
              f"BENCH_ALLOW_MISSING_BASELINE=1)")
    else:
        print(f"ERROR: no stored '{label}' baseline in {bench_file}; the "
              f"no-faults overhead gate cannot run. Re-run with "
              f"BENCH_ALLOW_MISSING_BASELINE=1 to record a first baseline.",
              file=sys.stderr)
        sys.exit(1)
for variant, rec in no_faults.items():
    verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
    print(f"no-faults {variant} vs {baseline_label} baseline: "
          f"{rec['slowdown_pct']:+.2f}% (target < {NO_FAULTS_TARGET_PCT}%) "
          f"-> {verdict}")
for wl in ("spmv", "fused_cg"):
    rec = fault_rec["armed_inert"][wl]
    verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
    print(f"armed-inert {wl}: {rec['overhead_pct']:+.2f}% "
          f"(target < {ARMED_TARGET_PCT}%) -> {verdict}")
print("recorded BENCH_fault_overhead.json")

# Flight-recorder guard. The black-box ring is always on — every p2p
# message, collective, iteration and verdict pays one relaxed atomic
# check plus a fixed-size ring write. The paired flight_guard bin bounds
# recorder-on vs recorder-off on the dist4 fused-CG solve at <2%.
with open(os.path.join(out_dir, "flight_guard.json")) as f:
    fl = json.load(f)

FLIGHT_TARGET_PCT = 2.0
w = fl["fused_cg"]
flight_rec = {
    "target_pct": FLIGHT_TARGET_PCT,
    "trials": fl["trials"],
    "fused_cg": {**w, "pass": w["overhead_pct"] < FLIGHT_TARGET_PCT},
}
with open("BENCH_flight_overhead.json", "w") as f:
    json.dump(flight_rec, f, indent=2)
    f.write("\n")
rec = flight_rec["fused_cg"]
verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
print(f"flight recorder on-vs-off (fused_cg): {rec['overhead_pct']:+.2f}% "
      f"(target < {FLIGHT_TARGET_PCT}%) -> {verdict}")
print("recorded BENCH_flight_overhead.json")

# Causal-tracing guards (two distinct budgets, mirroring the fault
# guards):
#   * disabled path (<2%): with RSPARSE_TRACE unset every trace hook is
#     one relaxed atomic load, so this run's fresh disarmed fused-CG
#     median must sit within 2% of the one stored by the previous run of
#     this script. Cross-process, so a miss WARNs; a *missing* baseline
#     fails loudly (unless BENCH_ALLOW_MISSING_BASELINE=1) so the gate
#     cannot silently rot.
#   * armed (<5%, diagnostic): the paired trace_guard measurement bounds
#     stamping + record staging + span pass-through while tracing is
#     armed — only paid when a user asks for causal traces.
with open(os.path.join(out_dir, "trace_guard.json")) as f:
    tr = json.load(f)

TRACE_DISABLED_TARGET_PCT = 2.0
TRACE_ARMED_TARGET_PCT = 5.0
trace_file = "BENCH_trace_overhead.json"
prev_trace = None
if os.path.exists(trace_file):
    with open(trace_file) as f:
        prev_trace = json.load(f)

w = tr["fused_cg"]
trace_rec = {
    "trials": tr["trials"],
    "armed": {
        "target_pct": TRACE_ARMED_TARGET_PCT,
        **w,
        "pass": w["overhead_pct"] < TRACE_ARMED_TARGET_PCT,
    },
    "disabled": {"target_pct": TRACE_DISABLED_TARGET_PCT},
}
prev_ns = (prev_trace or {}).get("armed", {}).get("disarmed_median_ns")
if prev_ns:
    slowdown_pct = 100.0 * (w["disarmed_median_ns"] / prev_ns - 1.0)
    trace_rec["disabled"].update({
        "baseline_disarmed_median_ns": prev_ns,
        "current_disarmed_median_ns": w["disarmed_median_ns"],
        "slowdown_pct": slowdown_pct,
        "pass": slowdown_pct < TRACE_DISABLED_TARGET_PCT,
    })
with open(trace_file, "w") as f:
    json.dump(trace_rec, f, indent=2)
    f.write("\n")

if prev_ns:
    rec = trace_rec["disabled"]
    verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
    print(f"trace disabled-path vs stored baseline: "
          f"{rec['slowdown_pct']:+.2f}% "
          f"(target < {TRACE_DISABLED_TARGET_PCT}%) -> {verdict}")
elif os.environ.get("BENCH_ALLOW_MISSING_BASELINE") == "1":
    print("trace disabled-path: no stored baseline to compare against "
          "(recorded one for next time; allowed by "
          "BENCH_ALLOW_MISSING_BASELINE=1)")
else:
    print(f"ERROR: no stored disarmed baseline in {trace_file}; the "
          f"trace disabled-path gate cannot run. Re-run with "
          f"BENCH_ALLOW_MISSING_BASELINE=1 to record a first baseline.",
          file=sys.stderr)
    sys.exit(1)
rec = trace_rec["armed"]
verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
print(f"trace armed-vs-disarmed (fused_cg): {rec['overhead_pct']:+.2f}% "
      f"(target < {TRACE_ARMED_TARGET_PCT}%) -> {verdict}")
print(f"recorded {trace_file}")

# Krylov-checkpoint guards (two distinct budgets, mirroring the trace
# guards):
#   * off path (<1%): with checkpointing disabled (the default) the hook
#     is one integer compare per iteration, so this run's fresh off-path
#     fused-CG median must sit within 1% of the one stored by the
#     previous run of this script. Cross-process, so a miss WARNs; a
#     *missing* baseline fails loudly (unless
#     BENCH_ALLOW_MISSING_BASELINE=1) so the gate cannot silently rot.
#   * every-10 (<5%): the paired checkpoint_guard measurement bounds the
#     (x, r) snapshot copy into the double-buffered registry — only paid
#     when a user opts into elastic recovery.
with open(os.path.join(out_dir, "checkpoint_guard.json")) as f:
    ck = json.load(f)

CKPT_OFF_TARGET_PCT = 1.0
CKPT_ON_TARGET_PCT = 5.0
ckpt_file = "BENCH_checkpoint_overhead.json"
prev_ckpt = None
if os.path.exists(ckpt_file):
    with open(ckpt_file) as f:
        prev_ckpt = json.load(f)

w = ck["fused_cg"]
ckpt_rec = {
    "trials": ck["trials"],
    "every_10": {
        "target_pct": CKPT_ON_TARGET_PCT,
        **w,
        "pass": w["overhead_pct"] < CKPT_ON_TARGET_PCT,
    },
    "off": {"target_pct": CKPT_OFF_TARGET_PCT},
}
prev_ns = (prev_ckpt or {}).get("every_10", {}).get("off_median_ns")
if prev_ns:
    slowdown_pct = 100.0 * (w["off_median_ns"] / prev_ns - 1.0)
    ckpt_rec["off"].update({
        "baseline_off_median_ns": prev_ns,
        "current_off_median_ns": w["off_median_ns"],
        "slowdown_pct": slowdown_pct,
        "pass": slowdown_pct < CKPT_OFF_TARGET_PCT,
    })
with open(ckpt_file, "w") as f:
    json.dump(ckpt_rec, f, indent=2)
    f.write("\n")

if prev_ns:
    rec = ckpt_rec["off"]
    verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
    print(f"checkpoint off-path vs stored baseline: "
          f"{rec['slowdown_pct']:+.2f}% "
          f"(target < {CKPT_OFF_TARGET_PCT}%) -> {verdict}")
elif os.environ.get("BENCH_ALLOW_MISSING_BASELINE") == "1":
    print("checkpoint off-path: no stored baseline to compare against "
          "(recorded one for next time; allowed by "
          "BENCH_ALLOW_MISSING_BASELINE=1)")
else:
    print(f"ERROR: no stored off-path baseline in {ckpt_file}; the "
          f"checkpoint off-path gate cannot run. Re-run with "
          f"BENCH_ALLOW_MISSING_BASELINE=1 to record a first baseline.",
          file=sys.stderr)
    sys.exit(1)
rec = ckpt_rec["every_10"]
verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
print(f"checkpoint every-10 vs off (fused_cg): {rec['overhead_pct']:+.2f}% "
      f"(target < {CKPT_ON_TARGET_PCT}%) -> {verdict}")
print(f"recorded {ckpt_file}")

# Solve-ledger guards (two distinct budgets, mirroring the trace
# guards):
#   * disabled path (<2%): with no ledger destination armed the per-solve
#     cost is one relaxed atomic load at solve entry plus the model
#     registrations already paid at plan time, so this run's fresh
#     disarmed adapter-CG median must sit within 2% of the one stored by
#     the previous run of this script. Cross-process, so a miss WARNs; a
#     *missing* baseline fails loudly (unless
#     BENCH_ALLOW_MISSING_BASELINE=1) so the gate cannot silently rot.
#   * armed (<10%, diagnostic): the paired ledger_guard measurement
#     bounds forced span collection + rank-0 assembly + the JSON write —
#     only paid when a user asks for a ledger.
with open(os.path.join(out_dir, "ledger_guard.json")) as f:
    lg = json.load(f)

LEDGER_DISABLED_TARGET_PCT = 2.0
LEDGER_ARMED_TARGET_PCT = 10.0
ledger_file = "BENCH_ledger_overhead.json"
prev_ledger = None
if os.path.exists(ledger_file):
    with open(ledger_file) as f:
        prev_ledger = json.load(f)

w = lg["adapter_cg"]
ledger_rec = {
    "trials": lg["trials"],
    "armed": {
        "target_pct": LEDGER_ARMED_TARGET_PCT,
        **w,
        "pass": w["overhead_pct"] < LEDGER_ARMED_TARGET_PCT,
    },
    "disabled": {"target_pct": LEDGER_DISABLED_TARGET_PCT},
}
prev_ns = (prev_ledger or {}).get("armed", {}).get("disarmed_median_ns")
if prev_ns:
    slowdown_pct = 100.0 * (w["disarmed_median_ns"] / prev_ns - 1.0)
    ledger_rec["disabled"].update({
        "baseline_disarmed_median_ns": prev_ns,
        "current_disarmed_median_ns": w["disarmed_median_ns"],
        "slowdown_pct": slowdown_pct,
        "pass": slowdown_pct < LEDGER_DISABLED_TARGET_PCT,
    })
with open(ledger_file, "w") as f:
    json.dump(ledger_rec, f, indent=2)
    f.write("\n")

if prev_ns:
    rec = ledger_rec["disabled"]
    verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
    print(f"ledger disabled-path vs stored baseline: "
          f"{rec['slowdown_pct']:+.2f}% "
          f"(target < {LEDGER_DISABLED_TARGET_PCT}%) -> {verdict}")
elif os.environ.get("BENCH_ALLOW_MISSING_BASELINE") == "1":
    print("ledger disabled-path: no stored baseline to compare against "
          "(recorded one for next time; allowed by "
          "BENCH_ALLOW_MISSING_BASELINE=1)")
else:
    print(f"ERROR: no stored disarmed baseline in {ledger_file}; the "
          f"ledger disabled-path gate cannot run. Re-run with "
          f"BENCH_ALLOW_MISSING_BASELINE=1 to record a first baseline.",
          file=sys.stderr)
    sys.exit(1)
rec = ledger_rec["armed"]
verdict = "PASS" if rec["pass"] else "WARN (noisy machine or a regression)"
print(f"ledger armed-vs-disarmed (adapter_cg): {rec['overhead_pct']:+.2f}% "
      f"(target < {LEDGER_ARMED_TARGET_PCT}%) -> {verdict}")
print(f"recorded {ledger_file}")

# Triangular-solve guard: level-scheduled ILU(0) apply vs the serial
# sweeps on the paper's 200×200 problem, paired and order-alternated.
# Two verdicts with different strictness:
#   * bit_identical: the scheduled result must equal the serial one
#     bit-for-bit on ANY host — a miss is a correctness bug, hard fail.
#   * speedup (target ≥ 2× at 4 threads): only meaningful when the host
#     actually has ≥ 4 cores; on smaller hosts it is recorded but the
#     verdict is SKIP (a parallel sweep cannot beat serial on one core).
with open(os.path.join(out_dir, "trsv_guard.json")) as f:
    tg = json.load(f)

TRSV_TARGET_SPEEDUP = 2.0
trsv_rec = {
    **tg,
    "target_speedup": TRSV_TARGET_SPEEDUP,
    "pass": bool(tg["bit_identical"]
                 and (not tg["sufficient_cores"]
                      or tg["speedup"] >= TRSV_TARGET_SPEEDUP)),
}
with open("BENCH_trsv.json", "w") as f:
    json.dump(trsv_rec, f, indent=2)
    f.write("\n")

if not tg["bit_identical"]:
    print("ERROR: scheduled triangular solve is NOT bit-identical to the "
          "serial sweep — determinism contract broken.", file=sys.stderr)
    sys.exit(1)
if tg["sufficient_cores"]:
    verdict = ("PASS" if tg["speedup"] >= TRSV_TARGET_SPEEDUP
               else "WARN (below target; noisy machine or a regression)")
    print(f"trsv scheduled vs serial at {tg['threads']} threads: "
          f"{tg['speedup']:.2f}x (target >= {TRSV_TARGET_SPEEDUP}x) "
          f"-> {verdict}")
else:
    print(f"trsv speedup check SKIPPED: host has {tg['host_cores']} core(s) "
          f"< {tg['threads']} threads (bit-identity verified; "
          f"measured {tg['speedup']:.4f}x)")
print("recorded BENCH_trsv.json")

# Sparse-format guard: the autotuner's chosen format vs CSR on three
# representative matrices (dense band, FEM blocks, skewed rows), paired
# and order-alternated. Two verdicts, mirroring the trsv guard:
#   * bit_identical: every format's matvec must equal CSR's bit-for-bit
#     on EVERY workload — a miss is a correctness bug, hard fail;
#   * speedup (target ≥ 1.2×): only gated where the autotuner actually
#     converted (`applicable`); the skewed workload stays CSR by design,
#     so its entry carries no speedup claim (recorded as SKIP).
with open(os.path.join(out_dir, "format_guard.json")) as f:
    fmt = json.load(f)

FORMAT_TARGET_SPEEDUP = 1.2
fmt_rec = {"target_speedup": FORMAT_TARGET_SPEEDUP, "trials": fmt["trials"],
           "formats": []}
all_pass = True
for w in fmt["formats"]:
    gated = w["applicable"]
    ok = bool(w["bit_identical"]
              and (not gated or w["speedup"] >= FORMAT_TARGET_SPEEDUP))
    all_pass = all_pass and ok
    fmt_rec["formats"].append({**w, "pass": ok})
fmt_rec["pass"] = all_pass
with open("BENCH_format.json", "w") as f:
    json.dump(fmt_rec, f, indent=2)
    f.write("\n")

for w in fmt_rec["formats"]:
    if not w["bit_identical"]:
        print(f"ERROR: format '{w['chosen']}' matvec on '{w['workload']}' is "
              f"NOT bit-identical to CSR — determinism contract broken.",
              file=sys.stderr)
        sys.exit(1)
for w in fmt_rec["formats"]:
    if w["applicable"]:
        verdict = ("PASS" if w["speedup"] >= FORMAT_TARGET_SPEEDUP
                   else "WARN (below target; noisy machine or a regression)")
        print(f"format {w['chosen']} vs csr on {w['workload']}: "
              f"{w['speedup']:.2f}x (target >= {FORMAT_TARGET_SPEEDUP}x) "
              f"-> {verdict}")
    else:
        print(f"format check SKIPPED on {w['workload']}: autotuner kept csr "
              f"(bit-identity verified; measured {w['speedup']:.4f}x)")
print("recorded BENCH_format.json")

# Multi-RHS session guard: one batched solve over k right-hand sides vs
# k single solves through the RKSP adapter (paired, order-alternated),
# plus cold-vs-warm session setup through the RSLU adapter. Verdicts:
#   * bit_identical: the batched solution must equal the sequential one
#     bit-for-bit, column by column — a miss is a correctness bug, hard
#     fail;
#   * speedup (target ≥ 1.8×): the batched driver fuses each iteration's
#     reductions across all k columns into one exchange;
#   * warm setup (target < 5% of cold): a cache-hit session must skip
#     partitioning, halo planning and factorization entirely, leaving
#     only the caller's CSR ingest.
with open(os.path.join(out_dir, "multirhs_guard.json")) as f:
    mr = json.load(f)

MULTIRHS_TARGET_SPEEDUP = 1.8
WARM_SETUP_TARGET_PCT = 5.0
mr_rec = {
    **mr,
    "target_speedup": MULTIRHS_TARGET_SPEEDUP,
    "setup": {**mr["setup"], "target_pct": WARM_SETUP_TARGET_PCT,
              "pass": mr["setup"]["warm_over_cold_pct"] < WARM_SETUP_TARGET_PCT},
    "pass": bool(mr["bit_identical"]
                 and mr["speedup"] >= MULTIRHS_TARGET_SPEEDUP
                 and mr["setup"]["warm_over_cold_pct"] < WARM_SETUP_TARGET_PCT),
}
with open("BENCH_multirhs.json", "w") as f:
    json.dump(mr_rec, f, indent=2)
    f.write("\n")

if not mr["bit_identical"]:
    print("ERROR: batched multi-RHS solve is NOT bit-identical to the "
          "sequential solves — determinism contract broken.", file=sys.stderr)
    sys.exit(1)
verdict = ("PASS" if mr["speedup"] >= MULTIRHS_TARGET_SPEEDUP
           else "WARN (below target; noisy machine or a regression)")
print(f"multi-RHS batched vs sequential ({mr['workload']}): "
      f"{mr['speedup']:.2f}x (target >= {MULTIRHS_TARGET_SPEEDUP}x) "
      f"-> {verdict}")
setup = mr_rec["setup"]
verdict = ("PASS" if setup["pass"]
           else "WARN (above target; noisy machine or a regression)")
print(f"warm session setup vs cold: {setup['warm_over_cold_pct']:.2f}% "
      f"(target < {WARM_SETUP_TARGET_PCT}%) -> {verdict}")
print("recorded BENCH_multirhs.json")
EOF
