#!/usr/bin/env bash
# Bench regression sentinel: diff a freshly produced solve ledger and the
# stored BENCH_*.json records against baselines under baselines/, with
# tolerances, and exit nonzero on efficiency regressions.
#
# What runs:
#   1. `ledger_probe` produces a fresh solve_ledger.json (4-rank CG+ILU(0)
#      on the 2-D Laplacian through the RKSP adapter);
#   2. `ledger_diff` compares it against baselines/solve_ledger.json —
#      per-unit modeled flops/bytes must match exactly (the work model is
#      deterministic), rank-aggregated compute-kernel GB/s / GF/s may not
#      drop by more than $LEDGER_TOLERANCE_PCT (default 15);
#   3. a self-test feeds `ledger_diff` a doctored copy of the baseline
#      whose kernel times are inflated by 1.25x — a 20% efficiency drop
#      everywhere — and asserts it FAILS, so a broken diff can never wave
#      regressions through;
#   4. every BENCH_*.json with a counterpart under baselines/ is checked:
#      numeric leaves named *_pct must not exceed baseline + tolerance,
#      `pass` flags must not flip to false.
#
# First run: no baselines exist. That is a hard ERROR unless
# BENCH_ALLOW_MISSING_BASELINE=1, in which case the fresh ledger and the
# current BENCH_*.json records are installed as baselines for next time.
#
# Usage: scripts/regression_sentinel.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_DIR="${BASELINE_DIR:-baselines}"
TOL="${LEDGER_TOLERANCE_PCT:-15}"
FRESH="$(mktemp -d)"
trap 'rm -rf "$FRESH"' EXIT

echo "== regression sentinel (baselines: $BASELINE_DIR, tolerance: ${TOL}%) =="

echo "-- producing a fresh solve ledger"
cargo run -q -p lisi-bench --release --bin ledger_probe -- "$FRESH/solve_ledger.json" \
  > /dev/null
DIFF=(cargo run -q -p lisi-bench --release --bin ledger_diff --)

if [[ ! -f "$BASELINE_DIR/solve_ledger.json" ]]; then
  if [[ "${BENCH_ALLOW_MISSING_BASELINE:-0}" == "1" ]]; then
    mkdir -p "$BASELINE_DIR"
    cp "$FRESH/solve_ledger.json" "$BASELINE_DIR/solve_ledger.json"
    for b in BENCH_*.json; do
      [[ -f "$b" ]] && cp "$b" "$BASELINE_DIR/$b"
    done
    echo "no ledger baseline; installed fresh baselines into $BASELINE_DIR/" \
         "(allowed by BENCH_ALLOW_MISSING_BASELINE=1)"
    exit 0
  fi
  echo "ERROR: no baseline at $BASELINE_DIR/solve_ledger.json; the sentinel" \
       "cannot gate. Re-run with BENCH_ALLOW_MISSING_BASELINE=1 to record" \
       "first baselines." >&2
  exit 1
fi

echo "-- ledger diff vs baseline"
"${DIFF[@]}" "$BASELINE_DIR/solve_ledger.json" "$FRESH/solve_ledger.json" "$TOL"

echo "-- self-test: doctored ledger (20% efficiency drop) must FAIL"
python3 - "$BASELINE_DIR/solve_ledger.json" "$FRESH/doctored.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
# Inflate every kernel's time by 1.25x: same modeled work over 25% more
# seconds is exactly a 20% drop in achieved GB/s and GF/s.
for row in doc.get("kernels", []):
    if isinstance(row.get("seconds"), (int, float)):
        row["seconds"] *= 1.25
    for field in ("gbs", "gflops"):
        if isinstance(row.get(field), (int, float)):
            row[field] *= 0.8
with open(sys.argv[2], "w") as f:
    json.dump(doc, f)
EOF
if "${DIFF[@]}" "$BASELINE_DIR/solve_ledger.json" "$FRESH/doctored.json" "$TOL" \
    > /dev/null 2>&1; then
  echo "ERROR: ledger_diff accepted a 20% doctored efficiency drop — the" \
       "sentinel is broken." >&2
  exit 1
fi
echo "self-test OK: doctored drop rejected"

echo "-- BENCH_*.json vs stored baselines"
python3 - "$BASELINE_DIR" "$TOL" <<'EOF'
import glob, json, os, sys

baseline_dir, tol = sys.argv[1], float(sys.argv[2])
failures = []
checked = 0

def walk(base, cur, path):
    global checked
    if isinstance(base, dict) and isinstance(cur, dict):
        for k, v in base.items():
            if k in cur:
                walk(v, cur[k], f"{path}.{k}")
        return
    if isinstance(base, list) and isinstance(cur, list):
        for i, (b, c) in enumerate(zip(base, cur)):
            walk(b, c, f"{path}[{i}]")
        return
    leaf = path.rsplit(".", 1)[-1]
    # Overhead percentages may not exceed baseline by more than the
    # tolerance (in points); pass verdicts may not flip to false.
    if leaf.endswith("_pct") and "target" not in leaf \
            and isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        checked += 1
        if cur > base + tol:
            failures.append(f"{path}: {base:+.2f}% -> {cur:+.2f}% "
                            f"(tolerance +{tol} points)")
    elif leaf == "pass" and base is True and cur is False:
        checked += 1
        failures.append(f"{path}: pass flipped true -> false")

for bench in sorted(glob.glob("BENCH_*.json")):
    stored = os.path.join(baseline_dir, bench)
    if not os.path.exists(stored):
        print(f"(no baseline for {bench}; skipped)")
        continue
    with open(stored) as f:
        base = json.load(f)
    with open(bench) as f:
        cur = json.load(f)
    walk(base, cur, bench)

if failures:
    print(f"{len(failures)} bench regression(s):", file=sys.stderr)
    for f_ in failures:
        print(f"  REGRESSION: {f_}", file=sys.stderr)
    sys.exit(1)
print(f"bench records OK ({checked} gated leaves compared)")
EOF

echo "SENTINEL PASSED"
