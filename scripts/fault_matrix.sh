#!/usr/bin/env bash
# Fault matrix: sweep the resilience example across one canned fault plan
# per injection kind/route and summarise how the resilient driver fared.
#
# Each row arms a different RSPARSE_FAULTS plan (see crates/comm/src/fault.rs
# for the grammar) against the same 4-rank cg -> gmres -> lu policy:
#
#   allreduce-corrupt   poisons rank 2's ‖r₀‖ contribution (the canonical
#                       acceptance scenario: CG diverges, swap recovers)
#   allreduce-error     typed CommError::Injected out of a collective
#                       (transient: same-backend retry, peers ride the
#                       deadlock watchdog)
#   halo-recv-corrupt   NaN lands in a received halo (screened + counted,
#                       NaN spreads rank-consistently via the reduction)
#   halo-send-corrupt   NaN leaves through a sent halo
#   halo-delay          a 50 ms stall on a halo receive (benign: the solve
#                       must succeed on the first attempt)
#   send-truncate       a halo message loses its last element (length
#                       mismatch surfaces as a typed transport error)
#   kill-rank-solve     rank 2 permanently stops servicing communication
#                       mid-CG (allreduce call 30 ≈ iteration 14) with
#                       checkpointing every 10 iterations armed: the three
#                       survivors shrink the cohort, repartition the dead
#                       rank's rows and resume from the iteration-10
#                       snapshot (recovery code 3)
#   kill-rank-setup     rank 1 dies during the first halo-plan exchange,
#                       before any iterate exists: survivors shrink and
#                       restart from zero on the repartitioned layout
#
# Every run must exit 0 — the driver's contract is a structured outcome,
# never a hang or a panic. The per-rank attempts/recovery lines from the
# example output tell the story per plan; the watchdog is kept short so
# rank-divergent plans convert blocked peers into retries quickly. The
# ENVS column supplies per-plan knobs (checkpoint cadence, a tighter
# watchdog for the kill rows whose final gather must time out on the
# dead rank).
#
# Usage: scripts/fault_matrix.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export RCOMM_DEADLOCK_TIMEOUT_SECS="${RCOMM_DEADLOCK_TIMEOUT_SECS:-5}"

echo "== building the resilience example =="
cargo build -q --release --example resilience

declare -a NAMES=(
  allreduce-corrupt
  allreduce-error
  halo-recv-corrupt
  halo-send-corrupt
  halo-delay
  send-truncate
  kill-rank-solve
  kill-rank-setup
)
declare -a PLANS=(
  'op=allreduce,rank=2,call=2,kind=corrupt;seed=11'
  'op=allreduce,rank=1,call=2,kind=error'
  'op=recv,rank=1,tag=7001,call=1,kind=corrupt;seed=5'
  'op=send,rank=3,tag=7001,call=1,kind=corrupt;seed=7'
  'op=recv,rank=2,tag=7001,call=1,kind=delay,delay_ms=50'
  'op=send,rank=1,tag=7001,call=1,kind=truncate'
  'op=allreduce,rank=2,call=30,kind=kill'
  'op=alltoall,rank=1,call=1,kind=kill'
)
# Per-plan environment knobs, word-split on purpose.
declare -a ENVS=(
  ''
  ''
  ''
  ''
  ''
  ''
  'RSPARSE_CHECKPOINT_EVERY=10 RCOMM_DEADLOCK_TIMEOUT_SECS=2'
  'RCOMM_DEADLOCK_TIMEOUT_SECS=2'
)

fail=0
summary=""
for i in "${!NAMES[@]}"; do
  name="${NAMES[$i]}"
  plan="${PLANS[$i]}"
  extra_env="${ENVS[$i]}"
  echo
  echo "== $name: ${extra_env:+$extra_env }RSPARSE_FAULTS='$plan' =="
  log="$(mktemp)"
  # shellcheck disable=SC2086
  if env $extra_env RSPARSE_FAULTS="$plan" ./target/release/examples/resilience >"$log" 2>&1; then
    verdict="ok"
    # The kill rows must actually demonstrate the elastic path: at least
    # one survivor line reporting recovery code 3 (cohort shrink).
    case "$name" in
      kill-*)
        if ! grep -Eq 'rank [0-9]+: converged=true .*recovery=3' "$log"; then
          verdict="FAILED"
          fail=1
        fi
        ;;
    esac
  else
    verdict="FAILED"
    fail=1
  fi
  # The per-rank outcome lines from the faulted half of the run.
  sed -n '/-- with the fault armed --/,/-- fault disarmed/p' "$log" \
    | grep -E 'rank [0-9]+:|rewiring' || true
  [ "$verdict" = FAILED ] && tail -n 20 "$log"
  summary+="$(printf '%-18s %s' "$name" "$verdict")"$'\n'
  rm -f "$log"
done

echo
echo "== fault matrix summary =="
printf '%s' "$summary"
if [ "$fail" -ne 0 ]; then
  echo "FAULT MATRIX FAILED"
  exit 1
fi
echo "ALL PLANS HANDLED"
