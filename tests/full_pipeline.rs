//! End-to-end integration: the paper's whole experiment pipeline — the
//! parallel mesh generator feeds a block-row-partitioned system to a LISI
//! solver component on every rank, which solves it with each underlying
//! package, and the assembled solution must match the manufactured
//! discrete solution.

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    RaztecAdapter, RkspAdapter, RmgAdapter, RsluAdapter, SolveReport, SparseSolverPort,
    SparseStruct, STATUS_LEN,
};
use cca_lisi::mesh::manufactured::Manufactured;

/// Drive any adapter over `p` ranks against a manufactured system.
fn pipeline(
    p: usize,
    man: &Manufactured,
    make: &(dyn Fn() -> Box<dyn SparseSolverPort> + Sync),
    params: &[(&str, &str)],
) -> (SolveReport, f64) {
    let n = man.exact.len();
    let out = Universe::run(p, |comm| {
        let part = cca_lisi::sparse::BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = man.matrix.row_block(range.start, range.end).unwrap();
        let solver = make();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(range.start).unwrap();
        solver.set_local_rows(range.len()).unwrap();
        solver.set_local_nnz(local.nnz()).unwrap();
        solver.set_global_cols(n).unwrap();
        for (k, v) in params {
            solver.set(k, v).unwrap();
        }
        solver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        solver.setup_rhs(&man.rhs[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
    });
    // All ranks must report identical status.
    for (rep, _) in &out {
        assert_eq!(rep.iterations, out[0].0.iterations);
        assert_eq!(rep.converged, out[0].0.converged);
    }
    let (rep, full) = &out[0];
    (*rep, man.error_inf(full))
}

#[test]
fn every_package_solves_the_paper_problem_at_every_rank_count() {
    let man = cca_lisi::mesh::manufactured::paper_manufactured(12);
    type MK = Box<dyn Fn() -> Box<dyn SparseSolverPort> + Sync>;
    type Package = (&'static str, MK, Vec<(&'static str, &'static str)>);
    let packages: Vec<Package> = vec![
        (
            "rksp",
            Box::new(|| Box::new(RkspAdapter::new())),
            vec![("solver", "bicgstab"), ("preconditioner", "ilu"), ("tol", "1e-10")],
        ),
        (
            "raztec",
            Box::new(|| Box::new(RaztecAdapter::new())),
            vec![("solver", "gmres"), ("preconditioner", "jacobi"), ("tol", "1e-10")],
        ),
        ("rslu", Box::new(|| Box::new(RsluAdapter::new())), vec![("ordering", "mmd")]),
    ];
    for (name, make, params) in &packages {
        for p in [1usize, 2, 3, 4] {
            let (rep, err) = pipeline(p, &man, make.as_ref(), params);
            assert!(rep.converged, "{name} p={p}");
            assert!(err < 1e-6, "{name} p={p}: err = {err}");
        }
    }
}

#[test]
fn multigrid_adapter_joins_the_family_on_square_grids() {
    // RMG needs an odd grid for coarsening and a Poisson-like operator.
    let m = 15;
    let a = cca_lisi::sparse::generate::laplacian_2d(m);
    let exact = cca_lisi::sparse::generate::random_vector(m * m, 3);
    let man = Manufactured::new(a, exact).unwrap();
    for p in [1usize, 2] {
        let (rep, err) = pipeline(
            p,
            &man,
            &|| Box::new(RmgAdapter::new()),
            &[("smoother", "sgs"), ("tol", "1e-9")],
        );
        assert!(rep.converged, "p = {p}");
        assert!(err < 1e-6, "p = {p}: err = {err}");
        assert!(rep.iterations < 30, "multigrid cycle count stays O(1)");
    }
}

#[test]
fn iterative_packages_report_monotone_work_with_problem_size() {
    // Not a timing test: iteration counts must grow with the grid, the
    // paper's Table 1 "Iters" column shape.
    let mut iters = Vec::new();
    for m in [8usize, 16, 32] {
        let man = cca_lisi::mesh::manufactured::paper_manufactured(m);
        let (rep, _) = pipeline(
            2,
            &man,
            &|| Box::new(RkspAdapter::new()),
            &[("solver", "bicgstab"), ("preconditioner", "jacobi"), ("tol", "1e-8")],
        );
        assert!(rep.converged);
        iters.push(rep.iterations);
    }
    assert!(iters[0] < iters[1] && iters[1] < iters[2], "{iters:?}");
}

#[test]
fn parallel_mesh_generator_feeds_the_solver_without_a_global_matrix() {
    // The true paper pipeline: no rank ever assembles the global system.
    let m = 14;
    let problem = cca_lisi::mesh::paper_problem(m);
    let n = m * m;
    let out = Universe::run(4, |comm| {
        let local = problem.assemble_local(comm);
        let solver = RkspAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(local.partition.start_row(local.rank)).unwrap();
        solver.set_local_rows(local.matrix.rows()).unwrap();
        solver.set_global_cols(n).unwrap();
        solver.set("solver", "gmres").unwrap();
        solver.set("preconditioner", "ilu").unwrap();
        solver.set_double("tol", 1e-10).unwrap();
        solver
            .setup_matrix(
                local.matrix.values(),
                local.matrix.row_ptr(),
                local.matrix.col_idx(),
                SparseStruct::Csr,
            )
            .unwrap();
        solver.setup_rhs(&local.rhs, 1).unwrap();
        let mut x = vec![0.0; local.matrix.rows()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        comm.allgatherv(&x).unwrap()
    });
    // Verify against the serial reference solve.
    let (a, b) = problem.assemble_global();
    let reference = a.to_dense().solve(&b).unwrap();
    for got in out {
        for (g, e) in got.iter().zip(&reference) {
            assert!((g - e).abs() < 1e-6, "{g} vs {e}");
        }
    }
}

#[test]
fn status_array_times_are_populated() {
    let man = cca_lisi::mesh::manufactured::paper_manufactured(10);
    let (rep, _) = pipeline(
        2,
        &man,
        &|| Box::new(RkspAdapter::new()),
        &[("solver", "gmres"), ("preconditioner", "jacobi")],
    );
    assert!(rep.setup_seconds > 0.0);
    assert!(rep.solve_seconds > 0.0);
    assert!(rep.residual >= 0.0);
}
