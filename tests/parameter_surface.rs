//! The generic parameter surface (paper §6.5): LISI deliberately uses
//! generic `set(key, value)` methods instead of one named method per
//! parameter. These tests drive package-specific knobs — including the
//! drop-tolerance/fill family the paper calls out — purely through
//! strings, and check `get_all` round-trips what was set.

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    RaztecAdapter, RkspAdapter, RsluAdapter, SolveReport, SparseSolverPort, SparseStruct,
    STATUS_LEN,
};

fn drive(
    solver: &dyn SparseSolverPort,
    comm: &cca_lisi::comm::Communicator,
    a: &cca_lisi::sparse::CsrMatrix,
    b: &[f64],
) -> (SolveReport, Vec<f64>) {
    let n = a.rows();
    solver.initialize(comm.dup().unwrap()).unwrap();
    solver.set_start_row(0).unwrap();
    solver.set_local_rows(n).unwrap();
    solver.set_global_cols(n).unwrap();
    solver
        .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
        .unwrap();
    solver.setup_rhs(b, 1).unwrap();
    let mut x = vec![0.0; n];
    let mut status = [0.0; STATUS_LEN];
    solver.solve(&mut x, &mut status).unwrap();
    (SolveReport::from_slice(&status), x)
}

#[test]
fn ilut_fill_and_droptol_flow_through_generic_keys() {
    let a = cca_lisi::sparse::generate::laplacian_2d(12);
    let x_true = cca_lisi::sparse::generate::random_vector(144, 4);
    let b = a.matvec(&x_true).unwrap();
    let out = Universe::run(1, |comm| {
        // Loose vs tight ILUT via string keys only.
        let mut iters = Vec::new();
        for (droptol, fill) in [("1e-1", "2"), ("1e-4", "20")] {
            let s = RkspAdapter::new();
            s.set("solver", "gmres").unwrap();
            s.set("preconditioner", "ilut").unwrap();
            s.set("droptol", droptol).unwrap();
            s.set("fill", fill).unwrap();
            s.set("tol", "1e-10").unwrap();
            let (rep, x) = drive(&s, comm, &a, &b);
            assert!(rep.converged);
            let err = x
                .iter()
                .zip(&x_true)
                .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
            assert!(err < 1e-6, "droptol {droptol}: err = {err}");
            iters.push(rep.iterations);
        }
        iters
    });
    let iters = &out[0];
    assert!(
        iters[1] < iters[0],
        "tighter ILUT must converge in fewer iterations: {iters:?}"
    );
}

#[test]
fn aztec_poly_order_key_changes_convergence() {
    let a = cca_lisi::sparse::generate::random_diag_dominant(80, 4, 15);
    let x_true = cca_lisi::sparse::generate::random_vector(80, 5);
    let b = a.matvec(&x_true).unwrap();
    let out = Universe::run(1, |comm| {
        let mut iters = Vec::new();
        for ord in ["0", "4"] {
            let s = RaztecAdapter::new();
            s.set("solver", "gmres").unwrap();
            s.set("preconditioner", "neumann").unwrap();
            s.set("poly_ord", ord).unwrap();
            s.set("tol", "1e-10").unwrap();
            let (rep, x) = drive(&s, comm, &a, &b);
            assert!(rep.converged, "poly_ord {ord}");
            let err = x
                .iter()
                .zip(&x_true)
                .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
            assert!(err < 1e-6);
            iters.push(rep.iterations);
        }
        iters
    });
    assert!(out[0][1] <= out[0][0], "higher-order Neumann should not be slower: {:?}", out[0]);
}

#[test]
fn rslu_equilibration_key_survives_badly_scaled_systems() {
    // Rows spread over many orders of magnitude.
    let base = cca_lisi::sparse::generate::random_diag_dominant(40, 3, 77);
    let scales: Vec<f64> = (0..40).map(|i| 10f64.powi((i % 11) - 5)).collect();
    let a = cca_lisi::sparse::ops::diag_scale_rows(&scales, &base).unwrap();
    let x_true = cca_lisi::sparse::generate::random_vector(40, 6);
    let b = a.matvec(&x_true).unwrap();
    let out = Universe::run(1, |comm| {
        let s = RsluAdapter::new();
        s.set_bool("equil", true).unwrap();
        s.set("ordering", "rcm").unwrap();
        let (rep, x) = drive(&s, comm, &a, &b);
        (rep, x)
    });
    let (rep, x) = &out[0];
    assert!(rep.converged);
    let err = x
        .iter()
        .zip(&x_true)
        .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
    assert!(err < 1e-7, "err = {err}");
}

#[test]
fn get_all_round_trips_every_generic_setter() {
    let s = RkspAdapter::new();
    s.set("solver", "tfqmr").unwrap();
    s.set_int("maxits", 321).unwrap();
    s.set_bool("matrix_free", false).unwrap();
    s.set_double("tol", 2.5e-7).unwrap();
    s.set("application_specific_key", "opaque-value").unwrap();
    let dump = s.get_all();
    for needle in [
        "solver=tfqmr",
        "maxits=321",
        "matrix_free=false",
        "application_specific_key=opaque-value",
    ] {
        assert!(dump.contains(needle), "missing {needle} in:\n{dump}");
    }
    // Unknown keys are carried, not rejected — the generic-setter design.
    assert!(dump.contains("package=rksp"));
}
