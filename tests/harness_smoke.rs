//! Smoke tests on the benchmark harness itself: both measurement paths
//! must run, converge, agree on iteration counts, and produce sane
//! timings — the preconditions for trusting Table 1 / Figure 5 output.

use lisi_bench::{measure_pair, paper_workload, run_cca, run_native, Package};
use rcomm::Universe;

#[test]
fn harness_paths_agree_for_all_packages() {
    let w = paper_workload(10);
    for package in Package::ALL {
        let out = Universe::run(2, |comm| {
            let n = run_native(comm, package, &w);
            let c = run_cca(comm, package, &w);
            (n, c)
        });
        let (n, c) = &out[0];
        assert!(n.converged && c.converged, "{package:?}");
        assert_eq!(n.iterations, c.iterations, "{package:?}");
        assert!(n.seconds > 0.0 && c.seconds > 0.0);
        assert!(n.residual < 1e-6 && c.residual < 1e-6, "{package:?}");
    }
}

#[test]
fn measure_pair_median_is_within_sample_range() {
    let w = paper_workload(8);
    let out = Universe::run(2, |comm| {
        let (native, cca_s, iters) = measure_pair(comm, Package::Rksp, &w, 3);
        // Sanity on magnitudes: medians positive, iterations match a
        // directly run solve.
        let reference = run_native(comm, Package::Rksp, &w);
        (native, cca_s, iters, reference.iterations)
    });
    let (native, cca_s, iters, ref_iters) = out[0];
    assert!(native > 0.0 && cca_s > 0.0);
    assert_eq!(iters, ref_iters);
    // On the same substrate the two paths stay within a generous factor.
    let ratio = cca_s / native;
    assert!(ratio > 0.2 && ratio < 5.0, "suspicious ratio {ratio}");
}

#[test]
fn workload_nnz_matches_the_paper_formula_for_all_sizes() {
    for m in [10usize, 50, 200] {
        let w = paper_workload(m);
        let (a, _) = w.problem().assemble_global();
        assert_eq!(a.nnz(), w.nnz());
        assert_eq!(a.rows(), w.unknowns());
    }
}
