//! Failure injection through the LISI interface: the error contract must
//! hold across packages — typed errors with negative SIDL codes, no
//! panics, and failures visible on every rank of the cohort.

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    LisiError, RaztecAdapter, RkspAdapter, RsluAdapter, SparseSolverPort, SparseStruct,
    STATUS_LEN,
};

type MakePort = Box<dyn Fn() -> Box<dyn SparseSolverPort> + Sync>;

fn adapters() -> Vec<(&'static str, MakePort)> {
    vec![
        ("rksp", Box::new(|| Box::new(RkspAdapter::new()))),
        ("raztec", Box::new(|| Box::new(RaztecAdapter::new()))),
        ("rslu", Box::new(|| Box::new(RsluAdapter::new()))),
    ]
}

#[test]
fn solve_before_initialize_is_not_initialized() {
    for (name, make) in adapters() {
        let s = make();
        s.set_start_row(0).unwrap();
        s.set_local_rows(2).unwrap();
        s.set_global_cols(2).unwrap();
        s.setup_matrix_coo(&[1.0, 1.0], &[0, 1], &[0, 1]).unwrap();
        s.setup_rhs(&[1.0, 1.0], 1).unwrap();
        let mut x = [0.0; 2];
        let mut st = [0.0; STATUS_LEN];
        let err = s.solve(&mut x, &mut st).unwrap_err();
        assert_eq!(err.code(), LisiError::NotInitialized.code(), "{name}");
    }
}

#[test]
fn setup_matrix_before_distribution_setters_is_a_phase_error() {
    for (name, make) in adapters() {
        let s = make();
        let err = s.setup_matrix_coo(&[1.0], &[0], &[0]).unwrap_err();
        assert!(matches!(err, LisiError::BadPhase(_)), "{name}: {err:?}");
    }
}

#[test]
fn wrong_buffer_sizes_are_invalid_input() {
    let out = Universe::run(1, |comm| {
        let mut results = Vec::new();
        for (name, make) in adapters() {
            let s = make();
            s.initialize(comm.dup().unwrap()).unwrap();
            s.set_start_row(0).unwrap();
            s.set_local_rows(3).unwrap();
            s.set_global_cols(3).unwrap();
            // RHS of the wrong length.
            let rhs_err = s.setup_rhs(&[1.0, 2.0], 1).unwrap_err();
            // Solution buffer of the wrong length.
            s.setup_matrix_coo(&[1.0, 1.0, 1.0], &[0, 1, 2], &[0, 1, 2]).unwrap();
            s.setup_rhs(&[1.0, 2.0, 3.0], 1).unwrap();
            let mut x = [0.0; 2];
            let mut st = [0.0; STATUS_LEN];
            let sol_err = s.solve(&mut x, &mut st).unwrap_err();
            // Status buffer too short.
            let mut x3 = [0.0; 3];
            let mut st_short = [0.0; 2];
            let st_err = s.solve(&mut x3, &mut st_short).unwrap_err();
            results.push((
                name,
                matches!(rhs_err, LisiError::InvalidInput(_)),
                matches!(sol_err, LisiError::InvalidInput(_)),
                matches!(st_err, LisiError::InvalidInput(_)),
            ));
        }
        results
    });
    for (name, a, b, c) in &out[0] {
        assert!(a & b & c, "{name}");
    }
}

#[test]
fn singular_system_fails_cleanly_on_every_rank() {
    // Zero column ⇒ structurally singular; the direct package must
    // report failure on ALL ranks (not just the root that factors).
    let out = Universe::run(3, |comm| {
        let n = 6;
        let part = cca_lisi::sparse::BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        // A = I except column 5 is zero (row 5 empty too).
        let mut coo = cca_lisi::sparse::CooMatrix::new(range.len(), n);
        for (lr, g) in range.clone().enumerate() {
            if g != 5 {
                coo.push(lr, g, 1.0).unwrap();
            }
        }
        let local = coo.to_csr();
        let s = RsluAdapter::new();
        s.initialize(comm.dup().unwrap()).unwrap();
        s.set_start_row(range.start).unwrap();
        s.set_local_rows(range.len()).unwrap();
        s.set_global_cols(n).unwrap();
        s.setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        s.setup_rhs(&vec![1.0; range.len()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut st = [0.0; STATUS_LEN];
        s.solve(&mut x, &mut st).unwrap_err()
    });
    for err in out {
        assert!(matches!(err, LisiError::Package(_)), "{err:?}");
        assert!(err.to_string().to_lowercase().contains("singular"), "{err}");
    }
}

#[test]
fn nonconvergence_reports_maxits_through_the_status_array() {
    let out = Universe::run(1, |comm| {
        let a = cca_lisi::sparse::generate::laplacian_2d(10);
        let n = 100;
        let s = RkspAdapter::new();
        s.initialize(comm.dup().unwrap()).unwrap();
        s.set_start_row(0).unwrap();
        s.set_local_rows(n).unwrap();
        s.set_global_cols(n).unwrap();
        s.set("solver", "cg").unwrap();
        s.set("preconditioner", "none").unwrap();
        s.set_double("tol", 1e-14).unwrap();
        s.set_int("maxits", 2).unwrap();
        s.setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr).unwrap();
        s.setup_rhs(&vec![1.0; n], 1).unwrap();
        let mut x = vec![0.0; n];
        let mut st = [0.0; STATUS_LEN];
        let err = s.solve(&mut x, &mut st).unwrap_err();
        (err, cca_lisi::lisi::SolveReport::from_slice(&st))
    });
    let (err, report) = &out[0];
    assert!(matches!(err, LisiError::Package(_)));
    // Even on failure the status array is filled so the application can
    // inspect what happened — the post-solve contract.
    assert!(!report.converged);
    assert_eq!(report.iterations, 2);
    assert!(report.reason < 0);
}

#[test]
fn bad_parameters_surface_before_any_work() {
    let out = Universe::run(1, |comm| {
        let s = RaztecAdapter::new();
        s.initialize(comm.dup().unwrap()).unwrap();
        s.set_start_row(0).unwrap();
        s.set_local_rows(1).unwrap();
        s.set_global_cols(1).unwrap();
        s.set("tol", "soon").unwrap();
        s.setup_matrix_coo(&[1.0], &[0], &[0]).unwrap();
        s.setup_rhs(&[1.0], 1).unwrap();
        let mut x = [0.0];
        let mut st = [0.0; STATUS_LEN];
        s.solve(&mut x, &mut st).unwrap_err()
    });
    assert!(matches!(&out[0], LisiError::BadParameter { .. }));
}
