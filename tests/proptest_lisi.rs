//! Property-based integration tests on the interface contract: for random
//! well-conditioned systems, every input format, any index base, any rank
//! count, and any package must produce the same (correct) solution.

use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    RaztecAdapter, RkspAdapter, RsluAdapter, SparseSolverPort, SparseStruct, STATUS_LEN,
};
use cca_lisi::sparse::{generate, BlockRowPartition, MsrMatrix};
use proptest::prelude::*;

/// Solve a pre-assembled global system through an adapter on `p` ranks,
/// feeding the matrix in `structure` form with index base `offset`.
fn solve_via(
    adapter: &str,
    p: usize,
    a: &cca_lisi::sparse::CsrMatrix,
    b: &[f64],
    structure: SparseStruct,
    offset: usize,
) -> Vec<f64> {
    let n = a.rows();
    let out = Universe::run(p, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let solver: Box<dyn SparseSolverPort> = match adapter {
            "rksp" => Box::new(RkspAdapter::new()),
            "raztec" => Box::new(RaztecAdapter::new()),
            "rslu" => Box::new(RsluAdapter::new()),
            other => panic!("unknown adapter {other}"),
        };
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(range.start).unwrap();
        solver.set_local_rows(range.len()).unwrap();
        solver.set_global_cols(n).unwrap();
        solver.set("tol", "1e-11").unwrap();
        match structure {
            SparseStruct::Csr => {
                let ptr: Vec<usize> = local.row_ptr().iter().map(|v| v + offset).collect();
                let col: Vec<usize> = local.col_idx().iter().map(|v| v + offset).collect();
                solver
                    .setup_matrix_offset(local.values(), &ptr, &col, SparseStruct::Csr, offset)
                    .unwrap();
            }
            SparseStruct::Coo => {
                let coo = local.to_coo();
                let (lr, lc, lv) = coo.triplets();
                // COO carries *global* row ids through the interface.
                let gr: Vec<usize> =
                    lr.iter().map(|r| r + range.start + offset).collect();
                let gc: Vec<usize> = lc.iter().map(|c| c + offset).collect();
                solver
                    .setup_matrix_offset(lv, &gr, &gc, SparseStruct::Coo, offset)
                    .unwrap();
            }
            SparseStruct::Msr => {
                // Build the local-MSR layout: diagonal entries are the
                // (start + i) columns.
                assert_eq!(offset, 0, "test drives MSR at base 0");
                let local_sq = n == local.rows();
                let msr_src = if local_sq {
                    local.clone()
                } else {
                    // Generic path: construct MSR-like arrays by hand.
                    local.clone()
                };
                let nrows = msr_src.rows();
                let mut val = vec![0.0f64; nrows + 1];
                let mut ja = vec![0usize; nrows + 1];
                ja[0] = nrows + 1;
                let mut off_val = Vec::new();
                let mut off_ja = Vec::new();
                for i in 0..nrows {
                    let (cs, vs) = msr_src.row(i);
                    for (&c, &v) in cs.iter().zip(vs) {
                        if c == range.start + i {
                            val[i] = v;
                        } else {
                            off_val.push(v);
                            off_ja.push(c);
                        }
                    }
                    ja[i + 1] = nrows + 1 + off_val.len();
                }
                val.extend(off_val);
                ja.extend(off_ja);
                solver.setup_matrix(&val, &[], &ja, SparseStruct::Msr).unwrap();
            }
            other => panic!("format {other:?} not driven here"),
        }
        solver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        comm.allgatherv(&x).unwrap()
    });
    out.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn all_packages_agree_on_random_systems(
        seed in 0u64..5000,
        p in 1usize..4,
    ) {
        let n = 24;
        let a = generate::random_diag_dominant(n, 3, seed);
        let x_true = generate::random_vector(n, seed.wrapping_add(1));
        let b = a.matvec(&x_true).unwrap();
        for adapter in ["rksp", "raztec", "rslu"] {
            let x = solve_via(adapter, p, &a, &b, SparseStruct::Csr, 0);
            for (g, e) in x.iter().zip(&x_true) {
                prop_assert!((g - e).abs() < 1e-6, "{adapter} p={p}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn formats_and_offsets_are_equivalent(
        seed in 0u64..5000,
        p in 1usize..4,
        offset in 0usize..2,
    ) {
        let n = 20;
        let a = generate::random_diag_dominant(n, 3, seed);
        let x_true = generate::random_vector(n, seed.wrapping_add(9));
        let b = a.matvec(&x_true).unwrap();
        let via_csr = solve_via("rslu", p, &a, &b, SparseStruct::Csr, offset);
        let via_coo = solve_via("rslu", p, &a, &b, SparseStruct::Coo, offset);
        for ((c1, c2), e) in via_csr.iter().zip(&via_coo).zip(&x_true) {
            prop_assert!((c1 - e).abs() < 1e-8);
            prop_assert!((c2 - e).abs() < 1e-8);
        }
        if p == 1 {
            // MSR path (serial layout identical to the library's).
            let msr = MsrMatrix::from_csr(&a).unwrap();
            let _ = msr;
            let via_msr = solve_via("rslu", 1, &a, &b, SparseStruct::Msr, 0);
            for (g, e) in via_msr.iter().zip(&x_true) {
                prop_assert!((g - e).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn multi_rhs_matches_sequential_solves(
        seed in 0u64..5000,
        n_rhs in 1usize..4,
    ) {
        let n = 18;
        let a = generate::random_diag_dominant(n, 3, seed);
        let xs: Vec<Vec<f64>> =
            (0..n_rhs).map(|k| generate::random_vector(n, seed + k as u64)).collect();
        let mut flat_b = Vec::new();
        for x in &xs {
            flat_b.extend(a.matvec(x).unwrap());
        }
        let out = Universe::run(1, |comm| {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(n).unwrap();
            solver.set_global_cols(n).unwrap();
            solver
                .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
                .unwrap();
            solver.setup_rhs(&flat_b, n_rhs).unwrap();
            let mut x = vec![0.0; n * n_rhs];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            x
        });
        for (k, x_true) in xs.iter().enumerate() {
            for (g, e) in out[0][k * n..(k + 1) * n].iter().zip(x_true) {
                prop_assert!((g - e).abs() < 1e-7);
            }
        }
    }
}
