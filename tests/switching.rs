//! Dynamic solver switching through the CCA framework — the paper's
//! Figure 4 claim, asserted: the same driver code, with its uses port
//! rewired by the builder, gets correct solutions from every provider,
//! and the framework's event log records the rewiring.

use std::sync::Arc;

use cca_lisi::cca::{BuilderEvent, CcaResult, Component, Framework, Services};
use cca_lisi::comm::Universe;
use cca_lisi::lisi::{
    SolverComponent, SparseSolverPort, SparseStruct, SOLVER_PORT, SOLVER_PORT_TYPE, STATUS_LEN,
};

struct Driver;
impl Component for Driver {
    fn set_services(&mut self, services: &Services) -> CcaResult<()> {
        services.register_uses_port("solver", SOLVER_PORT_TYPE)
    }
}

/// Identical driver body for every provider, returning the full solution.
fn drive(
    comm: &cca_lisi::comm::Communicator,
    fw: &Framework,
    driver: &cca_lisi::cca::ComponentId,
    a: &cca_lisi::sparse::CsrMatrix,
    b: &[f64],
) -> Vec<f64> {
    let n = a.rows();
    let part = cca_lisi::sparse::BlockRowPartition::even(n, comm.size());
    let range = part.range(comm.rank());
    let local = a.row_block(range.start, range.end).unwrap();
    let port = fw
        .services(driver)
        .unwrap()
        .get_port::<Arc<dyn SparseSolverPort>>("solver")
        .unwrap();
    port.initialize(comm.dup().unwrap()).unwrap();
    port.set_start_row(range.start).unwrap();
    port.set_local_rows(range.len()).unwrap();
    port.set_global_cols(n).unwrap();
    port.set("tol", "1e-10").unwrap();
    port.setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
        .unwrap();
    port.setup_rhs(&b[range.clone()], 1).unwrap();
    let mut x = vec![0.0; range.len()];
    let mut status = [0.0; STATUS_LEN];
    port.solve(&mut x, &mut status).unwrap();
    comm.allgatherv(&x).unwrap()
}

#[test]
fn rewiring_the_uses_port_switches_packages_without_driver_changes() {
    let a = cca_lisi::sparse::generate::laplacian_2d(9);
    let n = a.rows();
    let x_true = cca_lisi::sparse::generate::random_vector(n, 13);
    let b = a.matvec(&x_true).unwrap();

    let out = Universe::run(2, |comm| {
        let mut fw = Framework::with_registry(cca_lisi::cca::sidl::SidlRegistry::lisi());
        let driver = fw.instantiate("driver", Box::new(Driver)).unwrap();
        let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
        let raztec = fw.instantiate("raztec", Box::new(SolverComponent::raztec())).unwrap();
        let rslu = fw.instantiate("rslu", Box::new(SolverComponent::rslu())).unwrap();

        let mut sols = Vec::new();
        fw.connect(&driver, "solver", &rksp, SOLVER_PORT).unwrap();
        sols.push(drive(comm, &fw, &driver, &a, &b));
        fw.reconnect(&driver, "solver", &raztec, SOLVER_PORT).unwrap();
        sols.push(drive(comm, &fw, &driver, &a, &b));
        fw.reconnect(&driver, "solver", &rslu, SOLVER_PORT).unwrap();
        sols.push(drive(comm, &fw, &driver, &a, &b));

        // The event log tells the switching story.
        let events = fw.events();
        let connects = events
            .iter()
            .filter(|e| matches!(e, BuilderEvent::Connected { .. }))
            .count();
        let disconnects = events
            .iter()
            .filter(|e| matches!(e, BuilderEvent::Disconnected { .. }))
            .count();
        (sols, connects, disconnects)
    });

    for (sols, connects, disconnects) in out {
        assert_eq!(connects, 3);
        assert_eq!(disconnects, 2);
        for (i, sol) in sols.iter().enumerate() {
            for (g, e) in sol.iter().zip(&x_true) {
                assert!((g - e).abs() < 1e-6, "provider {i}");
            }
        }
    }
}

#[test]
fn connecting_a_solver_port_to_a_wrong_typed_port_fails() {
    let mut fw = Framework::with_registry(cca_lisi::cca::sidl::SidlRegistry::lisi());
    let driver = fw.instantiate("driver", Box::new(Driver)).unwrap();
    let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
    // The solver's matrix-free port is a *uses* port — connecting the
    // driver's solver port to it must fail on type (and direction).
    assert!(fw.connect(&driver, "solver", &rksp, "matrix-free").is_err());
}

#[test]
fn destroying_the_connected_solver_leaves_driver_disconnected() {
    let mut fw = Framework::with_registry(cca_lisi::cca::sidl::SidlRegistry::lisi());
    let driver = fw.instantiate("driver", Box::new(Driver)).unwrap();
    let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
    fw.connect(&driver, "solver", &rksp, SOLVER_PORT).unwrap();
    fw.destroy(&rksp).unwrap();
    let services = fw.services(&driver).unwrap();
    assert!(services.get_port::<Arc<dyn SparseSolverPort>>("solver").is_err());
}
