//! # CCA-LISI — a CCA parallel sparse linear solver interface, in Rust
//!
//! A full reproduction of *"CCA-LISI: On Designing A CCA Parallel Sparse
//! Linear Solver Interface"* (Liu & Bramley, IPDPS 2007): the LISI
//! interface, a CCA component framework, an MPI-like SPMD substrate, and
//! four independently implemented solver packages behind the one
//! interface.
//!
//! This umbrella crate re-exports every workspace member under one roof
//! so examples and downstream users need a single dependency:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`probe`] | `lisi-probe` | per-rank tracing, metrics, solve monitors |
//! | [`comm`] | `lisi-comm` | MPI-like message passing (ranks, collectives) |
//! | [`sparse`] | `lisi-sparse` | formats, kernels, distributed matrices |
//! | [`mesh`] | `lisi-mesh` | the paper's PDE problem generator |
//! | [`krylov`] | `lisi-krylov` | RKSP, the PETSc-like iterative package |
//! | [`aztec`] | `lisi-aztec` | RAztec, the Trilinos-like package |
//! | [`direct`] | `lisi-direct` | RSLU, the SuperLU-like direct package |
//! | [`multigrid`] | `lisi-multigrid` | RMG, geometric multigrid |
//! | [`cca`] | `lisi-cca` | components, ports, builder, SIDL |
//! | [`lisi`] | `lisi-core` | **the LISI interface and its adapters** |
//!
//! ## Quickstart
//!
//! ```
//! use cca_lisi::lisi::{RkspAdapter, SparseSolverPort, SparseStruct, STATUS_LEN};
//!
//! // 2 ranks, block-row partitioned 1-D Laplacian, solved through LISI.
//! let results = cca_lisi::comm::Universe::run(2, |comm| {
//!     let n = 16;
//!     let a = cca_lisi::sparse::generate::laplacian_1d(n);
//!     let part = cca_lisi::sparse::BlockRowPartition::even(n, comm.size());
//!     let range = part.range(comm.rank());
//!     let local = a.row_block(range.start, range.end).unwrap();
//!
//!     let solver = RkspAdapter::new();
//!     solver.initialize(comm.dup().unwrap()).unwrap();
//!     solver.set_start_row(range.start).unwrap();
//!     solver.set_local_rows(range.len()).unwrap();
//!     solver.set_global_cols(n).unwrap();
//!     solver.set("solver", "cg").unwrap();
//!     solver.set("tol", "1e-10").unwrap();
//!     solver
//!         .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
//!         .unwrap();
//!     solver.setup_rhs(&vec![1.0; range.len()], 1).unwrap();
//!     let mut x = vec![0.0; range.len()];
//!     let mut status = [0.0; STATUS_LEN];
//!     solver.solve(&mut x, &mut status).unwrap();
//!     x
//! });
//! assert_eq!(results.len(), 2);
//! ```

#![warn(missing_docs)]

pub use cca;
pub use lisi;
pub use probe;
pub use raztec as aztec;
pub use rcomm as comm;
pub use rdirect as direct;
pub use rkrylov as krylov;
pub use rmesh as mesh;
pub use rmg as multigrid;
pub use rsparse as sparse;
