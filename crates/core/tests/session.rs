//! Session-layer acceptance: batched multi-RHS solves are bitwise
//! identical to the equivalent sequence of single solves, and a warm
//! second session performs zero setup (the `lisi_setup` span never
//! opens and the session cache reports a hit on every rank).
//!
//! The service cache is process-global, so every test salts its option
//! table with a unique `session_tag` to keep fingerprints disjoint from
//! concurrently running tests.

use proptest::prelude::*;

use lisi::{RkspAdapter, RsluAdapter, SparseSolverPort, SparseStruct, STATUS_LEN};
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition, CsrMatrix};

/// Build one adapter wired to `comm` over a row block of `a`.
fn wire(
    comm: &rcomm::Communicator,
    a: &CsrMatrix,
    n: usize,
    tag: &str,
    opts: &[(&str, &str)],
) -> (RkspAdapter, std::ops::Range<usize>) {
    let part = BlockRowPartition::even(n, comm.size());
    let range = part.range(comm.rank());
    let local = a.row_block(range.start, range.end).unwrap();
    let solver = RkspAdapter::new();
    solver.initialize(comm.dup().unwrap()).unwrap();
    solver.set_start_row(range.start).unwrap();
    solver.set_local_rows(range.len()).unwrap();
    solver.set_global_cols(n).unwrap();
    solver.set("session_tag", tag).unwrap();
    for (k, v) in opts {
        solver.set(k, v).unwrap();
    }
    solver
        .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
        .unwrap();
    (solver, range)
}

/// Solve `k` right-hand sides two ways on `p` ranks — one `solve_batch`
/// call against `k` independent single solves — and return the local
/// solution blocks `(batched, sequential)` per rank.
fn batch_and_sequential(
    p: usize,
    k: usize,
    n_side: usize,
    rhs_full: Vec<f64>,
    tag: String,
    opts: Vec<(String, String)>,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    let n = n_side * n_side;
    assert_eq!(rhs_full.len(), k * n);
    let a = generate::laplacian_2d(n_side);
    Universe::run(p, move |comm| {
        let opts: Vec<(&str, &str)> =
            opts.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let (batched, range) = wire(comm, &a, n, &tag, &opts);
        let rows = range.len();
        // Column-major local blocks: column j's slice of this rank.
        let mut local_rhs = Vec::with_capacity(k * rows);
        for j in 0..k {
            local_rhs.extend_from_slice(&rhs_full[j * n..][range.clone()]);
        }
        batched.set_int("nrhs", k as i64).unwrap();
        batched.setup_rhs(&local_rhs, k).unwrap();
        let mut x_batch = vec![0.0; k * rows];
        let mut status = [0.0; STATUS_LEN];
        batched.solve_batch(&mut x_batch, &mut status).unwrap();

        let (single, _) = wire(comm, &a, n, &tag, &opts);
        let mut x_seq = vec![0.0; k * rows];
        for j in 0..k {
            single.setup_rhs(&local_rhs[j * rows..(j + 1) * rows], 1).unwrap();
            let mut status = [0.0; STATUS_LEN];
            single.solve(&mut x_seq[j * rows..(j + 1) * rows], &mut status).unwrap();
        }
        (x_batch, x_seq)
    })
}

fn assert_bitwise(out: &[(Vec<f64>, Vec<f64>)], ctx: &str) {
    for (rank, (batch, seq)) in out.iter().enumerate() {
        assert_eq!(batch.len(), seq.len());
        for (i, (a, b)) in batch.iter().zip(seq.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: rank {rank} entry {i}: batched {a:e} != sequential {b:e}"
            );
        }
    }
}

fn cg_opts() -> Vec<(String, String)> {
    [("solver", "cg"), ("preconditioner", "jacobi"), ("tol", "1e-10")]
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serial: any batch width in {1, 2, 4, 8} with arbitrary finite
    /// right-hand sides reproduces the single-solve bits exactly.
    #[test]
    fn batched_solves_match_single_solves_bitwise_serial(
        ki in 0usize..4,
        seed in proptest::collection::vec(-1.0f64..1.0, 8 * 8 * 8),
    ) {
        let k = [1usize, 2, 4, 8][ki];
        let rhs = seed[..k * 64].to_vec();
        let out = batch_and_sequential(
            1, k, 8, rhs, format!("prop_serial_k{k}"), cg_opts(),
        );
        assert_bitwise(&out, "serial");
    }
}

#[test]
fn batched_solves_match_single_solves_bitwise_on_three_ranks() {
    for k in [2usize, 4, 8] {
        let n = 12 * 12;
        let rhs: Vec<f64> = (0..k * n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();
        let out =
            batch_and_sequential(3, k, 12, rhs, format!("dist3_k{k}"), cg_opts());
        assert_bitwise(&out, "three ranks");
    }
}

#[test]
fn batched_solves_match_single_solves_bitwise_with_four_threads() {
    let k = 4;
    let n = 16 * 16;
    let rhs: Vec<f64> = (0..k * n).map(|i| (i as f64).sin()).collect();
    let mut opts = cg_opts();
    opts.push(("threads".into(), "4".into()));
    let out = batch_and_sequential(1, k, 16, rhs, "threads4".into(), opts);
    assert_bitwise(&out, "four threads");
}

/// Direct backend: `solve_batch` reuses one factorization across the
/// whole block and still matches column-by-column solves bitwise.
#[test]
fn rslu_batched_solves_match_single_solves_bitwise() {
    let n_side = 7usize;
    let n = n_side * n_side;
    let k = 3usize;
    let a = generate::laplacian_2d(n_side);
    let rhs_full: Vec<f64> = (0..k * n).map(|i| 1.0 + (i % 5) as f64).collect();
    let out = Universe::run(2, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let rows = range.len();
        let make = || {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(range.start).unwrap();
            solver.set_local_rows(rows).unwrap();
            solver.set_global_cols(n).unwrap();
            solver.set("session_tag", "rslu_batch").unwrap();
            solver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    SparseStruct::Csr,
                )
                .unwrap();
            solver
        };
        let mut local_rhs = Vec::with_capacity(k * rows);
        for j in 0..k {
            local_rhs.extend_from_slice(&rhs_full[j * n..][range.clone()]);
        }
        let batched = make();
        batched.setup_rhs(&local_rhs, k).unwrap();
        let mut x_batch = vec![0.0; k * rows];
        let mut status = [0.0; STATUS_LEN];
        batched.solve_batch(&mut x_batch, &mut status).unwrap();
        let single = make();
        let mut x_seq = vec![0.0; k * rows];
        for j in 0..k {
            single.setup_rhs(&local_rhs[j * rows..(j + 1) * rows], 1).unwrap();
            let mut status = [0.0; STATUS_LEN];
            single.solve(&mut x_seq[j * rows..(j + 1) * rows], &mut status).unwrap();
        }
        (x_batch, x_seq)
    });
    assert_bitwise(&out, "rslu");
}

/// The tentpole acceptance: a second session over the same system does
/// zero setup. The `lisi_setup` span is never opened again, and every
/// rank records exactly one session-cache hit.
#[test]
fn warm_second_session_performs_zero_setup() {
    let n_side = 10usize;
    let n = n_side * n_side;
    let a = generate::laplacian_2d(n_side);
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    let checks = Universe::run(3, move |comm| {
        // Span recording is lazy: force collection on so the test can
        // observe whether a solve opened the `lisi_setup` span at all.
        probe::set_forced(true);
        let opts = cg_opts();
        let opts: Vec<(&str, &str)> =
            opts.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let solve_once = |tag: &str| {
            let (solver, range) = wire(comm, &a, n, tag, &opts);
            solver.setup_rhs(&b[range.clone()], 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            x
        };
        let snapshot = || {
            let rep = probe::local_report();
            (
                rep.counter(probe::Counter::SessionCacheHits),
                rep.counter(probe::Counter::SessionCacheMisses),
                rep.span("lisi_setup").map(|s| s.calls).unwrap_or(0),
            )
        };
        let before = snapshot();
        let x_cold = solve_once("warm_session");
        let after_cold = snapshot();
        let x_warm = solve_once("warm_session");
        let after_warm = snapshot();
        let bitwise = x_cold
            .iter()
            .zip(x_warm.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        (before, after_cold, after_warm, bitwise)
    });
    for (rank, (before, cold, warm, bitwise)) in checks.iter().enumerate() {
        assert_eq!(cold.1 - before.1, 1, "rank {rank}: cold solve is one miss");
        assert!(cold.2 > before.2, "rank {rank}: cold solve opened lisi_setup");
        assert_eq!(warm.0 - cold.0, 1, "rank {rank}: warm solve is one hit");
        assert_eq!(warm.1, cold.1, "rank {rank}: warm solve is not a miss");
        assert_eq!(
            warm.2, cold.2,
            "rank {rank}: warm solve never opened the lisi_setup span"
        );
        assert!(bitwise, "rank {rank}: warm solve reproduces the cold bits");
    }
}
