//! End-to-end resilience: injected communication faults versus the
//! resilient driver.
//!
//! These tests arm the process-global `rcomm` fault plan, so they live
//! in their own binary (cargo runs test binaries one after another) and
//! serialise against each other through `FAULT_LOCK`.

use std::sync::{Arc, Mutex};

use lisi::{
    LisiError, ResilientSolver, RkspAdapter, RsluAdapter, SparseSolverPort, SparseStruct,
    StaticSwitch, STATUS_LEN,
};
use lisi::status::{
    STATUS_ATTEMPTS, STATUS_CONVERGED, STATUS_ITERATIONS, STATUS_REASON, STATUS_RECOVERY,
};
use proptest::prelude::*;
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition};

/// Serialises tests that arm/disarm the global fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Keep the deadlock watchdog short so rank-divergent faults convert
/// into transient errors quickly. First read wins, so this must run
/// before any communication in this binary.
fn short_watchdog() {
    std::env::set_var("RCOMM_DEADLOCK_TIMEOUT_SECS", "2");
}

/// Outcome of one rank's resilient solve over the 2-D Laplacian.
struct RankOutcome {
    result: Result<(), LisiError>,
    status: Vec<f64>,
    /// Gathered global solution; `None` when the post-solve gather hit
    /// the deadlock watchdog because a rank-divergent fault left a peer
    /// still retrying its solve (expected skew, not a failure).
    solution: Option<Vec<f64>>,
    halo_nonfinite: u64,
    faults_fired: u64,
}

/// Drive the resilient solver (rksp + rslu backends) over
/// `laplacian_2d(n_side)` under whatever fault plan is armed.
fn run_driver(ranks: usize, n_side: usize, policy: &str) -> Vec<RankOutcome> {
    let a = generate::laplacian_2d(n_side);
    let n = n_side * n_side;
    let b = vec![1.0; n];
    let policy = policy.to_string();
    Universe::run(ranks, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let driver = ResilientSolver::new();
        let switch = StaticSwitch::new()
            .with("rksp", Arc::new(RkspAdapter::new()))
            .with("rslu", Arc::new(RsluAdapter::new()));
        driver.set_backends(Arc::new(switch));
        driver.initialize(comm.dup().unwrap()).unwrap();
        driver.set_start_row(range.start).unwrap();
        driver.set_local_rows(range.len()).unwrap();
        driver.set_global_cols(n).unwrap();
        driver.set("retry_policy", &policy).unwrap();
        driver.set_double("tol", 1e-10).unwrap();
        driver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        driver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = vec![0.0; STATUS_LEN];
        let result = driver.solve(&mut x, &mut status);
        let solution = comm.allgatherv(&x).ok();
        RankOutcome {
            result,
            status,
            solution,
            halo_nonfinite: probe::get(probe::Counter::HaloNonFinite),
            faults_fired: probe::get(probe::Counter::FaultsInjected),
        }
    })
}

/// ‖b − A·x‖∞ for the full gathered solution.
fn residual_inf(n_side: usize, x: &[f64]) -> f64 {
    let a = generate::laplacian_2d(n_side);
    let ax = a.matvec(x).unwrap();
    ax.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max)
}

/// Status entries that must agree across ranks (everything except the
/// two timing columns).
fn comparable(status: &[f64]) -> Vec<f64> {
    [STATUS_CONVERGED, STATUS_ITERATIONS, STATUS_REASON, STATUS_ATTEMPTS, STATUS_RECOVERY]
        .iter()
        .map(|&i| status[i])
        .collect()
}

/// The acceptance scenario: a seeded fault poisons rank 2's
/// contribution to CG's ‖r₀‖ reduction (allreduce call 2 — call 1 is
/// ‖b‖), the Monitor flags divergence on every rank, and the driver
/// swaps to the direct backend, which completes the solve.
#[test]
fn cg_breaking_fault_on_rank_2_recovers_via_fallback_swap() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    short_watchdog();
    let plan = rcomm::FaultPlan::parse("op=allreduce,rank=2,call=2,kind=corrupt;seed=11").unwrap();
    rcomm::fault::arm(plan);
    let out = run_driver(4, 8, "rksp:solver=cg,preconditioner=jacobi -> rslu");
    rcomm::fault::disarm();
    for o in &out {
        o.result.as_ref().expect("the fallback chain must converge");
        assert_eq!(o.status[STATUS_CONVERGED], 1.0);
        assert_eq!(o.status[STATUS_ATTEMPTS], 2.0, "one failed CG try + one rslu try");
        assert_eq!(o.status[STATUS_RECOVERY], 2.0, "recovered by swapping backends");
        assert_eq!(comparable(&o.status), comparable(&out[0].status), "ranks disagree");
        assert!(residual_inf(8, o.solution.as_ref().expect("lockstep gather")) < 1e-8);
    }
    assert_eq!(
        out.iter().map(|o| o.faults_fired).sum::<u64>(),
        1,
        "exactly one injected fault"
    );
}

/// A NaN arriving through the halo exchange: the dist layer counts it,
/// the NaN rides the next reduction to every rank, and all ranks stop
/// the attempt with the identical verdict before the swap succeeds.
#[test]
fn nan_halo_is_screened_and_every_rank_agrees() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    short_watchdog();
    let plan =
        rcomm::FaultPlan::parse("op=recv,rank=1,tag=7001,call=1,kind=corrupt;seed=5").unwrap();
    rcomm::fault::arm(plan);
    let out = run_driver(3, 8, "rksp:solver=cg -> rslu");
    rcomm::fault::disarm();
    for o in &out {
        o.result.as_ref().expect("the fallback chain must converge");
        assert_eq!(comparable(&o.status), comparable(&out[0].status), "ranks disagree");
        assert_eq!(o.status[STATUS_ATTEMPTS], 2.0);
        assert_eq!(o.status[STATUS_RECOVERY], 2.0);
        assert!(residual_inf(8, o.solution.as_ref().expect("lockstep gather")) < 1e-8);
    }
    assert!(
        out.iter().any(|o| o.halo_nonfinite > 0),
        "the poisoned halo must be counted by the guard"
    );
}

/// A typed injected error (no data corruption) is transient: the driver
/// retries the same backend, which succeeds once the one-shot fuse has
/// burned — recovery code 1, no swap.
#[test]
fn transient_injected_error_retries_the_same_backend() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    short_watchdog();
    let plan = rcomm::FaultPlan::parse("op=allreduce,rank=0,call=2,kind=error").unwrap();
    rcomm::fault::arm(plan);
    let out = run_driver(1, 8, "rksp:solver=cg");
    rcomm::fault::disarm();
    let o = &out[0];
    o.result.as_ref().expect("the retry must converge");
    assert_eq!(o.status[STATUS_ATTEMPTS], 2.0);
    assert_eq!(o.status[STATUS_RECOVERY], 1.0, "recovered without swapping");
    assert!(residual_inf(8, o.solution.as_ref().expect("lockstep gather")) < 1e-8);
}

/// Rank-divergent faults (one rank errors out of a collective while its
/// peers block) must still terminate on every rank — the deadlock
/// watchdog converts the hang into a transient error and the bounded
/// attempt budget guarantees a structured verdict, never a hang or a
/// panic. Outcomes may legitimately differ per rank here; termination
/// and well-formed status arrays are the contract.
#[test]
fn rank_divergent_error_terminates_with_structured_outcomes() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    short_watchdog();
    let plan = rcomm::FaultPlan::parse("op=allreduce,rank=1,call=3,kind=error").unwrap();
    rcomm::fault::arm(plan);
    let out = run_driver(
        2,
        6,
        // Keep the budget small: one backend, one transient retry.
        "rksp:solver=cg",
    );
    rcomm::fault::disarm();
    for o in &out {
        match &o.result {
            Ok(()) => assert_eq!(o.status[STATUS_CONVERGED], 1.0),
            Err(e) => {
                assert!(
                    matches!(e, LisiError::Package(_)),
                    "structured package error expected, got {e:?}"
                );
                assert!(o.status[STATUS_ATTEMPTS] >= 1.0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random systems × random *corrupting* faults: silent NaNs are
    /// rank-consistent by construction (they spread through the next
    /// reduction), so every rank must reach the same verdict, and with
    /// the direct fallback in the chain the solve must either converge
    /// or fail structurally — never panic, never hang.
    #[test]
    fn corrupting_faults_converge_or_fail_structurally(
        ranks in 1usize..=8,
        n_side in 6usize..=10,
        target in 0usize..=7,
        call in 1u64..=6,
        route in 0usize..=2,
    ) {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        short_watchdog();
        let rank = target % ranks;
        let spec = match route {
            0 => format!("op=allreduce,rank={rank},call={call},kind=corrupt;seed={call}"),
            1 => format!("op=recv,rank={rank},tag=7001,call={call},kind=corrupt;seed={call}"),
            _ => format!("op=send,rank={rank},tag=7001,call={call},kind=corrupt;seed={call}"),
        };
        rcomm::fault::arm(rcomm::FaultPlan::parse(&spec).unwrap());
        let out = run_driver(ranks, n_side, "rksp:solver=cg -> rslu");
        rcomm::fault::disarm();
        for o in &out {
            match &o.result {
                Ok(()) => {
                    prop_assert_eq!(o.status[STATUS_CONVERGED], 1.0);
                    let sol = o.solution.as_ref().expect("corrupt faults stay in lockstep");
                    prop_assert!(residual_inf(n_side, sol) < 1e-7);
                }
                Err(e) => {
                    prop_assert!(matches!(e, LisiError::Package(_)));
                    prop_assert_eq!(o.status[STATUS_RECOVERY], -1.0);
                }
            }
            prop_assert!(o.status[STATUS_ATTEMPTS] >= 1.0);
            prop_assert_eq!(comparable(&o.status), comparable(&out[0].status));
        }
    }
}
