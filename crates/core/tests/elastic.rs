//! The elastic-cohort acceptance scenario: a rank is *killed* mid-CG
//! and the survivors finish the solve on a shrunken communicator.
//!
//! With `RSPARSE_CHECKPOINT_EVERY=10` armed, the survivors resume from
//! the newest cohort-consistent checkpoint; without it they restart
//! from zero — both converge, and the checkpointed run needs strictly
//! fewer iterations on its final attempt.
//!
//! These tests arm the process-global fault plan, mutate the cohort
//! registry and read env knobs, so they live in their own binary and
//! serialise through `LOCK`.

use std::sync::{Arc, Mutex};

use lisi::status::{
    STATUS_ATTEMPTS, STATUS_COHORT, STATUS_CONVERGED, STATUS_ITERATIONS, STATUS_RECOVERY,
    STATUS_RESIDUAL,
};
use lisi::{
    LisiError, ResilientSolver, RkspAdapter, SparseSolverPort, SparseStruct, StaticSwitch,
    STATUS_LEN,
};
use rcomm::Universe;
use rsparse::BlockRowPartition;

/// Serialises tests that arm/disarm the global fault plan.
static LOCK: Mutex<()> = Mutex::new(());

const GRID: usize = 24; // 576 unknowns: CG+ILU(0) needs well over 20 iterations

/// The SPD model problem every run in this file solves: the 2-D
/// five-point Laplacian on a `GRID`×`GRID` grid with a unit RHS.
fn model_problem() -> (rsparse::CsrMatrix, Vec<f64>) {
    let a = rsparse::generate::laplacian_2d(GRID);
    let b = vec![1.0; GRID * GRID];
    (a, b)
}

/// The reference solution: the same system solved unfaulted on a
/// single rank. Survivor blocks are checked against this.
fn reference_solution() -> Vec<f64> {
    let (a, b) = model_problem();
    let n = b.len();
    let mut out = Universe::run(1, move |comm| {
        let driver = ResilientSolver::new();
        let switch = StaticSwitch::new().with("rksp", Arc::new(RkspAdapter::new()));
        driver.set_backends(Arc::new(switch));
        driver.initialize(comm.dup().unwrap()).unwrap();
        driver.set_start_row(0).unwrap();
        driver.set_local_rows(n).unwrap();
        driver.set_global_cols(n).unwrap();
        driver.set("retry_policy", "rksp:solver=cg,preconditioner=ilu0").unwrap();
        driver.set_double("tol", 1e-12).unwrap();
        driver
            .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
            .unwrap();
        driver.setup_rhs(&b, 1).unwrap();
        let mut x = vec![0.0; n];
        let mut status = vec![0.0; STATUS_LEN];
        driver.solve(&mut x, &mut status).unwrap();
        x
    });
    out.remove(0)
}

struct RankOutcome {
    result: Result<(), LisiError>,
    status: Vec<f64>,
    /// This rank's rows of the solution, in the caller's original layout.
    x: Vec<f64>,
    shrinks: u64,
    ranks_lost: u64,
}

/// 4-rank CG+ILU(0) over the model problem with rank 2 killed
/// mid-iteration (allreduce call 30 lands around CG iteration 14,
/// safely past the iteration-10 checkpoint boundary and safely before
/// convergence at rtol 1e-12, which takes ~45 iterations).
fn run_kill_rank2(checkpoint_every: Option<usize>, postmortem: &str) -> Vec<RankOutcome> {
    std::env::set_var("RCOMM_DEADLOCK_TIMEOUT_SECS", "2");
    match checkpoint_every {
        Some(k) => std::env::set_var("RSPARSE_CHECKPOINT_EVERY", k.to_string()),
        None => std::env::remove_var("RSPARSE_CHECKPOINT_EVERY"),
    }
    std::env::set_var("RSPARSE_POSTMORTEM", postmortem);
    let (a, b) = model_problem();
    let n = b.len();
    rcomm::fault::arm(rcomm::FaultPlan::parse("op=allreduce,rank=2,call=30,kind=kill").unwrap());
    let out = Universe::run(4, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let driver = ResilientSolver::new();
        let switch = StaticSwitch::new().with("rksp", Arc::new(RkspAdapter::new()));
        driver.set_backends(Arc::new(switch));
        driver.initialize(comm.dup().unwrap()).unwrap();
        driver.set_start_row(range.start).unwrap();
        driver.set_local_rows(range.len()).unwrap();
        driver.set_global_cols(n).unwrap();
        driver.set("retry_policy", "rksp:solver=cg,preconditioner=ilu0").unwrap();
        driver.set_double("tol", 1e-12).unwrap();
        driver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        driver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = vec![0.0; STATUS_LEN];
        let result = driver.solve(&mut x, &mut status);
        RankOutcome {
            result,
            status,
            x,
            shrinks: probe::get(probe::Counter::CohortShrinks),
            ranks_lost: probe::get(probe::Counter::RanksLost),
        }
    });
    rcomm::fault::disarm();
    std::env::remove_var("RSPARSE_CHECKPOINT_EVERY");
    std::env::remove_var("RSPARSE_POSTMORTEM");
    out
}

/// Every postmortem document written under `base` (the sequenced
/// `pm.json`, `pm.1.json`, … family), concatenated.
fn postmortem_docs(base: &str) -> String {
    let mut docs = String::new();
    let path = std::path::Path::new(base);
    if let Ok(s) = std::fs::read_to_string(path) {
        docs.push_str(&s);
    }
    for i in 1..8 {
        let seq = path.with_extension(format!("{i}.json"));
        if let Ok(s) = std::fs::read_to_string(seq) {
            docs.push_str(&s);
        }
    }
    docs
}

/// The `resumed_iteration` recorded in the recovered postmortem.
fn resumed_iteration(docs: &str) -> Option<usize> {
    let idx = docs.find("\"resumed_iteration\":")?;
    let tail = &docs[idx + "\"resumed_iteration\":".len()..];
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn assert_survivors_recovered(out: &[RankOutcome], exact: &[f64]) -> f64 {
    let n = exact.len();
    let part = BlockRowPartition::even(n, 4);
    let mut final_iterations = 0.0;
    for (rank, o) in out.iter().enumerate() {
        if rank == 2 {
            // The casualty cannot rejoin: structured failure, full
            // status array, and the verdict names its own loss.
            let msg = o.result.as_ref().unwrap_err().to_string();
            assert!(msg.contains("lost from cohort"), "rank 2 got: {msg}");
            assert_eq!(o.status[STATUS_CONVERGED], 0.0);
            assert_eq!(o.status[STATUS_RECOVERY], -1.0);
            assert!(o.ranks_lost >= 1, "the kill must be counted");
            continue;
        }
        o.result.as_ref().unwrap_or_else(|e| panic!("survivor {rank} failed: {e}"));
        assert_eq!(o.status[STATUS_CONVERGED], 1.0, "survivor {rank} must converge");
        assert_eq!(o.status[STATUS_RECOVERY], 3.0, "recovery code 3 = cohort shrink");
        assert_eq!(o.status[STATUS_COHORT], 3.0, "three survivors");
        assert_eq!(o.status[STATUS_ATTEMPTS], 2.0, "one killed attempt + one good");
        assert!(o.status[STATUS_RESIDUAL] < 1e-8, "rank {rank}: {}", o.status[STATUS_RESIDUAL]);
        assert_eq!(o.shrinks, 1, "survivor {rank} shrank exactly once");
        // The caller's buffer holds its *original* rows of the global
        // solution, even though the survivor's block moved.
        let range = part.range(rank);
        let err = o
            .x
            .iter()
            .zip(&exact[range])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-6, "rank {rank} solution error {err}");
        final_iterations = o.status[STATUS_ITERATIONS];
    }
    final_iterations
}

/// The acceptance scenario end to end: checkpointed resume, then the
/// restart-from-zero fallback, and the iteration-count continuity
/// argument between them.
#[test]
fn killed_rank_mid_cg_survivors_resume_from_checkpoint_or_zero() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let exact = reference_solution();

    // With checkpointing every 10 iterations: resume mid-history.
    let pm_ckpt = "/tmp/lisi-elastic-ckpt.json";
    let out = run_kill_rank2(Some(10), pm_ckpt);
    let iters_resumed = assert_survivors_recovered(&out, &exact);
    let docs = postmortem_docs(pm_ckpt);
    assert!(docs.contains("\"trigger\": \"recovered\""), "postmortem records the recovery");
    assert!(
        docs.contains("\"cohort_change\": {\"lost_rank\":2,\"old_size\":4,\"new_size\":3,\"survivors\":[0,1,3]"),
        "cohort_change names the casualty and the survivor mapping:\n{docs}"
    );
    let resumed = resumed_iteration(&docs).expect("cohort_change carries resumed_iteration");
    assert!(resumed >= 10, "killed past the first boundary, resumed at {resumed}");
    assert!(docs.contains("shrink: rank 2 lost, cohort 4 -> 3"), "recovery_path narrates");

    // Same kill without checkpointing: restart from zero still recovers.
    let pm_zero = "/tmp/lisi-elastic-zero.json";
    let out = run_kill_rank2(None, pm_zero);
    let iters_restarted = assert_survivors_recovered(&out, &exact);
    let docs = postmortem_docs(pm_zero);
    let resumed = resumed_iteration(&docs).expect("cohort_change present without checkpoints");
    assert_eq!(resumed, 0, "no checkpoint to resume from");

    // Residual-history continuity, observably: resuming from the
    // iteration-`resumed` iterate must beat redoing the whole history.
    assert!(
        iters_resumed < iters_restarted,
        "checkpointed final attempt took {iters_resumed} iterations, \
         restart-from-zero took {iters_restarted}"
    );
}
