//! Round-trip of the flight recorder's failure postmortem: break CG on
//! rank 2 of 4 with a seeded fault, let the resilient driver swap to the
//! direct backend, and parse the single cohort-wide `postmortem.json`.
//!
//! Lives in its own binary: it arms the process-global fault plan and
//! points `RSPARSE_POSTMORTEM` at a scratch path, both process-wide.

use std::sync::Arc;

use lisi::status::{STATUS_CONVERGED, STATUS_RECOVERY};
use lisi::{ResilientSolver, RkspAdapter, RsluAdapter, SparseSolverPort, SparseStruct,
    StaticSwitch, STATUS_LEN};
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition};

/// The canonical acceptance fault: poison rank 2's contribution to CG's
/// ‖r₀‖ reduction, forcing every rank onto the fallback backend.
const PLAN: &str = "op=allreduce,rank=2,call=2,kind=corrupt;seed=11";

#[test]
fn postmortem_round_trips_through_the_cohort_dump() {
    let dest = std::env::temp_dir().join(format!("lisi_postmortem_{}.json", std::process::id()));
    std::env::set_var("RSPARSE_POSTMORTEM", &dest);
    std::env::set_var("RCOMM_DEADLOCK_TIMEOUT_SECS", "2");
    let _ = std::fs::remove_file(&dest);

    rcomm::fault::arm(rcomm::FaultPlan::parse(PLAN).unwrap());
    let n_side = 8usize;
    let n = n_side * n_side;
    let a = generate::laplacian_2d(n_side);
    let b = vec![1.0; n];
    let out = Universe::run(4, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let driver = ResilientSolver::new();
        let switch = StaticSwitch::new()
            .with("rksp", Arc::new(RkspAdapter::new()))
            .with("rslu", Arc::new(RsluAdapter::new()));
        driver.set_backends(Arc::new(switch));
        driver.initialize(comm.dup().unwrap()).unwrap();
        driver.set_start_row(range.start).unwrap();
        driver.set_local_rows(range.len()).unwrap();
        driver.set_global_cols(n).unwrap();
        driver
            .set("retry_policy", "rksp:solver=cg,preconditioner=jacobi -> rslu")
            .unwrap();
        driver.set_double("tol", 1e-10).unwrap();
        driver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        driver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = vec![0.0; STATUS_LEN];
        driver.solve(&mut x, &mut status).unwrap();
        status
    });
    rcomm::fault::disarm();
    for status in &out {
        assert_eq!(status[STATUS_CONVERGED], 1.0);
        assert_eq!(status[STATUS_RECOVERY], 2.0, "recovered by swapping backends");
    }

    let doc = std::fs::read_to_string(&dest).expect("rank 0 wrote the cohort postmortem");
    let _ = std::fs::remove_file(&dest);

    // Envelope: schema, trigger, cohort-wide gather.
    assert!(doc.contains("\"schema\": \"lisi-postmortem-v1\""), "doc:\n{doc}");
    assert!(doc.contains("\"trigger\": \"recovered\""), "doc:\n{doc}");
    assert!(doc.contains("\"ranks\": 4"), "doc:\n{doc}");
    assert!(doc.contains("\"gathered\": \"cohort\""), "doc:\n{doc}");

    // All four ranks' event tails made it into the one file.
    for rank in 0..4 {
        assert!(doc.contains(&format!("\"rank\":{rank}")), "missing rank {rank}:\n{doc}");
    }

    // The injected rule: the armed plan's spec round-trips, and the rule
    // that actually fired is identified by index.
    assert!(doc.contains("op=allreduce,kind=corrupt,rank=2,call=2"), "doc:\n{doc}");
    assert!(doc.contains("\"fault_rules_fired\": [0]"), "doc:\n{doc}");

    // The recovery path: failed CG attempt, swap, direct-solver success.
    assert!(doc.contains("rksp#1: swap:"), "doc:\n{doc}");
    assert!(doc.contains("rslu#2: ok"), "doc:\n{doc}");
    assert!(doc.contains("\"policy\": \"rksp:solver=cg,preconditioner=jacobi -> rslu\""));

    // Flight events: attempt transitions, the fault firing on rank 2,
    // per-iteration residuals and the divergence verdict all in-band.
    assert!(doc.contains("\"type\":\"attempt\""), "doc:\n{doc}");
    assert!(doc.contains("\"phase\":\"swap\""), "doc:\n{doc}");
    assert!(doc.contains("\"type\":\"fault\""), "doc:\n{doc}");
    assert!(doc.contains("\"type\":\"verdict\""), "doc:\n{doc}");
    assert!(doc.contains("\"residual_history\":["), "doc:\n{doc}");

    // The whole document is balanced JSON (the shims have no serde; a
    // structural brace count catches truncation and quoting slips).
    let mut depth = 0i64;
    let mut in_str = false;
    let mut esc = false;
    for c in doc.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string in:\n{doc}");
    assert_eq!(depth, 0, "unbalanced JSON in:\n{doc}");
}
