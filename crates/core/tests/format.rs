//! Integration tests for the reserved `format` option key: validation,
//! bit-identical solves under every storage format, and the acceptance
//! check that `port.set("format", "auto")` actually picks a non-CSR
//! format on a bench-scale matrix.

use std::sync::Mutex;

use lisi::STATUS_LEN;
use lisi::{RkspAdapter, SparseSolverPort, SparseStruct};
use rcomm::Universe;
use rsparse::BlockRowPartition;

/// The `format` policy is process-global; serialize the tests that
/// mutate it so they never race, and always restore the previous policy.
static POLICY_LOCK: Mutex<()> = Mutex::new(());

fn with_policy_lock<T>(f: impl FnOnce() -> T) -> T {
    let _guard = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = rsparse::autotune::active_policy();
    let out = f();
    rsparse::autotune::set_policy(prev);
    out
}

/// Solve A·x = b on one rank through the adapter with the given format
/// value, returning the solution and the SELL/BCSR chosen counters
/// observed on the solving thread.
fn solve_with_format(
    a: &rsparse::CsrMatrix,
    b: &[f64],
    format: &str,
) -> (Vec<f64>, u64, u64) {
    let n = a.rows();
    let a = a.clone();
    let b = b.to_vec();
    let format = format.to_string();
    let out = Universe::run(1, move |comm| {
        let solver = RkspAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(0).unwrap();
        solver.set_local_rows(n).unwrap();
        solver.set_global_cols(n).unwrap();
        solver.set("format", &format).unwrap();
        solver.set("solver", "cg").unwrap();
        solver.set("preconditioner", "jacobi").unwrap();
        solver.set_double("tol", 1e-10).unwrap();
        solver
            .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
            .unwrap();
        solver.setup_rhs(&b, 1).unwrap();
        let mut x = vec![0.0; n];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        (
            x,
            probe::get(probe::Counter::FormatChosenSell),
            probe::get(probe::Counter::FormatChosenBcsr),
        )
    });
    out.into_iter().next().unwrap()
}

#[test]
fn bogus_format_value_is_a_bad_parameter() {
    with_policy_lock(|| {
        let solver = RkspAdapter::new();
        let err = solver.set("format", "bogus").unwrap_err();
        assert!(matches!(err, lisi::LisiError::BadParameter { .. }));
        assert!(err.to_string().contains("bogus"));
        for good in ["csr", "sell", "bcsr", "auto", "SELL", " auto "] {
            solver.set("format", good).unwrap();
        }
    });
}

#[test]
fn solves_are_bitwise_identical_across_formats() {
    with_policy_lock(|| {
        // 2-D Laplacian at bench scale: large enough that `auto` converts.
        let a = rsparse::generate::laplacian_2d(24);
        let x_true = rsparse::generate::random_vector(a.rows(), 3);
        let b = a.matvec(&x_true).unwrap();
        let (base, _, _) = solve_with_format(&a, &b, "csr");
        for (g, e) in base.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-7);
        }
        for format in ["sell", "bcsr", "auto"] {
            let (x, _, _) = solve_with_format(&a, &b, format);
            for (i, (g, e)) in x.iter().zip(&base).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    e.to_bits(),
                    "format {format}: solution lane {i} differs from CSR"
                );
            }
        }
    });
}

#[test]
fn auto_selects_a_non_csr_format_on_a_bench_matrix() {
    with_policy_lock(|| {
        // 5-point stencil, 1600 unknowns: near-uniform rows, low block
        // fill — the model must pick SELL-C-σ, not stay on CSR.
        let a = rsparse::generate::laplacian_2d(40);
        let x_true = rsparse::generate::random_vector(a.rows(), 11);
        let b = a.matvec(&x_true).unwrap();
        let (x, chosen_sell, chosen_bcsr) = solve_with_format(&a, &b, "auto");
        assert!(
            chosen_sell > 0,
            "auto left the 5-point stencil on CSR (sell={chosen_sell}, bcsr={chosen_bcsr})"
        );
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-7);
        }
    });
}

#[test]
fn forced_formats_work_on_multiple_ranks() {
    with_policy_lock(|| {
        let m = 12;
        let a = rsparse::generate::laplacian_2d(m);
        let n = a.rows();
        let x_true = rsparse::generate::random_vector(n, 7);
        let b = a.matvec(&x_true).unwrap();
        let mut runs = Vec::new();
        for format in ["csr", "sell", "bcsr"] {
            let a = a.clone();
            let b = b.clone();
            let format_owned = format.to_string();
            let out = Universe::run(3, move |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let range = part.range(comm.rank());
                let local = a.row_block(range.start, range.end).unwrap();
                let solver = RkspAdapter::new();
                solver.initialize(comm.dup().unwrap()).unwrap();
                solver.set_start_row(range.start).unwrap();
                solver.set_local_rows(range.len()).unwrap();
                solver.set_global_cols(n).unwrap();
                solver.set("format", &format_owned).unwrap();
                solver.set("solver", "cg").unwrap();
                solver.set("preconditioner", "jacobi").unwrap();
                solver.set_double("tol", 1e-10).unwrap();
                solver
                    .setup_matrix(
                        local.values(),
                        local.row_ptr(),
                        local.col_idx(),
                        SparseStruct::Csr,
                    )
                    .unwrap();
                solver.setup_rhs(&b[range.clone()], 1).unwrap();
                let mut x = vec![0.0; range.len()];
                let mut status = [0.0; STATUS_LEN];
                solver.solve(&mut x, &mut status).unwrap();
                comm.allgatherv(&x).unwrap()
            });
            runs.push(out.into_iter().next().unwrap());
        }
        let base = &runs[0];
        for (g, e) in base.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-7);
        }
        for x in &runs[1..] {
            for (g, e) in x.iter().zip(base) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
        }
    });
}
