//! Solve-ledger acceptance: schema, model reconciliation, summary
//! agreement, format invariance, determinism.
//!
//! The ledger is assembled from process-global probe state, so every
//! test in this file serializes on one mutex and resets the registry
//! before solving.

use std::path::PathBuf;
use std::sync::Mutex;

use lisi::{RkspAdapter, SparseSolverPort, STATUS_LEN};
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition, CsrMatrix};
use serde_json::Value;

static LEDGER_LOCK: Mutex<()> = Mutex::new(());

const M: usize = 40; // 2-D Laplacian side; n = 1600 over 4 ranks

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lisi_ledger_test_{}_{tag}.json", std::process::id()))
}

/// Drive a 4-rank CG+ILU(0) solve through the adapter with the ledger
/// armed at `dest`; returns the parsed document and each rank's logical
/// shape: (rows, local nnz, diagonal-block nnz — what ILU(0) factors).
fn solve_with_ledger(format: &str, dest: &PathBuf) -> (Value, Vec<(u64, u64, u64)>) {
    let _ = std::fs::remove_file(dest);
    probe::reset();
    probe::ledger::set_destination(dest.to_str().unwrap());
    let a = generate::laplacian_2d(M);
    let n = a.rows();
    let b = vec![1.0; n];
    let shapes = Universe::run(4, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let solver = RkspAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(range.start).unwrap();
        solver.set_local_rows(range.len()).unwrap();
        solver.set_global_cols(n).unwrap();
        solver.set("solver", "cg").unwrap();
        solver.set("preconditioner", "ilu").unwrap();
        solver.set("tol", "1e-10").unwrap();
        solver.set("format", format).unwrap();
        solver
            .setup_matrix(
                local.values(),
                local.row_ptr(),
                local.col_idx(),
                lisi::SparseStruct::Csr,
            )
            .unwrap();
        solver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        assert!(status[0] != 0.0, "acceptance solve must converge");
        // Diagonal-block nnz: the entries ILU(0) keeps (block-Jacobi
        // preconditioning factors only the local square block).
        let nnz_diag = (0..range.len())
            .map(|lr| {
                let (cols, _) = local.row(lr);
                cols.iter().filter(|&&c| range.contains(&c)).count()
            })
            .sum::<usize>();
        (range.len() as u64, local.nnz() as u64, nnz_diag as u64)
    });
    probe::ledger::clear_destination();
    let text = std::fs::read_to_string(dest)
        .unwrap_or_else(|e| panic!("ledger not written to {}: {e}", dest.display()));
    let doc = serde_json::from_str(&text).expect("ledger is valid JSON");
    (doc, shapes)
}

fn kernels(doc: &Value) -> &Vec<Value> {
    doc.get("kernels").and_then(Value::as_array).expect("kernels array")
}

fn kernel_row<'a>(doc: &'a Value, rank: u64, name: &str) -> &'a Value {
    kernels(doc)
        .iter()
        .find(|row| {
            row.get("rank").and_then(Value::as_u64) == Some(rank)
                && row.get("kernel").and_then(Value::as_str) == Some(name)
        })
        .unwrap_or_else(|| panic!("no kernel row ({rank}, {name})"))
}

fn u(row: &Value, field: &str) -> u64 {
    row.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("field {field} missing/not integer in {row:?}"))
}

/// Streaming CSR traffic for one SpMV application (mirrors
/// `probe::model::csr_traffic`): values+colidx read, rowptr read, x
/// gathered, y written, plus the row-pointer head.
fn csr_bytes(rows: u64, nnz: u64) -> u64 {
    24 * nnz + 16 * rows + 8
}

#[test]
fn ledger_matches_schema_and_reconciles_with_the_plan_model() {
    let _guard = LEDGER_LOCK.lock().unwrap();
    let dest = tmp_path("accept");
    let (doc, shapes) = solve_with_ledger("csr", &dest);

    // Schema shape: versioned id plus every top-level section, typed.
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("rsparse-solve-ledger-v1")
    );
    assert_eq!(doc.get("backend").and_then(Value::as_str), Some("rksp"));
    let solver = doc.get("solver").and_then(Value::as_object).expect("solver section");
    assert_eq!(solver.get("ksp").and_then(Value::as_str), Some("cg"));
    assert_eq!(solver.get("pc").and_then(Value::as_str), Some("ilu"));
    assert_eq!(solver.get("ranks").and_then(Value::as_u64), Some(4));
    let phases = doc.get("phases").and_then(Value::as_object).expect("phases section");
    assert!(phases.get("solve_seconds").and_then(Value::as_f64).unwrap() > 0.0);
    let conv = doc.get("convergence").and_then(Value::as_object).expect("convergence");
    let iters = conv.get("iterations").and_then(Value::as_u64).expect("iterations");
    assert!(iters > 0);
    assert_eq!(conv.get("converged").and_then(Value::as_bool), Some(true));
    let rate = conv.get("reduction_rate").and_then(Value::as_f64).expect("rate");
    assert!(rate > 0.0 && rate < 1.0, "converging CG reduces per iteration");
    let cond = conv.get("cond_estimate").and_then(Value::as_f64).expect("Lanczos estimate");
    assert!(cond > 1.0);
    assert!(conv.get("pc_quality").and_then(Value::as_f64).unwrap() > 0.0);
    let commsec = doc.get("comm").and_then(Value::as_object).expect("comm section");
    assert_eq!(commsec.get("ranks").and_then(Value::as_array).unwrap().len(), 4);
    doc.get("cohort").and_then(Value::as_object).expect("cohort section");
    let session = doc.get("session").and_then(Value::as_object).expect("session section");
    let misses = session.get("cache_misses").and_then(Value::as_u64).expect("miss counter");
    assert!(misses >= 1, "a fresh solve is a session-cache miss");
    for key in ["cache_hits", "cache_evictions", "rhs_batched"] {
        session.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("session.{key}"));
    }

    // Per-kernel reconciliation, exact: the SpMV rows must equal
    // units × the traffic recomputed from each rank's logical CSR shape.
    for (rank, &(rows, nnz, nnz_diag)) in shapes.iter().enumerate() {
        let row = kernel_row(&doc, rank as u64, "spmv");
        let units = u(row, "units");
        assert!(units > 0, "rank {rank} ran SpMVs");
        assert_eq!(u(row, "flops"), units * 2 * nnz, "rank {rank} spmv flops");
        assert_eq!(u(row, "bytes"), units * csr_bytes(rows, nnz), "rank {rank} spmv bytes");

        // ILU(0) keeps the diagonal block's sparsity pattern, so sptrsv
        // traffic is its streaming shape plus the diagonal divide.
        let tri = kernel_row(&doc, rank as u64, "sptrsv");
        let tunits = u(tri, "units");
        assert!(tunits > 0, "rank {rank} applied the preconditioner");
        assert_eq!(
            u(tri, "flops"),
            tunits * (2 * nnz_diag + rows),
            "rank {rank} sptrsv flops"
        );
        assert_eq!(
            u(tri, "bytes"),
            tunits * csr_bytes(rows, nnz_diag),
            "rank {rank} sptrsv bytes"
        );

        // CG vector-op model: 12n flops / 120n bytes per iteration.
        let vec_ops = kernel_row(&doc, rank as u64, "krylov_vec_ops");
        assert_eq!(u(vec_ops, "units"), iters, "vector ops count iterations");
        assert_eq!(u(vec_ops, "flops"), iters * 12 * rows, "rank {rank} vec-op flops");
        assert_eq!(u(vec_ops, "bytes"), iters * 120 * rows, "rank {rank} vec-op bytes");
    }

    // The summary sink renders the same join (model × measured spans):
    // its GB/s column must agree with the ledger within 1% for every
    // solve-phase kernel (those spans stop moving when the solve ends).
    let reports = probe::aggregate();
    let roofline = probe::model::roofline();
    for rep in &reports {
        let rank = rep.rank.expect("rank threads are tagged") as u64;
        for eff in rep.kernel_efficiency(roofline.as_ref()) {
            if !matches!(eff.name, "spmv" | "sptrsv" | "krylov_vec_ops") {
                continue;
            }
            let row = kernel_row(&doc, rank, eff.name);
            let ledger_gbs = row.get("gbs").and_then(Value::as_f64).unwrap();
            assert!(
                (ledger_gbs - eff.gbs).abs() <= 0.01 * eff.gbs.max(f64::MIN_POSITIVE),
                "rank {rank} {}: summary {} GB/s vs ledger {} GB/s",
                eff.name,
                eff.gbs,
                ledger_gbs
            );
        }
    }
    let _ = std::fs::remove_file(&dest);
}

#[test]
fn spmv_model_bytes_are_bit_identical_across_formats() {
    let _guard = LEDGER_LOCK.lock().unwrap();
    let mut per_unit: Vec<Vec<(u64, u64)>> = Vec::new();
    for format in ["csr", "sell", "bcsr"] {
        let dest = tmp_path(format);
        let (doc, shapes) = solve_with_ledger(format, &dest);
        // Per-application traffic per rank: totals divided by span calls,
        // so iteration-count differences between formats cancel.
        let rows: Vec<(u64, u64)> = (0..shapes.len() as u64)
            .map(|rank| {
                let row = kernel_row(&doc, rank, "spmv");
                let units = u(row, "units");
                (u(row, "flops") / units, u(row, "bytes") / units)
            })
            .collect();
        per_unit.push(rows);
        let _ = std::fs::remove_file(&dest);
    }
    assert_eq!(per_unit[0], per_unit[1], "csr vs sell spmv model");
    assert_eq!(per_unit[0], per_unit[2], "csr vs bcsr spmv model");
}

#[test]
fn ledger_model_side_is_deterministic_across_runs() {
    let _guard = LEDGER_LOCK.lock().unwrap();
    let mut snapshots = Vec::new();
    for run in 0..2 {
        let dest = tmp_path(&format!("det{run}"));
        let (doc, _) = solve_with_ledger("csr", &dest);
        // Everything except measured time is a pure function of the
        // input system: kernel set, units, modeled flops and bytes.
        let mut model: Vec<(u64, String, u64, u64, u64)> = kernels(&doc)
            .iter()
            .map(|row| {
                (
                    u(row, "rank"),
                    row.get("kernel").and_then(Value::as_str).unwrap().to_string(),
                    u(row, "units"),
                    u(row, "flops"),
                    u(row, "bytes"),
                )
            })
            .collect();
        model.sort();
        let iters = doc
            .get("convergence")
            .and_then(|c| c.get("iterations"))
            .and_then(Value::as_u64)
            .unwrap();
        snapshots.push((model, iters));
        let _ = std::fs::remove_file(&dest);
    }
    assert_eq!(snapshots[0], snapshots[1], "work model must not drift run to run");
}

#[test]
fn unarmed_solves_write_no_ledger() {
    let _guard = LEDGER_LOCK.lock().unwrap();
    probe::reset();
    probe::ledger::set_destination("off");
    // Tests share one process, so an earlier armed test may already have
    // cached a latest ledger; "no ledger" here means "nothing new".
    let latest_before = probe::ledger::latest_json();
    let a: CsrMatrix = generate::laplacian_2d(8);
    let n = a.rows();
    let b = vec![1.0; n];
    Universe::run(1, |comm| {
        let solver = RkspAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(0).unwrap();
        solver.set_local_rows(n).unwrap();
        solver.set_global_cols(n).unwrap();
        solver.set("solver", "cg").unwrap();
        solver.set("preconditioner", "none").unwrap();
        solver
            .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), lisi::SparseStruct::Csr)
            .unwrap();
        solver.setup_rhs(&b, 1).unwrap();
        let mut x = vec![0.0; n];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
    });
    probe::ledger::clear_destination();
    assert_eq!(
        probe::ledger::latest_json(),
        latest_before,
        "an unarmed solve must not assemble a ledger"
    );
}
