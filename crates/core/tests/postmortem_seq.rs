//! Postmortems must not clobber each other: two faulted solves in one
//! process leave two files — the configured path plus a `.1.json`
//! sequence sibling (see `postmortem::sequenced_dest`).
//!
//! Lives in its own binary: it arms the process-global fault plan and
//! points `RSPARSE_POSTMORTEM` at a scratch path, both process-wide.

use std::sync::Arc;

use lisi::status::{STATUS_CONVERGED, STATUS_RECOVERY};
use lisi::{ResilientSolver, RkspAdapter, RsluAdapter, SparseSolverPort, SparseStruct,
    StaticSwitch, STATUS_LEN};
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition};

/// Poison rank 2's contribution to CG's ‖r₀‖ reduction, forcing a
/// backend swap (and therefore a "recovered" postmortem) on every run.
const PLAN: &str = "op=allreduce,rank=2,call=2,kind=corrupt;seed=11";

fn faulted_solve_once(a: &rsparse::CsrMatrix, b: &[f64], n: usize) {
    rcomm::fault::arm(rcomm::FaultPlan::parse(PLAN).unwrap());
    let out = Universe::run(4, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let driver = ResilientSolver::new();
        let switch = StaticSwitch::new()
            .with("rksp", Arc::new(RkspAdapter::new()))
            .with("rslu", Arc::new(RsluAdapter::new()));
        driver.set_backends(Arc::new(switch));
        driver.initialize(comm.dup().unwrap()).unwrap();
        driver.set_start_row(range.start).unwrap();
        driver.set_local_rows(range.len()).unwrap();
        driver.set_global_cols(n).unwrap();
        driver
            .set("retry_policy", "rksp:solver=cg,preconditioner=jacobi -> rslu")
            .unwrap();
        driver.set_double("tol", 1e-10).unwrap();
        driver
            .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
            .unwrap();
        driver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = vec![0.0; STATUS_LEN];
        driver.solve(&mut x, &mut status).unwrap();
        status
    });
    rcomm::fault::disarm();
    for status in &out {
        assert_eq!(status[STATUS_CONVERGED], 1.0);
        assert_eq!(status[STATUS_RECOVERY], 2.0, "recovered by swapping backends");
    }
}

#[test]
fn two_faulted_solves_leave_two_postmortem_files() {
    let dest = std::env::temp_dir()
        .join(format!("lisi_postmortem_seq_{}.json", std::process::id()));
    let dest1 = std::env::temp_dir()
        .join(format!("lisi_postmortem_seq_{}.1.json", std::process::id()));
    std::env::set_var("RSPARSE_POSTMORTEM", &dest);
    std::env::set_var("RCOMM_DEADLOCK_TIMEOUT_SECS", "2");
    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(&dest1);

    let n_side = 8usize;
    let n = n_side * n_side;
    let a = generate::laplacian_2d(n_side);
    let b = vec![1.0; n];

    faulted_solve_once(&a, &b, n);
    let first = std::fs::read_to_string(&dest)
        .expect("first faulted solve writes the configured path");
    assert!(!dest1.exists(), "sequence sibling must not exist after one dump");

    faulted_solve_once(&a, &b, n);
    let second = std::fs::read_to_string(&dest1)
        .expect("second faulted solve writes the .1.json sibling");
    let first_again = std::fs::read_to_string(&dest).unwrap();
    assert_eq!(first, first_again, "the first dump is never clobbered");

    for doc in [&first, &second] {
        assert!(doc.contains("\"schema\": \"lisi-postmortem-v1\""), "doc:\n{doc}");
        assert!(doc.contains("\"trigger\": \"recovered\""), "doc:\n{doc}");
        assert!(doc.contains("\"critical_path\":"), "doc:\n{doc}");
    }

    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(&dest1);
}
