//! LISI error type, with the integer code mapping the SIDL `int` returns
//! imply.

use std::fmt;

/// Result alias for LISI calls.
pub type LisiResult<T> = Result<T, LisiError>;

/// Errors surfaced through the interface.
#[derive(Debug, Clone, PartialEq)]
pub enum LisiError {
    /// `initialize` has not been called.
    NotInitialized,
    /// Calls arrived in an illegal order (e.g. `solve` before
    /// `setupMatrix`).
    BadPhase(String),
    /// Array lengths or distribution parameters disagree.
    InvalidInput(String),
    /// The requested feature is not supported by this solver package.
    Unsupported(String),
    /// The underlying package failed (message carries its diagnostic).
    Package(String),
    /// A parameter key or value was rejected.
    BadParameter {
        /// The key.
        key: String,
        /// What went wrong.
        reason: String,
    },
    /// The solver service's admission queue is full — the caller should
    /// back off and retry (backpressure, not failure of the solve itself).
    Busy(String),
}

impl LisiError {
    /// The SIDL-style status code (`0` would be success; errors are
    /// negative, grouped by kind) — what the paper's `int` returns carry.
    pub fn code(&self) -> i32 {
        match self {
            LisiError::NotInitialized => -1,
            LisiError::BadPhase(_) => -2,
            LisiError::InvalidInput(_) => -3,
            LisiError::Unsupported(_) => -4,
            LisiError::Package(_) => -5,
            LisiError::BadParameter { .. } => -6,
            LisiError::Busy(_) => -7,
        }
    }
}

impl fmt::Display for LisiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LisiError::NotInitialized => write!(f, "solver not initialized"),
            LisiError::BadPhase(m) => write!(f, "call out of phase: {m}"),
            LisiError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            LisiError::Unsupported(m) => write!(f, "unsupported: {m}"),
            LisiError::Package(m) => write!(f, "solver package error: {m}"),
            LisiError::BadParameter { key, reason } => {
                write!(f, "bad parameter '{key}': {reason}")
            }
            LisiError::Busy(m) => write!(f, "solver service busy: {m}"),
        }
    }
}

impl std::error::Error for LisiError {}

impl From<rsparse::SparseError> for LisiError {
    fn from(e: rsparse::SparseError) -> Self {
        LisiError::Package(e.to_string())
    }
}

impl From<rcomm::CommError> for LisiError {
    fn from(e: rcomm::CommError) -> Self {
        LisiError::Package(e.to_string())
    }
}

impl From<rkrylov::KspError> for LisiError {
    fn from(e: rkrylov::KspError) -> Self {
        LisiError::Package(e.to_string())
    }
}

impl From<raztec::AztecError> for LisiError {
    fn from(e: raztec::AztecError) -> Self {
        LisiError::Package(e.to_string())
    }
}

impl From<rdirect::RsluError> for LisiError {
    fn from(e: rdirect::RsluError) -> Self {
        LisiError::Package(e.to_string())
    }
}

impl From<rmg::MgError> for LisiError {
    fn from(e: rmg::MgError) -> Self {
        LisiError::Package(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_negative_and_distinct() {
        let errs = [
            LisiError::NotInitialized,
            LisiError::BadPhase("x".into()),
            LisiError::InvalidInput("x".into()),
            LisiError::Unsupported("x".into()),
            LisiError::Package("x".into()),
            LisiError::BadParameter { key: "k".into(), reason: "r".into() },
            LisiError::Busy("x".into()),
        ];
        let codes: Vec<i32> = errs.iter().map(|e| e.code()).collect();
        assert!(codes.iter().all(|&c| c < 0));
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }

    #[test]
    fn messages_carry_context() {
        let e = LisiError::BadParameter { key: "tol".into(), reason: "not a number".into() };
        assert!(e.to_string().contains("tol"));
        assert!(LisiError::NotInitialized.to_string().contains("not initialized"));
    }
}
