//! The LISI enums from the SIDL specification.

use crate::error::{LisiError, LisiResult};

/// Input array formats the `setupMatrix` overloads accept — the SIDL
/// `enum SparseStruct { CSR, COO, MSR, VBR, FEM }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparseStruct {
    /// Compressed sparse row: `Rows` is the row-pointer array.
    Csr,
    /// Coordinate triplets: `Rows[k], Columns[k], Values[k]`.
    Coo,
    /// Modified sparse row (SPARSKIT layout): `Values`/`Columns` carry the
    /// combined `(val, ja)` arrays; `Rows` is unused.
    Msr,
    /// Variable block row with a uniform block size (`setBlockSize`):
    /// `Rows` is the block-row pointer array, `Columns` the block-column
    /// indices, `Values` the dense column-major blocks.
    Vbr,
    /// Finite-element contributions with a uniform element arity
    /// (`setBlockSize`): `Columns` is the concatenated connectivity,
    /// `Values` the concatenated row-major element matrices.
    Fem,
}

impl SparseStruct {
    /// All variants (ablation sweeps iterate this).
    pub const ALL: [SparseStruct; 5] = [
        SparseStruct::Csr,
        SparseStruct::Coo,
        SparseStruct::Msr,
        SparseStruct::Vbr,
        SparseStruct::Fem,
    ];

    /// SIDL variant name.
    pub fn name(self) -> &'static str {
        match self {
            SparseStruct::Csr => "CSR",
            SparseStruct::Coo => "COO",
            SparseStruct::Msr => "MSR",
            SparseStruct::Vbr => "VBR",
            SparseStruct::Fem => "FEM",
        }
    }

    /// Parse a SIDL variant name (case-insensitive).
    pub fn parse(name: &str) -> LisiResult<Self> {
        Ok(match name.to_ascii_uppercase().as_str() {
            "CSR" => SparseStruct::Csr,
            "COO" => SparseStruct::Coo,
            "MSR" => SparseStruct::Msr,
            "VBR" => SparseStruct::Vbr,
            "FEM" => SparseStruct::Fem,
            other => {
                return Err(LisiError::InvalidInput(format!("unknown SparseStruct '{other}'")))
            }
        })
    }
}

/// Which operator a `MatrixFree` callback should apply — the SIDL
/// `enum ID { MATRIX, PRECONDITIONER }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorId {
    /// Apply the coefficient matrix.
    Matrix,
    /// Apply the (approximate inverse) preconditioner.
    Preconditioner,
}

impl OperatorId {
    /// SIDL variant name.
    pub fn name(self) -> &'static str {
        match self {
            OperatorId::Matrix => "MATRIX",
            OperatorId::Preconditioner => "PRECONDITIONER",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_match_the_sidl_spec() {
        let reg = cca::sidl::SidlRegistry::lisi();
        let spec = reg.enum_def("lisi.SparseStruct").unwrap();
        for (s, spec_name) in SparseStruct::ALL.iter().zip(&spec.variants) {
            assert_eq!(s.name(), spec_name);
            assert_eq!(SparseStruct::parse(s.name()).unwrap(), *s);
        }
        let ids = reg.enum_def("lisi.ID").unwrap();
        assert_eq!(OperatorId::Matrix.name(), ids.variants[0]);
        assert_eq!(OperatorId::Preconditioner.name(), ids.variants[1]);
    }

    #[test]
    fn parse_is_case_insensitive_and_strict() {
        assert_eq!(SparseStruct::parse("csr").unwrap(), SparseStruct::Csr);
        assert_eq!(SparseStruct::parse("Fem").unwrap(), SparseStruct::Fem);
        assert!(SparseStruct::parse("DIA").is_err());
    }
}
