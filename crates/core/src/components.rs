//! CCA components wrapping the LISI adapters — the deployable units the
//! paper's Figure 4 rewires at run time.
//!
//! Port layout (design decision §6.4: uses ports on the application side,
//! provides ports on the solver side, with the single exception of the
//! application-provided `MatrixFree` port):
//!
//! * every [`SolverComponent`] **provides** `"lisi-solver"` of SIDL type
//!   `lisi.SparseSolver` and **uses** (optionally) `"matrix-free"` of
//!   type `lisi.MatrixFree`;
//! * the application's [`MatrixFreeComponent`] **provides**
//!   `"matrix-free"`.

use std::sync::Arc;

use cca::{CcaResult, Component, Services, WeakServices};

use crate::adapters::{RaztecAdapter, RkspAdapter, RmgAdapter, RsluAdapter};
use crate::error::LisiResult;
use crate::traits::{MatrixFreePort, SparseSolverPort};
use crate::types::SparseStruct;

/// Provides-port name of every solver component.
pub const SOLVER_PORT: &str = "lisi-solver";
/// SIDL type of the solver port.
pub const SOLVER_PORT_TYPE: &str = "lisi.SparseSolver";
/// Uses/provides-port name for the matrix-free callback.
pub const MATRIX_FREE_PORT: &str = "matrix-free";
/// SIDL type of the matrix-free port.
pub const MATRIX_FREE_PORT_TYPE: &str = "lisi.MatrixFree";

/// Adapters that can accept a matrix-free port injection.
pub trait MatrixFreeSink {
    /// Hand the application's `MatrixFree` port to the adapter.
    fn inject_matrix_free(&self, port: Arc<dyn MatrixFreePort>);
}

impl MatrixFreeSink for RkspAdapter {
    fn inject_matrix_free(&self, port: Arc<dyn MatrixFreePort>) {
        self.set_matrix_free(port);
    }
}
impl MatrixFreeSink for RaztecAdapter {
    fn inject_matrix_free(&self, port: Arc<dyn MatrixFreePort>) {
        self.set_matrix_free(port);
    }
}
impl MatrixFreeSink for RsluAdapter {
    fn inject_matrix_free(&self, port: Arc<dyn MatrixFreePort>) {
        self.set_matrix_free(port);
    }
}
impl MatrixFreeSink for RmgAdapter {
    fn inject_matrix_free(&self, port: Arc<dyn MatrixFreePort>) {
        self.set_matrix_free(port);
    }
}

/// The provides-port object: delegates to the adapter, and just before a
/// solve checks whether a `MatrixFree` port has been wired to this
/// component, injecting it if so — getPort-at-use-time semantics, so
/// dynamic rewiring is picked up.
///
/// Every method passes through [`port_span`], so the component layer's
/// own overhead (paper §6: "what does the CCA indirection cost?") is
/// measured by the framework itself: the `port:*` spans' *self* time is
/// exactly the shim + dispatch cost, with the adapter's work attributed
/// to the nested spans.
struct PortShim<A> {
    inner: Arc<A>,
    /// Weak: the services' state owns this shim (it *is* the provides
    /// port value), so a strong handle here would leak the component.
    services: WeakServices,
}

/// Count a port call and open its `port:<method>` span.
fn port_span(name: &'static str) -> probe::SpanGuard {
    probe::incr(probe::Counter::PortCalls);
    probe::SpanGuard::enter(name)
}

impl<A: SparseSolverPort + MatrixFreeSink + 'static> SparseSolverPort for PortShim<A> {
    fn initialize(&self, comm: rcomm::Communicator) -> LisiResult<()> {
        let _s = port_span("port:initialize");
        self.inner.initialize(comm)
    }
    fn set_block_size(&self, bs: usize) -> LisiResult<()> {
        let _s = port_span("port:set_block_size");
        self.inner.set_block_size(bs)
    }
    fn set_start_row(&self, v: usize) -> LisiResult<()> {
        let _s = port_span("port:set_start_row");
        self.inner.set_start_row(v)
    }
    fn set_local_rows(&self, v: usize) -> LisiResult<()> {
        let _s = port_span("port:set_local_rows");
        self.inner.set_local_rows(v)
    }
    fn set_local_nnz(&self, v: usize) -> LisiResult<()> {
        let _s = port_span("port:set_local_nnz");
        self.inner.set_local_nnz(v)
    }
    fn set_global_cols(&self, v: usize) -> LisiResult<()> {
        let _s = port_span("port:set_global_cols");
        self.inner.set_global_cols(v)
    }
    fn setup_matrix_coo(&self, values: &[f64], rows: &[usize], cols: &[usize]) -> LisiResult<()> {
        let _s = port_span("port:setup_matrix_coo");
        self.inner.setup_matrix_coo(values, rows, cols)
    }
    fn setup_matrix(
        &self,
        values: &[f64],
        rows: &[usize],
        cols: &[usize],
        structure: SparseStruct,
    ) -> LisiResult<()> {
        let _s = port_span("port:setup_matrix");
        self.inner.setup_matrix(values, rows, cols, structure)
    }
    fn setup_matrix_offset(
        &self,
        values: &[f64],
        rows: &[usize],
        cols: &[usize],
        structure: SparseStruct,
        offset: usize,
    ) -> LisiResult<()> {
        let _s = port_span("port:setup_matrix_offset");
        self.inner.setup_matrix_offset(values, rows, cols, structure, offset)
    }
    fn setup_rhs(&self, rhs: &[f64], n_rhs: usize) -> LisiResult<()> {
        let _s = port_span("port:setup_rhs");
        self.inner.setup_rhs(rhs, n_rhs)
    }
    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        let _s = port_span("port:solve");
        if let Some(services) = self.services.upgrade() {
            if let Ok(port) = services.get_port::<Arc<dyn MatrixFreePort>>(MATRIX_FREE_PORT) {
                self.inner.inject_matrix_free(port);
            }
        }
        self.inner.solve(solution, status)
    }
    fn set(&self, key: &str, value: &str) -> LisiResult<()> {
        let _s = port_span("port:set");
        self.inner.set(key, value)
    }
    fn set_int(&self, key: &str, value: i64) -> LisiResult<()> {
        let _s = port_span("port:set_int");
        self.inner.set_int(key, value)
    }
    fn set_bool(&self, key: &str, value: bool) -> LisiResult<()> {
        let _s = port_span("port:set_bool");
        self.inner.set_bool(key, value)
    }
    fn set_double(&self, key: &str, value: f64) -> LisiResult<()> {
        let _s = port_span("port:set_double");
        self.inner.set_double(key, value)
    }
    fn get_all(&self) -> String {
        let _s = port_span("port:get_all");
        self.inner.get_all()
    }
}

/// A CCA solver component wrapping one adapter.
pub struct SolverComponent<A> {
    adapter: Arc<A>,
}

impl SolverComponent<RkspAdapter> {
    /// The RKSP (PETSc-like) solver component.
    pub fn rksp() -> Self {
        SolverComponent { adapter: Arc::new(RkspAdapter::new()) }
    }
}

impl SolverComponent<RaztecAdapter> {
    /// The RAztec (Trilinos-like) solver component.
    pub fn raztec() -> Self {
        SolverComponent { adapter: Arc::new(RaztecAdapter::new()) }
    }
}

impl SolverComponent<RsluAdapter> {
    /// The RSLU (SuperLU-like) direct solver component.
    pub fn rslu() -> Self {
        SolverComponent { adapter: Arc::new(RsluAdapter::new()) }
    }
}

impl SolverComponent<RmgAdapter> {
    /// The RMG multigrid solver component.
    pub fn rmg() -> Self {
        SolverComponent { adapter: Arc::new(RmgAdapter::new()) }
    }
}

impl<A> SolverComponent<A> {
    /// Direct access to the adapter (package-specific extensions like
    /// [`RmgAdapter::set_coarse_solver`]).
    pub fn adapter(&self) -> Arc<A> {
        Arc::clone(&self.adapter)
    }
}

impl<A: SparseSolverPort + MatrixFreeSink + Send + Sync + 'static> Component
    for SolverComponent<A>
{
    fn set_services(&mut self, services: &Services) -> CcaResult<()> {
        let shim: Arc<dyn SparseSolverPort> = Arc::new(PortShim {
            inner: Arc::clone(&self.adapter),
            services: services.downgrade(),
        });
        services.add_provides_port(SOLVER_PORT, SOLVER_PORT_TYPE, shim)?;
        services.register_uses_port(MATRIX_FREE_PORT, MATRIX_FREE_PORT_TYPE)?;
        Ok(())
    }
}

/// The application-side component providing a `MatrixFree` port.
pub struct MatrixFreeComponent {
    port: Arc<dyn MatrixFreePort>,
}

impl MatrixFreeComponent {
    /// Wrap an application operator.
    pub fn new(port: Arc<dyn MatrixFreePort>) -> Self {
        MatrixFreeComponent { port }
    }
}

impl Component for MatrixFreeComponent {
    fn set_services(&mut self, services: &Services) -> CcaResult<()> {
        services.add_provides_port(
            MATRIX_FREE_PORT,
            MATRIX_FREE_PORT_TYPE,
            Arc::clone(&self.port),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::STATUS_LEN;
    use cca::Framework;
    use rcomm::Universe;

    fn fetch_solver(fw: &Framework, id: &cca::ComponentId, user: &cca::ComponentId) -> Arc<dyn SparseSolverPort> {
        let _ = id;
        fw.services(user).unwrap().get_port::<Arc<dyn SparseSolverPort>>("solver").unwrap()
    }

    /// A minimal application component with a uses port for the solver.
    struct App;
    impl Component for App {
        fn set_services(&mut self, services: &Services) -> CcaResult<()> {
            services.register_uses_port("solver", SOLVER_PORT_TYPE)
        }
    }

    #[test]
    fn components_register_with_sidl_validated_framework() {
        let mut fw = Framework::with_registry(cca::sidl::SidlRegistry::lisi());
        let app = fw.instantiate("app", Box::new(App)).unwrap();
        let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
        let raztec = fw.instantiate("raztec", Box::new(SolverComponent::raztec())).unwrap();
        let rslu = fw.instantiate("rslu", Box::new(SolverComponent::rslu())).unwrap();
        let rmg = fw.instantiate("rmg", Box::new(SolverComponent::rmg())).unwrap();
        for s in [&rksp, &raztec, &rslu, &rmg] {
            fw.connect(&app, "solver", s, SOLVER_PORT).unwrap();
            fw.disconnect(&app, "solver").unwrap();
        }
    }

    #[test]
    fn solver_switching_through_the_framework_solves_with_each_package() {
        // Figure 4 in miniature: one driver, three solver components, the
        // connection rewired between solves.
        let a = rsparse::generate::laplacian_2d(8);
        let n = 64;
        let x_true = rsparse::generate::random_vector(n, 5);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(1, |comm| {
            let mut fw = Framework::with_registry(cca::sidl::SidlRegistry::lisi());
            let app = fw.instantiate("app", Box::new(App)).unwrap();
            let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
            let raztec =
                fw.instantiate("raztec", Box::new(SolverComponent::raztec())).unwrap();
            let rslu = fw.instantiate("rslu", Box::new(SolverComponent::rslu())).unwrap();

            let mut errors = Vec::new();
            let mut connected = false;
            for solver_id in [&rksp, &raztec, &rslu] {
                if connected {
                    fw.disconnect(&app, "solver").unwrap();
                }
                fw.connect(&app, "solver", solver_id, SOLVER_PORT).unwrap();
                connected = true;
                let port = fetch_solver(&fw, solver_id, &app);
                port.initialize(comm.dup().unwrap()).unwrap();
                port.set_start_row(0).unwrap();
                port.set_local_rows(n).unwrap();
                port.set_global_cols(n).unwrap();
                port.set("tol", "1e-10").unwrap();
                port.setup_matrix(
                    a.values(),
                    a.row_ptr(),
                    a.col_idx(),
                    SparseStruct::Csr,
                )
                .unwrap();
                port.setup_rhs(&b, 1).unwrap();
                let mut x = vec![0.0; n];
                let mut status = [0.0; STATUS_LEN];
                port.solve(&mut x, &mut status).unwrap();
                let err = x
                    .iter()
                    .zip(&x_true)
                    .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
                errors.push(err);
            }
            errors
        });
        for (i, err) in out[0].iter().enumerate() {
            assert!(*err < 1e-6, "solver {i}: err = {err}");
        }
    }

    #[test]
    fn probe_option_switches_mode_and_port_overhead_is_accounted() {
        let a = rsparse::generate::laplacian_2d(6);
        let n = 36;
        let b = a.matvec(&vec![1.0; n]).unwrap();
        let saved = probe::mode();
        let out = Universe::run(1, |comm| {
            let mut fw = Framework::with_registry(cca::sidl::SidlRegistry::lisi());
            let app = fw.instantiate("app", Box::new(App)).unwrap();
            let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
            fw.connect(&app, "solver", &rksp, SOLVER_PORT).unwrap();
            let port = fetch_solver(&fw, &rksp, &app);

            // The reserved "probe" key flips the global mode; a bad
            // value is rejected with a parameter error.
            port.set("probe", "summary").unwrap();
            assert!(probe::enabled());
            let bad = port.set("probe", "verbose").unwrap_err();
            assert!(matches!(bad, crate::LisiError::BadParameter { .. }));

            let fetches0 = probe::get(probe::Counter::PortFetches);
            let calls0 = probe::get(probe::Counter::PortCalls);
            port.initialize(comm.dup().unwrap()).unwrap();
            port.set_start_row(0).unwrap();
            port.set_local_rows(n).unwrap();
            port.set_global_cols(n).unwrap();
            port.set("tol", "1e-10").unwrap();
            port.setup_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr)
                .unwrap();
            port.setup_rhs(&b, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut status = [0.0; crate::status::STATUS_LEN];
            port.solve(&mut x, &mut status).unwrap();

            let report = probe::local_report();
            // 8 shim methods were crossed above (set ×1 after enabling +
            // the setters + solve); solve() also fetched the matrix-free
            // uses port through Services::get_port.
            assert!(probe::get(probe::Counter::PortCalls) - calls0 >= 8);
            assert!(probe::get(probe::Counter::PortFetches) - fetches0 >= 1);
            let solve_span = report.span("port:solve").expect("solve span recorded");
            assert_eq!(solve_span.calls, 1);
            // The framework's own overhead is the shim's self time:
            // bounded by the span total, and far below it, since the
            // adapter's lisi_setup/lisi_solve nest inside.
            assert!(report.port_self_seconds() <= solve_span.total_s + 1e-9);
            assert!(report.span("lisi_setup").is_some());
            assert!(report.span("lisi_solve").is_some());
            report.span("port:setup_matrix").map(|s| s.calls)
        });
        probe::set_mode(saved);
        assert_eq!(out[0], Some(1));
    }

    #[test]
    fn threads_option_sets_rank_local_pool_and_rejects_garbage() {
        let saved = rsparse::threads::active();
        let out = Universe::run(1, |comm| {
            let mut fw = Framework::with_registry(cca::sidl::SidlRegistry::lisi());
            let app = fw.instantiate("app", Box::new(App)).unwrap();
            let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
            fw.connect(&app, "solver", &rksp, SOLVER_PORT).unwrap();
            let port = fetch_solver(&fw, &rksp, &app);
            port.initialize(comm.dup().unwrap()).unwrap();

            // The reserved "threads" key installs the rank-local thread
            // count used by the threaded kernels; set_int routes there
            // too, and bad values are parameter errors.
            port.set("threads", "3").unwrap();
            assert_eq!(rsparse::threads::active(), 3);
            port.set_int("threads", 2).unwrap();
            assert_eq!(rsparse::threads::active(), 2);
            for bad in ["0", "-1", "many"] {
                let err = port.set("threads", bad).unwrap_err();
                assert!(
                    matches!(err, crate::LisiError::BadParameter { .. }),
                    "'{bad}' must be rejected"
                );
            }
            // Rejected values leave the setting untouched.
            rsparse::threads::active()
        });
        assert_eq!(out[0], 2);
        rsparse::threads::set_threads(saved);
    }

    #[test]
    fn dropping_the_framework_releases_the_component() {
        // Regression: the provides-port shim used to hold a strong
        // Services handle, creating a reference cycle that leaked every
        // solver component (and its cached matrices).
        let component = SolverComponent::rksp();
        let weak_adapter = Arc::downgrade(&component.adapter());
        {
            let mut fw = Framework::new();
            fw.instantiate("solver", Box::new(component)).unwrap();
            assert!(weak_adapter.upgrade().is_some(), "alive while framework lives");
        }
        assert!(
            weak_adapter.upgrade().is_none(),
            "adapter must be freed when the framework drops"
        );
    }

    #[test]
    fn matrix_free_port_flows_through_the_framework() {
        struct Lap1d {
            n: usize,
        }
        impl MatrixFreePort for Lap1d {
            fn mat_mult(
                &self,
                _id: crate::OperatorId,
                x: &[f64],
                y: &mut [f64],
            ) -> LisiResult<()> {
                for i in 0..self.n {
                    let mut acc = 2.0 * x[i];
                    if i > 0 {
                        acc -= x[i - 1];
                    }
                    if i + 1 < self.n {
                        acc -= x[i + 1];
                    }
                    y[i] = acc;
                }
                Ok(())
            }
        }
        let n = 16;
        let a = rsparse::generate::laplacian_1d(n);
        let x_true = rsparse::generate::random_vector(n, 2);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(1, |comm| {
            let mut fw = Framework::with_registry(cca::sidl::SidlRegistry::lisi());
            let app = fw.instantiate("app", Box::new(App)).unwrap();
            let mf = fw
                .instantiate(
                    "mf",
                    Box::new(MatrixFreeComponent::new(Arc::new(Lap1d { n }))),
                )
                .unwrap();
            let rksp = fw.instantiate("rksp", Box::new(SolverComponent::rksp())).unwrap();
            fw.connect(&app, "solver", &rksp, SOLVER_PORT).unwrap();
            // Wire the solver's matrix-free uses port to the app operator.
            fw.connect(&rksp, MATRIX_FREE_PORT, &mf, MATRIX_FREE_PORT).unwrap();

            let port = fetch_solver(&fw, &rksp, &app);
            port.initialize(comm.dup().unwrap()).unwrap();
            port.set_start_row(0).unwrap();
            port.set_local_rows(n).unwrap();
            port.set_global_cols(n).unwrap();
            port.set_bool("matrix_free", true).unwrap();
            port.set("solver", "cg").unwrap();
            port.set("preconditioner", "none").unwrap();
            port.set_double("tol", 1e-11).unwrap();
            port.setup_rhs(&b, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut status = [0.0; STATUS_LEN];
            port.solve(&mut x, &mut status).unwrap();
            x
        });
        for (g, e) in out[0].iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-7);
        }
    }
}
