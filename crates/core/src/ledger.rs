//! The per-solve efficiency ledger.
//!
//! When armed (`RSPARSE_LEDGER` or the `set("ledger", path)` reserved
//! port key), every adapter's `solve` fuses the static work models
//! ([`probe::model`]), the measured phase times and spans, convergence
//! analytics from the Krylov recurrence, the rank×rank communication
//! matrix and the cohort counters into one versioned
//! `solve_ledger.json` document — the artifact
//! `scripts/regression_sentinel.sh` diffs against stored baselines.
//!
//! Emission is diagnostics: it never fails a solve. Rank 0 assembles
//! the whole document after a barrier (the SPMD launcher runs ranks as
//! threads of one process, so the probe registry already holds every
//! rank's recorder — no gather needed).

use std::fmt::Write as _;

use rcomm::Communicator;

use crate::status::SolveReport;

/// Default relative tolerance assumed for the unpreconditioned-CG
/// iteration estimate when the option surface supplied none (matches
/// `rkrylov::KspConfig::default().rtol`).
const DEFAULT_RTOL: f64 = 1e-8;

/// Everything the adapter knows about the finished solve that the probe
/// registry does not.
pub struct SolveInfo<'a> {
    /// Adapter package name (`rksp`, `raztec`, `rslu`, `rmg`).
    pub backend: &'static str,
    /// The report about to be written into the status vector.
    pub report: &'a SolveReport,
    /// Configured solver name, if the backend is iterative.
    pub ksp: Option<String>,
    /// Configured preconditioner name, if any.
    pub pc: Option<String>,
    /// Relative tolerance the solve targeted, if configured.
    pub rtol: Option<f64>,
    /// CG Lanczos condition-number estimate (see `rkrylov::analytics`).
    pub cond_estimate: Option<f64>,
    /// ‖b − A·x₀‖₂ at entry of the (last) solve, when known.
    pub initial_residual: Option<f64>,
}

/// Arm span recording for a ledger-bound solve. The ledger needs the
/// span table even when no probe sink is selected, so a solve that
/// starts with a ledger destination forces collection on
/// (`probe::set_forced`); [`emit`] releases it.
pub fn arm() {
    if probe::ledger::armed().is_some() {
        probe::set_forced(true);
    }
}

/// Assemble and publish the ledger for a finished solve. No-op unless a
/// destination is armed. Collective when armed (one barrier, so rank 0
/// snapshots the registry only after every rank finished recording);
/// rank 0 writes the document and embeds it for the postmortem writer.
pub fn emit(comm: &Communicator, info: &SolveInfo<'_>) {
    let Some(base) = probe::ledger::armed() else { return };
    if comm.barrier().is_err() {
        return;
    }
    if comm.rank() != 0 {
        return;
    }
    let doc = assemble(comm.size(), info);
    probe::set_forced(false);
    if let Err(e) = probe::ledger::publish(&base, doc) {
        eprintln!("lisi: solve ledger write to {} failed: {e}", base.display());
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".into(),
    }
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:e}"),
        _ => "null".into(),
    }
}

/// Build the ledger document from the probe registry plus the adapter's
/// [`SolveInfo`]. Pure with respect to the registry snapshot, so tests
/// can call it deterministically.
pub fn assemble(ranks: usize, info: &SolveInfo<'_>) -> String {
    let reports = probe::aggregate();
    let rep = info.report;

    // Convergence analytics: geometric per-iteration residual reduction,
    // the Lanczos κ̂, and the preconditioner-quality ratio (estimated
    // unpreconditioned iterations over observed iterations).
    let reduction_rate = match (info.initial_residual, rep.iterations) {
        (Some(r0), iters) if iters > 0 && r0 > 0.0 && rep.residual > 0.0 => {
            Some((rep.residual / r0).powf(1.0 / iters as f64))
        }
        _ => None,
    };
    let unprec = info.cond_estimate.and_then(|k| {
        rkrylov::analytics::unpreconditioned_iterations(k, info.rtol.unwrap_or(DEFAULT_RTOL))
    });
    let pc_quality = match (unprec, rep.iterations) {
        (Some(u), iters) if iters > 0 => Some(u as f64 / iters as f64),
        _ => None,
    };

    let format = reports
        .iter()
        .find_map(|r| r.note("format").map(str::to_string));
    let counter_sum =
        |c: probe::Counter| reports.iter().map(|r| r.counter(c)).sum::<u64>();

    let mut doc = String::from("{");
    let _ = writeln!(doc, "\"schema\":\"{}\",", probe::ledger::SCHEMA);
    let _ = writeln!(doc, "\"backend\":\"{}\",", json_escape(info.backend));
    let _ = writeln!(
        doc,
        "\"solver\":{{\"ksp\":{},\"pc\":{},\"format\":{},\"threads\":{},\"ranks\":{ranks}}},",
        opt_str(&info.ksp),
        opt_str(&info.pc),
        opt_str(&format),
        rsparse::threads::active(),
    );
    let _ = writeln!(
        doc,
        "\"phases\":{{\"setup_seconds\":{:e},\"solve_seconds\":{:e}}},",
        rep.setup_seconds, rep.solve_seconds
    );
    let _ = writeln!(
        doc,
        "\"convergence\":{{\"iterations\":{},\"converged\":{},\"reason\":{},\
         \"initial_residual\":{},\"final_residual\":{},\"reduction_rate\":{},\
         \"rtol\":{},\"cond_estimate\":{},\"unpreconditioned_estimate\":{},\
         \"pc_quality\":{}}},",
        rep.iterations,
        rep.converged,
        rep.reason,
        opt_f64(info.initial_residual),
        opt_f64(Some(rep.residual)),
        opt_f64(reduction_rate),
        opt_f64(info.rtol),
        opt_f64(info.cond_estimate),
        unprec.map(|u| u.to_string()).unwrap_or_else(|| "null".into()),
        opt_f64(pc_quality),
    );
    match probe::model::roofline() {
        Some(r) => {
            let _ = writeln!(
                doc,
                "\"roofline\":{{\"copy_gbs\":{:e},\"triad_gbs\":{:e}}},",
                r.copy_gbs, r.triad_gbs
            );
        }
        None => doc.push_str("\"roofline\":null,\n"),
    }
    // One row per (rank, modelled kernel): the same join the summary
    // sink and the Prometheus exporter render, so the three surfaces
    // agree by construction.
    let _ = writeln!(doc, "\"kernels\":{},", probe::kernel_efficiency_json(&reports));
    let m = probe::comm_matrix(&reports);
    let _ = writeln!(
        doc,
        "\"comm\":{{\"ranks\":{:?},\"msgs\":{:?},\"bytes\":{:?}}},",
        m.ranks, m.msgs, m.bytes
    );
    // Session-layer accounting: cache traffic from the long-lived
    // `SolverService` plus the batch width the adapter actually ran.
    let batch = reports
        .iter()
        .find_map(|r| r.note("batch").map(str::to_string));
    let _ = writeln!(
        doc,
        "\"session\":{{\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
         \"rhs_batched\":{},\"batch\":{}}},",
        counter_sum(probe::Counter::SessionCacheHits),
        counter_sum(probe::Counter::SessionCacheMisses),
        counter_sum(probe::Counter::SessionCacheEvictions),
        counter_sum(probe::Counter::RhsBatched),
        opt_str(&batch),
    );
    let _ = writeln!(
        doc,
        "\"cohort\":{{\"ranks_lost\":{},\"cohort_shrinks\":{},\"faults_injected\":{}}}",
        counter_sum(probe::Counter::RanksLost),
        counter_sum(probe::Counter::CohortShrinks),
        counter_sum(probe::Counter::FaultsInjected),
    );
    doc.push('}');
    doc
}
