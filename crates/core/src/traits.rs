//! The LISI port traits — the Rust realization of the SIDL listing.
//!
//! Methods take `&self`: a CCA port is shared (an `Arc<dyn …>` handed to
//! every connected component), so implementations use interior
//! mutability. SIDL's `int` returns become `LisiResult<()>`;
//! [`crate::LisiError::code`] recovers the integer convention.

use rcomm::Communicator;

use crate::error::LisiResult;
use crate::types::{OperatorId, SparseStruct};

/// `lisi.SparseSolver` — the single public solver interface (design
/// decision §6.1: one interface, primitive-typed data, no object
/// composition).
///
/// Call order contract (paper §5.1's three phases):
/// 1. [`initialize`](Self::initialize), then the distribution setters
///    ([`set_start_row`](Self::set_start_row),
///    [`set_local_rows`](Self::set_local_rows),
///    [`set_local_nnz`](Self::set_local_nnz),
///    [`set_global_cols`](Self::set_global_cols));
/// 2. one `setup_matrix*` overload and [`setup_rhs`](Self::setup_rhs),
///    plus any generic parameter setters;
/// 3. [`solve`](Self::solve) — repeatable, with re-entry to phase 2 for
///    the reuse scenarios of §5.2.
pub trait SparseSolverPort: Send + Sync {
    /// Hand the solver its communicator (SIDL passes an opaque `long`
    /// handle; here it is a duplicated communicator the solver owns).
    fn initialize(&self, comm: Communicator) -> LisiResult<()>;

    /// Uniform block size for VBR input / element arity for FEM input.
    fn set_block_size(&self, bs: usize) -> LisiResult<()>;

    /// First global row owned by this rank (block-row partitioning).
    fn set_start_row(&self, start_row: usize) -> LisiResult<()>;

    /// Number of rows owned by this rank.
    fn set_local_rows(&self, rows: usize) -> LisiResult<()>;

    /// Number of nonzeros in this rank's rows.
    fn set_local_nnz(&self, nnz: usize) -> LisiResult<()>;

    /// Global number of columns (= global rows; systems are square).
    fn set_global_cols(&self, cols: usize) -> LisiResult<()>;

    /// `setupMatrix[few_args]`: COO triplets with global row and column
    /// indices, 0-based.
    fn setup_matrix_coo(
        &self,
        values: &[f64],
        rows: &[usize],
        columns: &[usize],
    ) -> LisiResult<()>;

    /// `setupMatrix[media_args]`: arrays interpreted per `structure`
    /// (see [`SparseStruct`] for the per-format array roles), 0-based.
    fn setup_matrix(
        &self,
        values: &[f64],
        rows: &[usize],
        columns: &[usize],
        structure: SparseStruct,
    ) -> LisiResult<()>;

    /// `setupMatrix[large_args]`: like `setup_matrix` with an index base
    /// `offset` applied to all indices (1 for Fortran-style callers).
    fn setup_matrix_offset(
        &self,
        values: &[f64],
        rows: &[usize],
        columns: &[usize],
        structure: SparseStruct,
        offset: usize,
    ) -> LisiResult<()>;

    /// `setupRHS`: this rank's slice(s) of the right-hand side(s),
    /// column-major when `n_rhs > 1` (design choice for §5.2c).
    fn setup_rhs(&self, rhs: &[f64], n_rhs: usize) -> LisiResult<()>;

    /// Solve. `solution` carries the initial guess in and this rank's
    /// solution out (`local_rows · n_rhs` entries, column-major);
    /// `status` (≥ [`crate::STATUS_LEN`] entries) receives the layout
    /// documented in [`crate::status`]. Collective across the cohort.
    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()>;

    /// Generic string parameter (design decision §6.5). Keys shared by
    /// every adapter: `"solver"`, `"preconditioner"`; unknown keys are
    /// stored and passed to the package, which may ignore them.
    fn set(&self, key: &str, value: &str) -> LisiResult<()>;

    /// Generic integer parameter (e.g. `"maxits"`, `"restart"`).
    fn set_int(&self, key: &str, value: i64) -> LisiResult<()>;

    /// Generic boolean parameter (e.g. `"refine"`).
    fn set_bool(&self, key: &str, value: bool) -> LisiResult<()>;

    /// Generic floating-point parameter (e.g. `"tol"`).
    fn set_double(&self, key: &str, value: f64) -> LisiResult<()>;

    /// Dump every parameter currently set, one `key=value` per line —
    /// the paper's `get_all`.
    fn get_all(&self) -> String;
}

/// `lisi.MatrixFree` — the application-side port for matrix-free solves
/// (paper §5.5): the solver calls back into the application to apply the
/// operator (and optionally a preconditioner) to a vector. The data
/// distribution is assumed known to both sides (paper §7.2).
pub trait MatrixFreePort: Send + Sync {
    /// y ← Op·x on this rank's slice, where `id` selects the operator.
    /// May communicate with its own cohort (the solver calls it
    /// collectively).
    fn mat_mult(&self, id: OperatorId, x: &[f64], y: &mut [f64]) -> LisiResult<()>;
}

/// Mapping from the SIDL method (Babel long name) to the Rust method
/// realizing it — data for the conformance test and documentation.
pub fn sidl_method_map() -> Vec<(&'static str, &'static str)> {
    vec![
        ("initialize", "initialize"),
        ("setBlockSize", "set_block_size"),
        ("setStartRow", "set_start_row"),
        ("setLocalRows", "set_local_rows"),
        ("setLocalNNZ", "set_local_nnz"),
        ("setGlobalCols", "set_global_cols"),
        ("setupMatrix_few_args", "setup_matrix_coo"),
        ("setupMatrix_media_args", "setup_matrix"),
        ("setupMatrix_large_args", "setup_matrix_offset"),
        ("setupRHS", "setup_rhs"),
        ("solve", "solve"),
        ("set", "set"),
        ("setInt", "set_int"),
        ("setBool", "set_bool"),
        ("setDouble", "set_double"),
        ("get_all", "get_all"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Rust trait must cover the SIDL spec exactly: every method of
    /// `lisi.SparseSolver` (by Babel long name) appears in the map, and
    /// nothing else does.
    #[test]
    fn rust_trait_conforms_to_the_sidl_spec() {
        let reg = cca::sidl::SidlRegistry::lisi();
        let iface = reg.interface("lisi.SparseSolver").unwrap();
        let spec_names: Vec<String> = iface.methods.iter().map(|m| m.long_name()).collect();
        let map = sidl_method_map();
        let mapped: Vec<&str> = map.iter().map(|(s, _)| *s).collect();
        assert_eq!(spec_names, mapped, "trait/spec method sets diverged");
        // Rust names are unique.
        let mut rust: Vec<&str> = map.iter().map(|(_, r)| *r).collect();
        rust.sort_unstable();
        rust.dedup();
        assert_eq!(rust.len(), map.len());
    }

    #[test]
    fn matrix_free_spec_matches() {
        let reg = cca::sidl::SidlRegistry::lisi();
        let iface = reg.interface("lisi.MatrixFree").unwrap();
        assert_eq!(iface.methods.len(), 1);
        assert_eq!(iface.methods[0].name, "matMult");
        // 4 SIDL params (id, x, y, length); Rust folds `length` into the
        // slice lengths.
        assert_eq!(iface.methods[0].params.len(), 4);
    }
}
