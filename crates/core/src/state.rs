//! Shared adapter plumbing: the phase state machine every adapter drives,
//! plus the input-format conversion layer (paper §5.3 — "the interface
//! works as an adapter to convert the input data format to the libraries'
//! internal data structure and frees up users from doing it by their
//! own").

use std::sync::Arc;

use rcomm::Communicator;
use rsparse::{BlockRowPartition, CooMatrix, CsrMatrix};

use crate::error::{LisiError, LisiResult};
use crate::traits::MatrixFreePort;
use crate::types::SparseStruct;

/// Mutable state behind every adapter's interior mutability.
pub struct LisiState {
    /// The solver-owned communicator (set by `initialize`).
    pub comm: Option<Communicator>,
    /// Uniform block size (VBR) / element arity (FEM); default 1.
    pub block_size: usize,
    /// First global row owned here.
    pub start_row: Option<usize>,
    /// Rows owned here.
    pub local_rows: Option<usize>,
    /// Declared local nonzeros.
    pub local_nnz: Option<usize>,
    /// Global column count.
    pub global_cols: Option<usize>,
    /// Converted local matrix (local rows × global cols), if assembled.
    pub matrix: Option<CsrMatrix>,
    /// Incremented on every successful matrix setup, so adapters know
    /// when cached factorizations/preconditioners go stale.
    pub matrix_epoch: u64,
    /// Local right-hand-side storage (column-major for multiple RHS).
    pub rhs: Option<Vec<f64>>,
    /// Number of right-hand sides.
    pub n_rhs: usize,
    /// Generic parameter database (LISI's `set*` methods write here).
    pub options: rkrylov::Options,
    /// The application's matrix-free port, when connected.
    pub matrix_free: Option<Arc<dyn MatrixFreePort>>,
    /// Seconds spent converting input formats (part of setup time).
    pub convert_seconds: f64,
}

impl Default for LisiState {
    fn default() -> Self {
        LisiState {
            comm: None,
            block_size: 1,
            start_row: None,
            local_rows: None,
            local_nnz: None,
            global_cols: None,
            matrix: None,
            matrix_epoch: 0,
            rhs: None,
            n_rhs: 1,
            options: rkrylov::Options::new(),
            matrix_free: None,
            convert_seconds: 0.0,
        }
    }
}

impl std::fmt::Debug for LisiState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LisiState")
            .field("initialized", &self.comm.is_some())
            .field("start_row", &self.start_row)
            .field("local_rows", &self.local_rows)
            .field("global_cols", &self.global_cols)
            .field("has_matrix", &self.matrix.is_some())
            .field("matrix_epoch", &self.matrix_epoch)
            .field("n_rhs", &self.n_rhs)
            .finish()
    }
}

impl LisiState {
    /// Fresh state.
    pub fn new() -> Self {
        LisiState::default()
    }

    /// The communicator, or `NotInitialized`.
    pub fn comm(&self) -> LisiResult<&Communicator> {
        self.comm.as_ref().ok_or(LisiError::NotInitialized)
    }

    fn dist_params(&self) -> LisiResult<(usize, usize, usize)> {
        match (self.start_row, self.local_rows, self.global_cols) {
            (Some(s), Some(l), Some(g)) => Ok((s, l, g)),
            _ => Err(LisiError::BadPhase(
                "setStartRow/setLocalRows/setGlobalCols must precede matrix setup".into(),
            )),
        }
    }

    /// Build the global block-row partition from every rank's declared
    /// `(start_row, local_rows)` — collective (one allgather), with
    /// consistency checking.
    pub fn build_partition(&self) -> LisiResult<BlockRowPartition> {
        let comm = self.comm()?;
        let (start, rows, global) = self.dist_params()?;
        let pairs: Vec<(usize, usize)> = comm.allgather((start, rows))?;
        let mut offsets = Vec::with_capacity(pairs.len() + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for (r, &(s, l)) in pairs.iter().enumerate() {
            if s != acc {
                return Err(LisiError::InvalidInput(format!(
                    "rank {r} declared start row {s}, expected {acc} (non-contiguous block rows)"
                )));
            }
            acc += l;
            offsets.push(acc);
        }
        if acc != global {
            return Err(LisiError::InvalidInput(format!(
                "declared rows sum to {acc}, but global size is {global}"
            )));
        }
        BlockRowPartition::from_offsets(offsets)
            .map_err(|e| LisiError::InvalidInput(e.to_string()))
    }

    /// Convert one of the five input formats into the local CSR block and
    /// store it. `offset` is the index base (0 or 1).
    pub fn ingest_matrix(
        &mut self,
        values: &[f64],
        rows: &[usize],
        columns: &[usize],
        structure: SparseStruct,
        offset: usize,
    ) -> LisiResult<()> {
        let t0 = std::time::Instant::now();
        let (start, local_rows, global_cols) = self.dist_params()?;
        let matrix = match structure {
            SparseStruct::Coo => {
                self.check_nnz(values.len())?;
                if rows.len() != values.len() || columns.len() != values.len() {
                    return Err(LisiError::InvalidInput(format!(
                        "COO arrays disagree: {} values, {} rows, {} columns",
                        values.len(),
                        rows.len(),
                        columns.len()
                    )));
                }
                let mut coo = CooMatrix::new(local_rows, global_cols);
                for ((&gr, &gc), &v) in rows.iter().zip(columns).zip(values) {
                    let gr = sub_offset(gr, offset, "row")?;
                    let gc = sub_offset(gc, offset, "column")?;
                    let lr = gr.checked_sub(start).filter(|&l| l < local_rows).ok_or_else(
                        || {
                            LisiError::InvalidInput(format!(
                                "row {gr} is not owned by this rank ([{start}, {})",
                                start + local_rows
                            ))
                        },
                    )?;
                    coo.push(lr, gc, v).map_err(|e| LisiError::InvalidInput(e.to_string()))?;
                }
                coo.to_csr()
            }
            SparseStruct::Csr => {
                self.check_nnz(values.len())?;
                if rows.len() != local_rows + 1 {
                    return Err(LisiError::InvalidInput(format!(
                        "CSR row pointer must have local_rows + 1 = {} entries, got {}",
                        local_rows + 1,
                        rows.len()
                    )));
                }
                rsparse::convert::csr_arrays_to_csr(
                    local_rows,
                    global_cols,
                    values,
                    rows,
                    columns,
                    offset,
                )
                .map_err(|e| LisiError::InvalidInput(e.to_string()))?
            }
            SparseStruct::Msr => {
                msr_local_to_csr(local_rows, global_cols, start, values, columns, offset)?
            }
            SparseStruct::Vbr => {
                self.vbr_local_to_csr(values, rows, columns, offset, start)?
            }
            SparseStruct::Fem => {
                if start != 0 || local_rows != global_cols {
                    return Err(LisiError::Unsupported(
                        "FEM element input requires a serial (single-rank) matrix; \
                         distributed element assembly is outside LISI 0.1"
                            .into(),
                    ));
                }
                self.fem_to_csr(values, columns, offset)?
            }
        };
        if matrix.cols() != global_cols {
            return Err(LisiError::InvalidInput("converted width mismatch".into()));
        }
        self.matrix = Some(matrix);
        self.matrix_epoch += 1;
        self.convert_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn check_nnz(&self, got: usize) -> LisiResult<()> {
        if let Some(declared) = self.local_nnz {
            if declared != got {
                return Err(LisiError::InvalidInput(format!(
                    "setLocalNNZ declared {declared} nonzeros, arrays carry {got}"
                )));
            }
        }
        Ok(())
    }

    /// VBR with uniform `block_size`: `rows` = block-row pointers,
    /// `columns` = global block-column indices, `values` = dense
    /// column-major blocks.
    fn vbr_local_to_csr(
        &self,
        values: &[f64],
        rows: &[usize],
        columns: &[usize],
        offset: usize,
        start: usize,
    ) -> LisiResult<CsrMatrix> {
        let (_, local_rows, global_cols) = self.dist_params()?;
        let bs = self.block_size;
        if !local_rows.is_multiple_of(bs)
            || !global_cols.is_multiple_of(bs)
            || !start.is_multiple_of(bs)
        {
            return Err(LisiError::InvalidInput(format!(
                "VBR block size {bs} must divide start row {start}, local rows {local_rows} \
                 and global columns {global_cols}"
            )));
        }
        let nbr = local_rows / bs;
        if rows.len() != nbr + 1 {
            return Err(LisiError::InvalidInput(format!(
                "VBR block-row pointer needs {} entries, got {}",
                nbr + 1,
                rows.len()
            )));
        }
        let nblocks = sub_offset(rows[nbr], offset, "block pointer")?;
        if columns.len() < nblocks || values.len() != nblocks * bs * bs {
            return Err(LisiError::InvalidInput(format!(
                "VBR arrays disagree: {} blocks, {} block columns, {} values",
                nblocks,
                columns.len(),
                values.len()
            )));
        }
        let mut coo = CooMatrix::new(local_rows, global_cols);
        for br in 0..nbr {
            let lo = sub_offset(rows[br], offset, "block pointer")?;
            let hi = sub_offset(rows[br + 1], offset, "block pointer")?;
            for (k, &col) in columns.iter().enumerate().take(hi).skip(lo) {
                let bc = sub_offset(col, offset, "block column")?;
                if (bc + 1) * bs > global_cols {
                    return Err(LisiError::InvalidInput(format!(
                        "block column {bc} exceeds the matrix width"
                    )));
                }
                let base = k * bs * bs;
                for lc in 0..bs {
                    for lr in 0..bs {
                        let v = values[base + lc * bs + lr];
                        if v != 0.0 {
                            coo.push(br * bs + lr, bc * bs + lc, v)
                                .map_err(|e| LisiError::InvalidInput(e.to_string()))?;
                        }
                    }
                }
            }
        }
        Ok(coo.to_csr())
    }

    /// FEM with uniform element arity `block_size`: `columns` =
    /// concatenated connectivity, `values` = concatenated row-major
    /// element matrices.
    fn fem_to_csr(
        &self,
        values: &[f64],
        columns: &[usize],
        offset: usize,
    ) -> LisiResult<CsrMatrix> {
        let (_, _, n) = self.dist_params()?;
        let k = self.block_size;
        if k == 0 || !columns.len().is_multiple_of(k) {
            return Err(LisiError::InvalidInput(format!(
                "FEM connectivity length {} is not a multiple of the element arity {k}",
                columns.len()
            )));
        }
        let n_el = columns.len() / k;
        if values.len() != n_el * k * k {
            return Err(LisiError::InvalidInput(format!(
                "FEM values must hold {} entries ({} elements × {k}²), got {}",
                n_el * k * k,
                n_el,
                values.len()
            )));
        }
        let mut fem = rsparse::FemAssembly::new(n);
        for e in 0..n_el {
            let dofs: Vec<usize> = columns[e * k..(e + 1) * k]
                .iter()
                .map(|&d| sub_offset(d, offset, "dof"))
                .collect::<LisiResult<_>>()?;
            let mat = values[e * k * k..(e + 1) * k * k].to_vec();
            let element = rsparse::fem::Element::new(dofs, mat)
                .map_err(|err| LisiError::InvalidInput(err.to_string()))?;
            fem.add_element(element).map_err(|err| LisiError::InvalidInput(err.to_string()))?;
        }
        Ok(fem.to_csr())
    }

    /// Store the right-hand side(s).
    pub fn ingest_rhs(&mut self, rhs: &[f64], n_rhs: usize) -> LisiResult<()> {
        let (_, local_rows, _) = self.dist_params()?;
        if n_rhs == 0 {
            return Err(LisiError::InvalidInput("nRhs must be positive".into()));
        }
        if rhs.len() != local_rows * n_rhs {
            return Err(LisiError::InvalidInput(format!(
                "RHS must hold local_rows × nRhs = {} entries, got {}",
                local_rows * n_rhs,
                rhs.len()
            )));
        }
        self.rhs = Some(rhs.to_vec());
        self.n_rhs = n_rhs;
        Ok(())
    }

    /// The assembled system, or the phase error.
    pub fn require_system(&self) -> LisiResult<(&CsrMatrix, &[f64])> {
        let m = self
            .matrix
            .as_ref()
            .ok_or_else(|| LisiError::BadPhase("setupMatrix must precede solve".into()))?;
        let b = self
            .rhs
            .as_deref()
            .ok_or_else(|| LisiError::BadPhase("setupRHS must precede solve".into()))?;
        Ok((m, b))
    }

    /// The RHS alone (matrix-free solves have no assembled matrix).
    pub fn require_rhs(&self) -> LisiResult<&[f64]> {
        self.rhs
            .as_deref()
            .ok_or_else(|| LisiError::BadPhase("setupRHS must precede solve".into()))
    }

    /// Validate a caller-provided solution/status buffer pair.
    pub fn check_solve_buffers(&self, solution: &[f64], status: &[f64]) -> LisiResult<()> {
        let (_, local_rows, _) = self.dist_params()?;
        if solution.len() != local_rows * self.n_rhs {
            return Err(LisiError::InvalidInput(format!(
                "solution buffer must hold local_rows × nRhs = {} entries, got {}",
                local_rows * self.n_rhs,
                solution.len()
            )));
        }
        if status.len() < crate::status::STATUS_LEN {
            return Err(LisiError::InvalidInput(format!(
                "status buffer needs at least {} entries, got {}",
                crate::status::STATUS_LEN,
                status.len()
            )));
        }
        Ok(())
    }
}

fn sub_offset(v: usize, offset: usize, what: &str) -> LisiResult<usize> {
    v.checked_sub(offset).ok_or_else(|| {
        LisiError::InvalidInput(format!("{what} index {v} underflows the index base {offset}"))
    })
}

/// MSR (SPARSKIT layout) with *global* column indices, local rows: the
/// diagonal slots `val[0..n]` refer to global columns `start + i`.
fn msr_local_to_csr(
    local_rows: usize,
    global_cols: usize,
    start: usize,
    val: &[f64],
    ja: &[usize],
    offset: usize,
) -> LisiResult<CsrMatrix> {
    let n = local_rows;
    if val.len() != ja.len() || val.len() < n + 1 {
        return Err(LisiError::InvalidInput(format!(
            "MSR arrays must be equal length ≥ n + 1 = {}, got val = {}, ja = {}",
            n + 1,
            val.len(),
            ja.len()
        )));
    }
    let ptr = |i: usize| -> LisiResult<usize> {
        let p = sub_offset(ja[i], offset, "MSR pointer")?;
        if !(n + 1..=val.len()).contains(&p) {
            return Err(LisiError::InvalidInput(format!(
                "MSR pointer {p} out of range [{}..={}]",
                n + 1,
                val.len()
            )));
        }
        Ok(p)
    };
    if ptr(0)? != n + 1 {
        return Err(LisiError::InvalidInput("MSR ja[0] must point just past the diagonal".into()));
    }
    let mut coo = CooMatrix::new(n, global_cols);
    for i in 0..n {
        if val[i] != 0.0 {
            coo.push(i, start + i, val[i])
                .map_err(|e| LisiError::InvalidInput(e.to_string()))?;
        }
        let (lo, hi) = (ptr(i)?, ptr(i + 1)?);
        if hi < lo {
            return Err(LisiError::InvalidInput("MSR pointers must be non-decreasing".into()));
        }
        for k in lo..hi {
            let gc = sub_offset(ja[k], offset, "MSR column")?;
            coo.push(i, gc, val[k]).map_err(|e| LisiError::InvalidInput(e.to_string()))?;
        }
    }
    Ok(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;
    use rsparse::generate;

    fn seeded_state(start: usize, local: usize, global: usize) -> LisiState {
        let mut st = LisiState::new();
        st.start_row = Some(start);
        st.local_rows = Some(local);
        st.global_cols = Some(global);
        st
    }

    #[test]
    fn phase_errors_before_setters() {
        let mut st = LisiState::new();
        assert!(matches!(
            st.ingest_matrix(&[], &[], &[], SparseStruct::Coo, 0),
            Err(LisiError::BadPhase(_))
        ));
        assert!(matches!(st.comm(), Err(LisiError::NotInitialized)));
        assert!(matches!(st.require_system(), Err(LisiError::BadPhase(_))));
    }

    #[test]
    fn coo_ingest_localizes_rows_and_checks_ownership() {
        let mut st = seeded_state(2, 2, 5);
        // Global rows 2 and 3, global columns anywhere.
        st.ingest_matrix(
            &[1.0, 2.0, 3.0],
            &[2, 3, 3],
            &[0, 3, 4],
            SparseStruct::Coo,
            0,
        )
        .unwrap();
        let m = st.matrix.as_ref().unwrap();
        assert_eq!(m.shape(), (2, 5));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 3), 2.0);
        assert_eq!(m.get(1, 4), 3.0);
        assert_eq!(st.matrix_epoch, 1);
        // A row outside [2, 4) is rejected.
        assert!(st
            .ingest_matrix(&[1.0], &[0], &[0], SparseStruct::Coo, 0)
            .is_err());
    }

    #[test]
    fn nnz_declaration_is_enforced() {
        let mut st = seeded_state(0, 2, 2);
        st.local_nnz = Some(3);
        assert!(matches!(
            st.ingest_matrix(&[1.0], &[0], &[0], SparseStruct::Coo, 0),
            Err(LisiError::InvalidInput(_))
        ));
        st.local_nnz = Some(1);
        st.ingest_matrix(&[1.0], &[0], &[0], SparseStruct::Coo, 0).unwrap();
    }

    #[test]
    fn csr_ingest_with_fortran_offset() {
        let mut st = seeded_state(0, 2, 3);
        // 1-based CSR of [[1,0,2],[0,3,0]].
        st.ingest_matrix(
            &[1.0, 2.0, 3.0],
            &[1, 3, 4],
            &[1, 3, 2],
            SparseStruct::Csr,
            1,
        )
        .unwrap();
        let m = st.matrix.as_ref().unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
    }

    #[test]
    fn msr_ingest_maps_diagonal_to_global_start() {
        // Rank owning rows 2..4 of a 4-column problem; MSR block:
        // local row 0: diag 5 at global col 2, off-diag 1 at col 0.
        // local row 1: diag 6 at global col 3.
        let mut st = seeded_state(2, 2, 4);
        let val = [5.0, 6.0, 0.0, 1.0];
        let ja = [3usize, 4, 4, 0];
        st.ingest_matrix(&val, &[], &ja, SparseStruct::Msr, 0).unwrap();
        let m = st.matrix.as_ref().unwrap();
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 3), 6.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn vbr_ingest_respects_block_layout() {
        // 2×2 blocks, local rows 0..2 of a 4-wide matrix, one block at
        // block-column 1: [[1,3],[2,4]] column-major = [1,2,3,4].
        let mut st = seeded_state(0, 2, 4);
        st.block_size = 2;
        st.ingest_matrix(&[1.0, 2.0, 3.0, 4.0], &[0, 1], &[1], SparseStruct::Vbr, 0)
            .unwrap();
        let m = st.matrix.as_ref().unwrap();
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.get(0, 3), 3.0);
        assert_eq!(m.get(1, 3), 4.0);
        // Block size must divide the distribution.
        let mut bad = seeded_state(0, 3, 4);
        bad.block_size = 2;
        assert!(bad
            .ingest_matrix(&[0.0; 4], &[0, 1], &[0], SparseStruct::Vbr, 0)
            .is_err());
    }

    #[test]
    fn fem_ingest_assembles_and_is_serial_only() {
        let mut st = seeded_state(0, 3, 3);
        st.block_size = 2;
        // Two bar elements sharing dof 1, each with matrix [1,-1;-1,1].
        let e = [1.0, -1.0, -1.0, 1.0];
        let values: Vec<f64> = e.iter().chain(e.iter()).copied().collect();
        let conn = [0usize, 1, 1, 2];
        st.ingest_matrix(&values, &[], &conn, SparseStruct::Fem, 0).unwrap();
        let m = st.matrix.as_ref().unwrap();
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), -1.0);
        // Parallel FEM is rejected.
        let mut par = seeded_state(2, 2, 4);
        par.block_size = 2;
        assert!(matches!(
            par.ingest_matrix(&values, &[], &conn, SparseStruct::Fem, 0),
            Err(LisiError::Unsupported(_))
        ));
    }

    #[test]
    fn all_formats_produce_the_same_matrix() {
        // Serial sanity: the same matrix through COO/CSR/MSR/VBR must be
        // identical in CSR form.
        let a = generate::random_diag_dominant(8, 3, 21);
        let nnz = a.nnz();
        let mk = || {
            let mut st = seeded_state(0, 8, 8);
            st.local_nnz = Some(nnz);
            st
        };
        // COO.
        let coo = a.to_coo();
        let (r, c, v) = coo.triplets();
        let mut s1 = mk();
        s1.ingest_matrix(v, r, c, SparseStruct::Coo, 0).unwrap();
        // CSR.
        let mut s2 = mk();
        s2.ingest_matrix(a.values(), a.row_ptr(), a.col_idx(), SparseStruct::Csr, 0)
            .unwrap();
        // MSR.
        let msr = rsparse::MsrMatrix::from_csr(&a).unwrap();
        let (val, ja) = msr.parts();
        let mut s3 = mk();
        s3.local_nnz = None; // MSR carries a padded diagonal
        s3.ingest_matrix(val, &[], ja, SparseStruct::Msr, 0).unwrap();
        // VBR with bs = 2, arrays in the LISI uniform-block convention.
        let bs = 2usize;
        let nbr = 8 / bs;
        let mut bptr = vec![0usize];
        let mut bindx: Vec<usize> = Vec::new();
        let mut bvals: Vec<f64> = Vec::new();
        for br in 0..nbr {
            let mut present: Vec<usize> = Vec::new();
            for lr in 0..bs {
                for &c in a.row(br * bs + lr).0 {
                    if !present.contains(&(c / bs)) {
                        present.push(c / bs);
                    }
                }
            }
            present.sort_unstable();
            for &bc in &present {
                let base = bvals.len();
                bvals.resize(base + bs * bs, 0.0);
                for lr in 0..bs {
                    let (cs, vs) = a.row(br * bs + lr);
                    for (&c, &v) in cs.iter().zip(vs) {
                        if c / bs == bc {
                            bvals[base + (c % bs) * bs + lr] = v;
                        }
                    }
                }
                bindx.push(bc);
            }
            bptr.push(bindx.len());
        }
        let mut s4 = mk();
        s4.local_nnz = None; // VBR pads blocks with zeros
        s4.block_size = bs;
        s4.ingest_matrix(&bvals, &bptr, &bindx, SparseStruct::Vbr, 0).unwrap();

        assert_eq!(s1.matrix, s2.matrix);
        assert_eq!(s1.matrix, s3.matrix);
        assert_eq!(s1.matrix, s4.matrix);
    }

    #[test]
    fn rhs_validation() {
        let mut st = seeded_state(0, 4, 4);
        assert!(st.ingest_rhs(&[1.0; 4], 1).is_ok());
        assert_eq!(st.n_rhs, 1);
        assert!(st.ingest_rhs(&[1.0; 8], 2).is_ok());
        assert_eq!(st.n_rhs, 2);
        assert!(st.ingest_rhs(&[1.0; 3], 1).is_err());
        assert!(st.ingest_rhs(&[], 0).is_err());
    }

    #[test]
    fn solve_buffer_validation() {
        let mut st = seeded_state(0, 4, 4);
        st.ingest_rhs(&[0.0; 4], 1).unwrap();
        use crate::status::STATUS_LEN;
        assert!(st.check_solve_buffers(&[0.0; 4], &[0.0; STATUS_LEN]).is_ok());
        assert!(st.check_solve_buffers(&[0.0; 3], &[0.0; STATUS_LEN]).is_err());
        assert!(st.check_solve_buffers(&[0.0; 4], &[0.0; STATUS_LEN - 1]).is_err());
    }

    #[test]
    fn partition_builds_from_per_rank_declarations() {
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(10, comm.size());
            let mut st = LisiState::new();
            st.comm = Some(comm.dup().unwrap());
            st.start_row = Some(part.start_row(comm.rank()));
            st.local_rows = Some(part.local_rows(comm.rank()));
            st.global_cols = Some(10);
            st.build_partition().unwrap()
        });
        for p in out {
            assert_eq!(p.offsets(), &[0, 4, 7, 10]);
        }
    }

    #[test]
    fn inconsistent_partition_is_rejected() {
        let out = Universe::run(2, |comm| {
            let mut st = LisiState::new();
            st.comm = Some(comm.dup().unwrap());
            // Both ranks claim start 0 — overlapping blocks.
            st.start_row = Some(0);
            st.local_rows = Some(5);
            st.global_cols = Some(10);
            st.build_partition().is_err()
        });
        assert_eq!(out, vec![true, true]);
    }
}
