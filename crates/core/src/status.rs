//! The post-solve status array.
//!
//! The paper (§5.1) flags the post-solve phase as a design question:
//! "how the statistics information gets returned and in what order".
//! LISI's `solve` takes an `inout rarray<double,1> Status(StatusLength)`;
//! this module pins down the layout every adapter writes, so applications
//! can interpret the array without knowing which package ran:
//!
//! | index | meaning |
//! |-------|---------|
//! | 0     | converged flag (1.0 / 0.0) |
//! | 1     | iteration count (direct solvers report 0) |
//! | 2     | final residual norm ‖b − A·x‖₂ (global) |
//! | 3     | setup time in seconds (matrix conversion + factorization/preconditioner) |
//! | 4     | solve time in seconds |
//! | 5     | package-specific reason/diagnostic code |
//! | 6     | solve attempts made (resilient driver; plain adapters write 1) |
//! | 7     | recovery code (0 none needed, 1 retry, 2 backend swap, 3 cohort shrink, −1 exhausted) |
//! | 8     | cohort size after the solve (0 = the cohort never changed) |
//!
//! The layout is append-only: indices 0–5 predate the resilience additions
//! and keep their meaning forever, so status arrays written by older
//! callers parse unchanged.

use crate::error::{LisiError, LisiResult};

/// Required minimum length of the status array.
pub const STATUS_LEN: usize = 9;

/// Index of the converged flag.
pub const STATUS_CONVERGED: usize = 0;
/// Index of the iteration count.
pub const STATUS_ITERATIONS: usize = 1;
/// Index of the final residual norm.
pub const STATUS_RESIDUAL: usize = 2;
/// Index of the setup time (seconds).
pub const STATUS_SETUP_SECONDS: usize = 3;
/// Index of the solve time (seconds).
pub const STATUS_SOLVE_SECONDS: usize = 4;
/// Index of the package-specific reason code.
pub const STATUS_REASON: usize = 5;
/// Index of the attempt count (how many backend solves the resilient
/// driver ran; plain adapters always report 1).
pub const STATUS_ATTEMPTS: usize = 6;
/// Index of the recovery code: 0 = first try succeeded, 1 = recovered by
/// retrying the same backend, 2 = recovered by swapping backends,
/// 3 = recovered by shrinking the cohort around a lost rank,
/// −1 = all attempts exhausted.
pub const STATUS_RECOVERY: usize = 7;
/// Index of the cohort size the solve finished on: 0 when the cohort
/// never changed, otherwise the survivor count after an elastic shrink.
pub const STATUS_COHORT: usize = 8;

/// A typed view of the solve outcome; adapters build one and serialize it
/// into the caller's array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport {
    /// Did the solver converge / complete?
    pub converged: bool,
    /// Iterations used (0 for direct solvers).
    pub iterations: usize,
    /// Final global residual norm.
    pub residual: f64,
    /// Seconds spent in setup (conversion, factorization, preconditioner).
    pub setup_seconds: f64,
    /// Seconds spent in the solve phase.
    pub solve_seconds: f64,
    /// Package-specific reason code.
    pub reason: i32,
    /// Backend solve attempts (1 unless a resilient driver retried).
    pub attempts: usize,
    /// Recovery code (see [`STATUS_RECOVERY`]).
    pub recovery: i32,
    /// Cohort size after the solve (see [`STATUS_COHORT`]; 0 = unchanged).
    pub cohort: usize,
}

impl Default for SolveReport {
    fn default() -> Self {
        SolveReport {
            converged: false,
            iterations: 0,
            residual: 0.0,
            setup_seconds: 0.0,
            solve_seconds: 0.0,
            reason: 0,
            attempts: 1,
            recovery: 0,
            cohort: 0,
        }
    }
}

impl SolveReport {
    /// Write into a caller-provided status array (≥ [`STATUS_LEN`]
    /// entries; extra entries are zeroed).
    ///
    /// # Errors
    ///
    /// Returns [`LisiError::InvalidInput`] when the array is too short —
    /// the caller's buffer is never indexed out of bounds.
    pub fn write_into(&self, status: &mut [f64]) -> LisiResult<()> {
        if status.len() < STATUS_LEN {
            return Err(LisiError::InvalidInput(format!(
                "status array too short: need at least {STATUS_LEN} entries, got {}",
                status.len()
            )));
        }
        status.iter_mut().for_each(|s| *s = 0.0);
        status[STATUS_CONVERGED] = if self.converged { 1.0 } else { 0.0 };
        status[STATUS_ITERATIONS] = self.iterations as f64;
        status[STATUS_RESIDUAL] = self.residual;
        status[STATUS_SETUP_SECONDS] = self.setup_seconds;
        status[STATUS_SOLVE_SECONDS] = self.solve_seconds;
        status[STATUS_REASON] = self.reason as f64;
        status[STATUS_ATTEMPTS] = self.attempts as f64;
        status[STATUS_RECOVERY] = self.recovery as f64;
        status[STATUS_COHORT] = self.cohort as f64;
        Ok(())
    }

    /// Parse a status array back (applications and tests). Arrays written
    /// before the attempts/recovery columns existed parse with
    /// `attempts = 1, recovery = 0`.
    pub fn from_slice(status: &[f64]) -> SolveReport {
        SolveReport {
            converged: status.first().copied().unwrap_or(0.0) != 0.0,
            iterations: status.get(STATUS_ITERATIONS).copied().unwrap_or(0.0) as usize,
            residual: status.get(STATUS_RESIDUAL).copied().unwrap_or(f64::NAN),
            setup_seconds: status.get(STATUS_SETUP_SECONDS).copied().unwrap_or(0.0),
            solve_seconds: status.get(STATUS_SOLVE_SECONDS).copied().unwrap_or(0.0),
            reason: status.get(STATUS_REASON).copied().unwrap_or(0.0) as i32,
            attempts: status.get(STATUS_ATTEMPTS).copied().unwrap_or(1.0) as usize,
            recovery: status.get(STATUS_RECOVERY).copied().unwrap_or(0.0) as i32,
            cohort: status.get(STATUS_COHORT).copied().unwrap_or(0.0) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_array() {
        let rep = SolveReport {
            converged: true,
            iterations: 42,
            residual: 1.5e-9,
            setup_seconds: 0.25,
            solve_seconds: 1.75,
            reason: 7,
            attempts: 3,
            recovery: 2,
            cohort: 3,
        };
        let mut arr = [9.0; STATUS_LEN + 2];
        rep.write_into(&mut arr).unwrap();
        assert_eq!(arr[STATUS_CONVERGED], 1.0);
        assert_eq!(arr[STATUS_ITERATIONS], 42.0);
        assert_eq!(arr[STATUS_ATTEMPTS], 3.0);
        assert_eq!(arr[STATUS_RECOVERY], 2.0);
        assert_eq!(arr[STATUS_COHORT], 3.0);
        assert_eq!(arr[STATUS_LEN], 0.0, "extra entries are zeroed");
        let back = SolveReport::from_slice(&arr);
        assert_eq!(back, rep);
    }

    #[test]
    fn nonconvergence_is_zero_flag() {
        let rep = SolveReport { converged: false, ..Default::default() };
        let mut arr = [0.0; STATUS_LEN];
        rep.write_into(&mut arr).unwrap();
        assert_eq!(arr[STATUS_CONVERGED], 0.0);
        assert!(!SolveReport::from_slice(&arr).converged);
    }

    #[test]
    fn short_array_is_a_typed_error_not_a_panic() {
        let rep = SolveReport::default();
        let mut short = [0.0; STATUS_LEN - 1];
        let err = rep.write_into(&mut short).unwrap_err();
        assert!(matches!(err, LisiError::InvalidInput(_)));
        assert!(err.to_string().contains("status array too short"));
    }

    #[test]
    fn legacy_six_entry_arrays_parse_with_defaults() {
        // A pre-resilience status array (indices 0–5 only).
        let legacy = [1.0, 10.0, 1e-9, 0.1, 0.2, 1.0];
        let rep = SolveReport::from_slice(&legacy);
        assert!(rep.converged);
        assert_eq!(rep.attempts, 1);
        assert_eq!(rep.recovery, 0);
        assert_eq!(rep.cohort, 0, "pre-elastic arrays parse as cohort-unchanged");
    }
}
