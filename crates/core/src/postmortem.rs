//! Failure postmortems: the flight recorder's black-box dump.
//!
//! When a resilient solve ends badly — every retry exhausted — or ends
//! well only after a recovery, each rank snapshots its flight-recorder
//! tail (see `probe::flight`), its residual history and its non-zero
//! counters into a JSON fragment; the fragments are gathered onto rank 0
//! over the driver's own communicator and written as **one** structured
//! `postmortem.json` for the whole cohort. The document records what the
//! cohort was doing in its final moments: the trigger, the active fault
//! plan and which rules actually fired, the recovery path the driver
//! walked, and the last-N timestamped events of every rank.
//!
//! Gather protocol: the fragments travel over the *original* driver
//! communicator (never a per-attempt `dup()` — under rank-divergent
//! failures the dup counters themselves diverge, and a context-mismatched
//! collective would hang). The driver runs no other collectives on that
//! communicator, so the gather is context-clean whenever the cohort
//! reaches the postmortem in lockstep. If ranks diverge instead (one
//! exhausts while its peers recover), the deadlock watchdog converts the
//! lonely gather into an error within `RCOMM_DEADLOCK_TIMEOUT_SECS`, and
//! the writing rank falls back to a process-local registry snapshot
//! ([`probe::flight::tails_by_rank`]) — ranks are threads of one
//! process, so the fallback still captures every rank's tail.
//!
//! The path defaults to `postmortem.json` in the working directory;
//! `RSPARSE_POSTMORTEM=off|0|none|false` disables the dump entirely and
//! any other non-empty value overrides the path.

use std::path::PathBuf;

use probe::flight;
use rcomm::Communicator;

use crate::status::SolveReport;

/// Schema tag stamped into every postmortem document.
pub const SCHEMA: &str = "lisi-postmortem-v1";

/// Default output path (relative to the working directory).
pub const DEFAULT_PATH: &str = "postmortem.json";

/// Resolve the postmortem destination from `RSPARSE_POSTMORTEM`:
/// `None` when dumps are disabled, otherwise the target path.
pub fn path() -> Option<PathBuf> {
    match std::env::var("RSPARSE_POSTMORTEM") {
        Ok(v) => {
            let v = v.trim().to_string();
            if v.is_empty() {
                return Some(PathBuf::from(DEFAULT_PATH));
            }
            match v.to_ascii_lowercase().as_str() {
                "off" | "0" | "none" | "false" => None,
                _ => Some(PathBuf::from(v)),
            }
        }
        Err(_) => Some(PathBuf::from(DEFAULT_PATH)),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON number for an `f64` (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn report_json(report: &SolveReport) -> String {
    format!(
        "{{\"converged\":{},\"iterations\":{},\"residual\":{},\"setup_seconds\":{},\
         \"solve_seconds\":{},\"reason\":{},\"attempts\":{},\"recovery\":{},\"cohort\":{}}}",
        report.converged,
        report.iterations,
        json_f64(report.residual),
        json_f64(report.setup_seconds),
        json_f64(report.solve_seconds),
        report.reason,
        report.attempts,
        report.recovery,
        report.cohort,
    )
}

/// What an elastic shrink did to the cohort — stamped into the
/// postmortem as the `cohort_change` object so a dump of a survived
/// rank loss names the casualty, the survivor remapping and where the
/// restarted solve picked up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortChange {
    /// World rank that was declared lost.
    pub lost_rank: usize,
    /// Cohort size before the shrink.
    pub old_size: usize,
    /// Cohort size after the shrink.
    pub new_size: usize,
    /// Surviving world ranks in new-rank order: `survivors[new]` is the
    /// world rank now serving dense rank `new`.
    pub survivors: Vec<usize>,
    /// Checkpoint iteration the solve resumed from (0 = restarted from
    /// the caller's initial guess; no consistent checkpoint existed).
    pub resumed_iteration: usize,
}

impl CohortChange {
    fn json(&self) -> String {
        let survivors: Vec<String> =
            self.survivors.iter().map(|r| r.to_string()).collect();
        format!(
            "{{\"lost_rank\":{},\"old_size\":{},\"new_size\":{},\
             \"survivors\":[{}],\"resumed_iteration\":{}}}",
            self.lost_rank,
            self.old_size,
            self.new_size,
            survivors.join(","),
            self.resumed_iteration,
        )
    }
}

fn counters_json(report: &probe::RankReport) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for c in probe::Counter::ALL {
        let v = report.counter(c);
        if v == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{v}", c.name()));
    }
    out.push('}');
    out
}

fn notes_json(report: &probe::RankReport) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in report.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    out.push('}');
    out
}

fn residuals_json(history: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, r) in history.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(*r));
    }
    out.push(']');
    out
}

/// One rank's contribution: its tail, residual history, counters and
/// notes (e.g. the chosen SpMV format).
fn rank_fragment(rank: usize) -> String {
    let (tail, total) = flight::local_tail();
    let report = probe::local_report();
    format!(
        "{{\"rank\":{rank},\"events_recorded\":{total},\"counters\":{},\
         \"notes\":{},\"residual_history\":{},\"events\":{}}}",
        counters_json(&report),
        notes_json(&report),
        residuals_json(&flight::local_residual_history()),
        flight::tail_json(&tail),
    )
}

/// Fallback fragments from the process-wide recorder registry, used when
/// the cohort gather cannot complete (rank-divergent termination).
fn registry_fragments() -> Vec<String> {
    flight::tails_by_rank()
        .into_iter()
        .map(|(rank, tail)| {
            let rank =
                rank.map(|r| r.to_string()).unwrap_or_else(|| "null".into());
            format!(
                "{{\"rank\":{rank},\"events_recorded\":{},\"counters\":{{}},\
                 \"notes\":{{}},\"residual_history\":[],\"events\":{}}}",
                tail.len(),
                flight::tail_json(&tail),
            )
        })
        .collect()
}

/// Assemble the full postmortem document from its pieces. Public so
/// schema-conformance tests can build a document without staging a
/// whole failed cohort; applications should go through
/// [`write_cohort`].
#[allow(clippy::too_many_arguments)] // one positional arg per document section
pub fn assemble(
    trigger: &str,
    ranks: usize,
    policy_spec: &str,
    recovery_path: &[String],
    report: &SolveReport,
    cohort_change: Option<&CohortChange>,
    gathered: &str,
    fragments: &[String],
) -> String {
    let fault_plan = rcomm::fault::active_plan()
        .map(|p| format!("\"{}\"", json_escape(&p.spec())))
        .unwrap_or_else(|| "null".into());
    let fired: Vec<String> =
        rcomm::fault::fired_rule_ids().iter().map(|i| i.to_string()).collect();
    let path: Vec<String> = recovery_path
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    let cohort_change =
        cohort_change.map(|c| c.json()).unwrap_or_else(|| "null".into());
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"trigger\": \"{}\",\n  \"ranks\": {ranks},\n  \
         \"gathered\": \"{gathered}\",\n  \"policy\": \"{}\",\n  \"recovery_path\": [{}],\n  \
         \"fault_plan\": {fault_plan},\n  \"fault_rules_fired\": [{}],\n  \"report\": {},\n  \
         \"cohort_change\": {cohort_change},\n  \
         \"critical_path\": {},\n  \
         \"ledger\": {},\n  \
         \"rank_tails\": [\n    {}\n  ]\n}}\n",
        json_escape(trigger),
        json_escape(policy_spec),
        path.join(", "),
        fired.join(", "),
        report_json(report),
        probe::critpath::latest_json(),
        probe::ledger::latest_json(),
        fragments.join(",\n    "),
    )
}

/// Pick a destination that does not clobber an earlier postmortem from
/// this process: the first dump for a given configured path uses the path
/// as-is, later ones insert a monotonic sequence before the extension
/// (`postmortem.json`, `postmortem.1.json`, `postmortem.2.json`, …).
/// The counter is per-path so tests pointing `RSPARSE_POSTMORTEM` at
/// distinct temp files stay independent.
fn sequenced_dest(base: &std::path::Path) -> PathBuf {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    static SEQ: Mutex<BTreeMap<PathBuf, u64>> = Mutex::new(BTreeMap::new());
    let mut seq = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let n = seq.entry(base.to_path_buf()).or_insert(0);
    let dest = if *n == 0 {
        base.to_path_buf()
    } else {
        match base.extension().and_then(|e| e.to_str()) {
            Some(ext) => base.with_extension(format!("{n}.{ext}")),
            None => {
                let mut name = base.as_os_str().to_os_string();
                name.push(format!(".{n}"));
                PathBuf::from(name)
            }
        }
    };
    *n += 1;
    dest
}

/// Gather every rank's flight-recorder tail and write the cohort's
/// postmortem document.
///
/// Call this from every rank that reached the trigger; rank 0 (or, on a
/// failed gather, whichever rank fell back to the registry snapshot)
/// writes the file. Returns the path written by *this* rank, `None` when
/// this rank was a non-root contributor or dumps are disabled. I/O and
/// gather failures degrade — the postmortem is diagnostics, it must
/// never turn a structured solve verdict into a crash.
pub fn write_cohort(
    comm: &Communicator,
    trigger: &str,
    report: &SolveReport,
    policy_spec: &str,
    recovery_path: &[String],
    cohort_change: Option<&CohortChange>,
) -> Option<PathBuf> {
    let base = path()?;
    let ranks = comm.size();
    let doc = match comm.gather(0, rank_fragment(comm.rank())) {
        Ok(Some(fragments)) => assemble(
            trigger,
            ranks,
            policy_spec,
            recovery_path,
            report,
            cohort_change,
            "cohort",
            &fragments,
        ),
        Ok(None) => return None, // non-root: rank 0 writes
        Err(_) => {
            // Divergent cohort: the gather could not complete. Snapshot
            // the registry instead — same process, every tail is local.
            let fragments = registry_fragments();
            assemble(
                trigger,
                ranks,
                policy_spec,
                recovery_path,
                report,
                cohort_change,
                "registry",
                &fragments,
            )
        }
    };
    // Advance the sequence only on the rank that writes, so non-root
    // contributors (which return above) never consume a slot.
    let dest = sequenced_dest(&base);
    match std::fs::write(&dest, doc) {
        Ok(()) => {
            probe::emit_jsonl(&format!(
                "{{\"event\":\"postmortem\",\"trigger\":\"{}\",\"path\":\"{}\"}}",
                json_escape(trigger),
                json_escape(&dest.display().to_string()),
            ));
            Some(dest)
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_quotes_and_control_bytes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
        let rep = SolveReport { residual: f64::NAN, ..SolveReport::default() };
        assert!(report_json(&rep).contains("\"residual\":null"));
    }

    #[test]
    fn sequenced_destinations_never_repeat() {
        let base = PathBuf::from("/tmp/lisi-test-seq/pm.json");
        assert_eq!(sequenced_dest(&base), base);
        assert_eq!(sequenced_dest(&base), PathBuf::from("/tmp/lisi-test-seq/pm.1.json"));
        assert_eq!(sequenced_dest(&base), PathBuf::from("/tmp/lisi-test-seq/pm.2.json"));
        // Extension-less paths get a plain numeric suffix.
        let bare = PathBuf::from("/tmp/lisi-test-seq/pm-bare");
        assert_eq!(sequenced_dest(&bare), bare);
        assert_eq!(sequenced_dest(&bare), PathBuf::from("/tmp/lisi-test-seq/pm-bare.1"));
        // Distinct configured paths keep independent counters.
        let other = PathBuf::from("/tmp/lisi-test-seq/other.json");
        assert_eq!(sequenced_dest(&other), other);
    }

    #[test]
    fn assembled_document_is_balanced_json_with_the_schema_tag() {
        let rep = SolveReport { converged: false, attempts: 3, recovery: -1, ..Default::default() };
        let doc = assemble(
            "exhausted",
            2,
            "cg:solver=cg -> lu",
            &["cg#1: swap: boom".into(), "lu#2: exhausted: boom".into()],
            &rep,
            None,
            "cohort",
            &["{\"rank\":0}".into(), "{\"rank\":1}".into()],
        );
        assert!(doc.contains("\"schema\": \"lisi-postmortem-v1\""));
        assert!(doc.contains("\"trigger\": \"exhausted\""));
        assert!(doc.contains("\"rank\":1"));
        assert!(doc.contains("\"cohort_change\": null"));
        let depth = doc.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "braces/brackets balance");
    }

    #[test]
    fn cohort_change_serializes_the_survivor_mapping() {
        let change = CohortChange {
            lost_rank: 2,
            old_size: 4,
            new_size: 3,
            survivors: vec![0, 1, 3],
            resumed_iteration: 20,
        };
        let rep = SolveReport { converged: true, recovery: 3, cohort: 3, ..Default::default() };
        let doc = assemble(
            "recovered",
            4,
            "rksp:solver=cg",
            &["rksp#2: shrink: rank 2 lost from cohort".into()],
            &rep,
            Some(&change),
            "cohort",
            &["{\"rank\":0}".into()],
        );
        assert!(doc.contains(
            "\"cohort_change\": {\"lost_rank\":2,\"old_size\":4,\"new_size\":3,\
             \"survivors\":[0,1,3],\"resumed_iteration\":20}"
        ));
        assert!(doc.contains("\"cohort\":3"));
        let depth = doc.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "braces/brackets balance");
    }
}
