//! `lisi` — the LInear Solver Interface: the CCA-LISI paper's primary
//! contribution, in Rust.
//!
//! LISI is a single, minimal interface spanning parallel sparse linear
//! solver packages, designed so an application can switch solvers without
//! touching its own code (paper §1–2). This crate provides:
//!
//! * [`SparseSolverPort`] — the `lisi.SparseSolver` interface from the
//!   paper's SIDL listing (§7.2), method for method: block-row
//!   distribution setters, three `setupMatrix` overloads accepting
//!   COO/CSR/MSR/VBR/FEM input ([`SparseStruct`]) at any index base,
//!   `setupRHS` with multi-RHS support, `solve` returning the solution
//!   and a typed status array ([`status`]), and the generic
//!   string-keyed parameter setters of design decision §6.5;
//! * [`MatrixFreePort`] — the `lisi.MatrixFree` application-side port
//!   (operator and preconditioner application, selected by
//!   [`OperatorId`]);
//! * [`adapters`] — one adapter per underlying package: RKSP
//!   (PETSc-like), RAztec (Trilinos-like), RSLU (SuperLU-like) and RMG
//!   (multigrid). Each converts the incoming arrays to its package's
//!   native structures and maps the generic parameters onto the package's
//!   own configuration surface — the "adapter" role of paper §7.2;
//! * [`components`] — CCA components wrapping the adapters (provides port
//!   `"lisi-solver"` of SIDL type `lisi.SparseSolver`, optional uses port
//!   `"matrix-free"` of type `lisi.MatrixFree`), ready for a
//!   [`cca::Framework`] and dynamic switching (paper Figure 4);
//! * conformance tests asserting the Rust traits implement every method
//!   of the embedded SIDL specification.

#![warn(missing_docs)]

pub mod adapters;
pub mod components;
pub mod error;
pub mod ledger;
pub mod postmortem;
pub mod resilient;
pub mod service;
pub mod state;
pub mod status;
pub mod traits;
pub mod types;

pub use adapters::{RaztecAdapter, RkspAdapter, RmgAdapter, RsluAdapter};
pub use components::{
    MatrixFreeComponent, SolverComponent, MATRIX_FREE_PORT, SOLVER_PORT, SOLVER_PORT_TYPE,
};
pub use error::{LisiError, LisiResult};
pub use postmortem::CohortChange;
pub use service::{SessionKey, SessionTicket, SolverService};
pub use resilient::{
    AttemptSpec, BackendSwitch, FrameworkSwitch, ResilientSolver, ResilientSolverComponent,
    RetryPolicy, StaticSwitch, BACKEND_PORT,
};
pub use status::{SolveReport, STATUS_LEN};
pub use traits::{MatrixFreePort, SparseSolverPort};
pub use types::{OperatorId, SparseStruct};
