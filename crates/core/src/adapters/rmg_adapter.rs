//! The RMG (multigrid) adapter — the multilevel member of the family
//! (paper §2.2 "multilevel method support"). The operator must be a
//! square-grid discretization (`global_cols = m²`); the hierarchy is
//! rebuilt per matrix epoch. The coarse solver is pluggable, which is how
//! the recursion demo (`examples/multigrid_recursion.rs`) nests one LISI
//! solver inside another (paper §5.2e).

use std::sync::Arc;

use parking_lot::Mutex;
use rmg::{CoarseOperator, CoarseSolver, CycleType, Hierarchy, MgConfig, RmgSolver, Smoother};
use rsparse::CsrMatrix;

use crate::error::{LisiError, LisiResult};
use crate::service::{self, SolverService};
use crate::state::LisiState;
use crate::status::SolveReport;
use crate::traits::SparseSolverPort;

/// Session-cached setup: the partition and, on rank 0, the prebuilt
/// multigrid hierarchy (the Galerkin coarse operators are by far the
/// expensive part of RMG setup). The hierarchy is independent of the
/// pluggable coarse-grid *solver*, which binds per solve via
/// [`MgConfig`], so caching it is safe even across instances with
/// different coarse callbacks.
struct RmgArtifact {
    partition: rsparse::BlockRowPartition,
    hierarchy: Option<Hierarchy>,
}

/// Signature of a pluggable coarse-grid solver.
pub type CoarseFn =
    dyn Fn(&CsrMatrix, &[f64]) -> Result<Vec<f64>, String> + Send + Sync + 'static;

/// LISI over the RMG geometric multigrid package.
#[derive(Default)]
pub struct RmgAdapter {
    state: Mutex<LisiState>,
    coarse: Mutex<Option<Arc<CoarseFn>>>,
}

super::lisi_adapter_boilerplate!(RmgAdapter);

impl RmgAdapter {
    const PACKAGE_NAME: &'static str = "rmg";

    /// Plug a coarse-grid solver callback (e.g. another LISI solver —
    /// recursion through the interface).
    pub fn set_coarse_solver(
        &self,
        f: impl Fn(&CsrMatrix, &[f64]) -> Result<Vec<f64>, String> + Send + Sync + 'static,
    ) {
        *self.coarse.lock() = Some(Arc::new(f));
    }

    fn mg_config(state: &LisiState, coarse: Option<Arc<CoarseFn>>) -> LisiResult<MgConfig> {
        let mut cfg = MgConfig::default();
        if let Some(c) = state.options.get("cycle") {
            cfg.cycle = match c.to_ascii_lowercase().as_str() {
                "v" => CycleType::V,
                "w" => CycleType::W,
                other => {
                    return Err(LisiError::BadParameter {
                        key: "cycle".into(),
                        reason: other.into(),
                    })
                }
            };
        }
        if let Some(s) = state.options.get("smoother") {
            cfg.smoother = match s.to_ascii_lowercase().as_str() {
                "jacobi" => Smoother::Jacobi {
                    omega: state.options.get_parsed::<f64>("omega").unwrap_or(0.8),
                },
                "gs" | "gauss_seidel" => Smoother::GaussSeidel,
                "sgs" | "sym_gs" => Smoother::SymGaussSeidel,
                other => {
                    return Err(LisiError::BadParameter {
                        key: "smoother".into(),
                        reason: other.into(),
                    })
                }
            };
        }
        if let Some(n) = state.options.get_parsed::<usize>("nu1") {
            cfg.nu1 = n;
        }
        if let Some(n) = state.options.get_parsed::<usize>("nu2") {
            cfg.nu2 = n;
        }
        if let Some(t) = state.options.get_first(&["tol", "rtol"]) {
            cfg.rtol = t
                .parse()
                .map_err(|_| LisiError::BadParameter { key: "tol".into(), reason: t.clone() })?;
        }
        if let Some(m) = state.options.get_first(&["maxits", "max_cycles"]) {
            cfg.max_cycles = m.parse().map_err(|_| LisiError::BadParameter {
                key: "maxits".into(),
                reason: m.clone(),
            })?;
        }
        if let Some(f) = coarse {
            cfg.coarse = CoarseSolver::Callback(Box::new(move |a, b| f(a, b)));
        }
        Ok(cfg)
    }

    /// Multi-RHS entry point: the hierarchy is shared across all columns
    /// either way; this delegates to the common path and records the
    /// batch in the probe counters.
    pub fn solve_batch(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, true)
    }

    fn solve_impl(
        &self,
        solution: &mut [f64],
        status: &mut [f64],
        force_batch: bool,
    ) -> LisiResult<()> {
        let st = self.state.lock();
        st.check_solve_buffers(solution, status)?;
        if super::matrix_free_requested(&st) {
            return Err(LisiError::Unsupported(
                "RMG builds Galerkin coarse operators and needs assembled entries".into(),
            ));
        }
        crate::ledger::arm();
        let comm = st.comm()?;
        let rank = comm.rank();
        let n = st.global_cols.unwrap_or(0);
        let m = (n as f64).sqrt().round() as usize;
        if m * m != n {
            return Err(LisiError::Unsupported(format!(
                "RMG requires a square-grid operator; {n} is not a perfect square"
            )));
        }

        // Admission, then the cohort-agreed warm/cold branch (see the
        // RKSP adapter for the full rationale).
        let svc = SolverService::global();
        let ticket = svc.admit();
        let admitted = comm.allgather(ticket.is_ok())?.into_iter().all(|ok| ok);
        if !admitted {
            return Err(ticket.err().unwrap_or_else(|| {
                LisiError::Busy("a peer rank was refused admission".into())
            }));
        }
        let _ticket = ticket.expect("cohort agreed all ranks were admitted");

        let (matrix, _) = st.require_system()?;
        let key = service::SessionKey {
            backend: Self::PACKAGE_NAME,
            rank,
            size: comm.size(),
            fingerprint: service::fingerprint(
                rank,
                comm.size(),
                st.start_row.unwrap_or(0),
                n,
                matrix.row_ptr(),
                matrix.col_idx(),
                matrix.values(),
                &st.options.dump(),
            ),
        };
        let hit = svc.lookup::<RmgArtifact>(&key);
        let warm = comm.allgather(hit.is_some())?.into_iter().all(|h| h);
        svc.record_outcome(warm);
        let (artifact, setup_seconds) = if warm {
            (hit.expect("cohort agreed every rank hit"), 0.0)
        } else {
            // Cold: gather the system to rank 0 (multigrid here is the
            // serial member of the family; see DESIGN.md) and build the
            // hierarchy once — previously rebuilt per right-hand side,
            // now amortized across every column and every warm solve.
            let setup_t = probe::SectionTimer::start("lisi_setup");
            let partition = st.build_partition()?;
            let dist = rsparse::DistCsrMatrix::from_local_rows(
                comm,
                partition.clone(),
                matrix.clone(),
            )?;
            let global = dist.gather_to_root(comm, 0)?;
            let hierarchy = match &global {
                Some(a) => Some(
                    Hierarchy::build(a.clone(), m, CoarseOperator::Galerkin, 20, 1, None)
                        .map_err(LisiError::from)?,
                ),
                None => None,
            };
            // The hierarchy's coarse operators sum to O(nnz) ×
            // levels; bill rank 0 for the gathered footprint.
            let bytes = if rank == 0 {
                service::approx_csr_bytes(matrix.nnz().saturating_mul(comm.size()), n)
            } else {
                service::approx_csr_bytes(matrix.nnz(), partition.local_rows(rank))
            };
            let artifact = Arc::new(RmgArtifact { partition, hierarchy });
            svc.insert(key, Arc::clone(&artifact) as Arc<_>, bytes);
            (artifact, setup_t.stop())
        };
        let partition = artifact.partition.clone();
        let local_rows = partition.local_rows(rank);

        let rhs = st.require_rhs()?;
        let n_rhs = st.n_rhs;
        let batch_width: usize =
            st.options.get("nrhs").and_then(|v| v.parse().ok()).unwrap_or(1);
        if (force_batch || batch_width >= 2) && n_rhs >= 1 {
            probe::add(probe::Counter::RhsBatched, n_rhs as u64);
            probe::note("batch", format!("nrhs={n_rhs}"));
        }
        let coarse = self.coarse.lock().clone();
        let solve_t = probe::SectionTimer::start("lisi_solve");
        let mut report = SolveReport {
            converged: true,
            setup_seconds: setup_seconds + st.convert_seconds,
            reason: 1,
            ..Default::default()
        };
        for k in 0..n_rhs {
            let b_local = &rhs[k * local_rows..(k + 1) * local_rows];
            let b_full = comm.gatherv(0, b_local)?;
            let x0_local = &solution[k * local_rows..(k + 1) * local_rows];
            let x0_full = comm.gatherv(0, x0_local)?;
            // Rank 0 runs the cycle; outcome (solution + stats) scatters.
            let root_out: Option<(Vec<Vec<f64>>, usize, bool, f64)> = if comm.rank() == 0 {
                let cfg = Self::mg_config(&st, coarse.clone())?;
                let hierarchy =
                    artifact.hierarchy.clone().expect("root holds the cached hierarchy");
                let solver = RmgSolver::new(hierarchy, cfg).map_err(LisiError::from)?;
                let mut x = x0_full.expect("root gathered the guess");
                let res = solver.solve(&b_full.expect("root gathered rhs"), &mut x)
                    .map_err(LisiError::from)?;
                let chunks =
                    (0..comm.size()).map(|r| x[partition.range(r)].to_vec()).collect();
                Some((
                    chunks,
                    res.cycles,
                    res.converged,
                    res.relative_residual,
                ))
            } else {
                None
            };
            // Share stats, scatter solution.
            let stats = comm.bcast(
                0,
                root_out
                    .as_ref()
                    .map(|(_, c, ok, r)| (*c, *ok, *r))
                    .unwrap_or((0, false, 0.0)),
            )?;
            let mine = comm.scatter(0, root_out.map(|(chunks, _, _, _)| chunks))?;
            solution[k * local_rows..(k + 1) * local_rows].copy_from_slice(&mine);
            let (cycles, ok, rel) = stats;
            report.converged &= ok;
            report.iterations = report.iterations.max(cycles);
            report.residual = report.residual.max(rel);
            if !ok {
                report.reason = -1;
            }
        }
        report.solve_seconds = solve_t.stop();
        crate::ledger::emit(
            comm,
            &crate::ledger::SolveInfo {
                backend: Self::PACKAGE_NAME,
                report: &report,
                ksp: Some("multigrid".into()),
                pc: st.options.get("smoother"),
                rtol: st
                    .options
                    .get_first(&["tol", "rtol"])
                    .and_then(|v| v.parse().ok()),
                cond_estimate: None,
                initial_residual: None,
            },
        );
        report.write_into(status)?;
        if report.converged {
            Ok(())
        } else {
            Err(LisiError::Package("RMG did not converge".into()))
        }
    }
}

impl SparseSolverPort for RmgAdapter {
    super::lisi_common_methods!();

    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{SolveReport, STATUS_LEN};
    use rcomm::Universe;
    use rsparse::BlockRowPartition;

    fn poisson_via_rmg(p: usize, m: usize, opts: &[(&str, &str)]) -> (SolveReport, f64) {
        let a = rsparse::generate::laplacian_2d(m);
        let n = m * m;
        let x_true = rsparse::generate::random_vector(n, 5);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(p, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let range = part.range(comm.rank());
            let local = a.row_block(range.start, range.end).unwrap();
            let solver = RmgAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(range.start).unwrap();
            solver.set_local_rows(range.len()).unwrap();
            solver.set_global_cols(n).unwrap();
            for (k, v) in opts {
                solver.set(k, v).unwrap();
            }
            solver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            solver.setup_rhs(&b[range.clone()], 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
        });
        let (rep, full) = &out[0];
        let err = full
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |mx, (g, e)| mx.max((g - e).abs()));
        (*rep, err)
    }

    #[test]
    fn solves_poisson_with_grid_independent_cycles() {
        let (rep7, err7) = poisson_via_rmg(1, 7, &[("tol", "1e-9")]);
        let (rep15, err15) = poisson_via_rmg(1, 15, &[("tol", "1e-9")]);
        assert!(rep7.converged && rep15.converged);
        assert!(err7 < 1e-6 && err15 < 1e-6);
        assert!(rep15.iterations <= rep7.iterations + 3, "mesh-independent cycle count");
    }

    #[test]
    fn parallel_gather_solve_scatter_works() {
        let (rep, err) = poisson_via_rmg(3, 15, &[("tol", "1e-9"), ("cycle", "w")]);
        assert!(rep.converged);
        assert!(err < 1e-6, "err = {err}");
    }

    #[test]
    fn smoother_and_cycle_options_are_validated() {
        let st = LisiState {
            options: {
                let mut o = rkrylov::Options::new();
                o.set("cycle", "x");
                o
            },
            ..LisiState::default()
        };
        assert!(RmgAdapter::mg_config(&st, None).is_err());
        let st2 = LisiState {
            options: {
                let mut o = rkrylov::Options::new();
                o.set("smoother", "magic");
                o
            },
            ..LisiState::default()
        };
        assert!(RmgAdapter::mg_config(&st2, None).is_err());
        let st3 = LisiState {
            options: {
                let mut o = rkrylov::Options::new();
                o.set("cycle", "W");
                o.set("smoother", "sgs");
                o.set_int("nu1", 1);
                o.set_int("nu2", 3);
                o
            },
            ..LisiState::default()
        };
        let cfg = RmgAdapter::mg_config(&st3, None).unwrap();
        assert_eq!(cfg.cycle, CycleType::W);
        assert_eq!(cfg.nu1, 1);
        assert_eq!(cfg.nu2, 3);
    }

    #[test]
    fn non_square_grid_is_unsupported() {
        let out = Universe::run(1, |comm| {
            let solver = RmgAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(12).unwrap();
            solver.set_global_cols(12).unwrap();
            let a = rsparse::generate::laplacian_1d(12);
            solver
                .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), crate::SparseStruct::Csr)
                .unwrap();
            solver.setup_rhs(&[1.0; 12], 1).unwrap();
            let mut x = vec![0.0; 12];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap_err()
        });
        assert!(matches!(&out[0], LisiError::Unsupported(_)));
    }

    #[test]
    fn pluggable_coarse_solver_is_called() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let a = rsparse::generate::laplacian_2d(7);
        let n = 49;
        let b = a.matvec(&vec![1.0; n]).unwrap();
        let out = Universe::run(1, move |comm| {
            let solver = RmgAdapter::new();
            let h = Arc::clone(&hits2);
            solver.set_coarse_solver(move |a, b| {
                h.fetch_add(1, Ordering::Relaxed);
                a.to_dense().solve(b).map_err(|e| e.to_string())
            });
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(n).unwrap();
            solver.set_global_cols(n).unwrap();
            solver
                .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), crate::SparseStruct::Csr)
                .unwrap();
            solver.setup_rhs(&b, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap();
            SolveReport::from_slice(&s).converged
        });
        assert!(out[0]);
        assert!(hits.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }
}
