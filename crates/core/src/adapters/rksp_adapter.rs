//! The RKSP (PETSc-like) adapter — the reference LISI implementation,
//! including the matrix-free path through the `lisi.MatrixFree` port.

use std::sync::Arc;

use parking_lot::Mutex;
use rcomm::Communicator;
use rkrylov::{Ksp, KspConfig, LinearOperator, MatOperator, Preconditioner, ShellOperator};
use rsparse::{DistCsrMatrix, DistVector};

use crate::error::{LisiError, LisiResult};
use crate::service::{self, SolverService};
use crate::state::LisiState;
use crate::status::SolveReport;
use crate::traits::{MatrixFreePort, SparseSolverPort};
use crate::types::OperatorId;

/// Setup artifacts cached in the process-wide [`SolverService`]: a
/// second solve of a fingerprint-identical system (same pattern, same
/// value bits, same options, same distribution) reuses all three and
/// performs *zero* setup — no partition allgather, no halo plan, no
/// format conversion, no preconditioner factorization (paper §5.2 b/c,
/// extended across component instances).
struct RkspArtifact {
    partition: rsparse::BlockRowPartition,
    operator: Arc<MatOperator>,
    pc: Arc<dyn Preconditioner>,
}

/// LISI over the RKSP iterative package.
#[derive(Default)]
pub struct RkspAdapter {
    state: Mutex<LisiState>,
}

super::lisi_adapter_boilerplate!(RkspAdapter);

impl RkspAdapter {
    const PACKAGE_NAME: &'static str = "rksp";

    /// The preconditioner that forwards to the application's
    /// `MatrixFree` port with `ID = PRECONDITIONER`.
    fn matrix_free_pc(port: Arc<dyn MatrixFreePort>) -> Arc<dyn Preconditioner> {
        struct MfPc {
            port: Arc<dyn MatrixFreePort>,
        }
        impl Preconditioner for MfPc {
            fn apply(
                &self,
                _comm: &Communicator,
                r: &DistVector,
                z: &mut DistVector,
            ) -> Result<(), rkrylov::KspError> {
                self.port
                    .mat_mult(OperatorId::Preconditioner, r.local(), z.local_mut())
                    .map_err(|e| rkrylov::KspError::Nonconforming(e.to_string()))
            }
            fn name(&self) -> &'static str {
                "matrix-free"
            }
        }
        Arc::new(MfPc { port })
    }

    /// Solve all right-hand-side columns through the batched Krylov
    /// drivers regardless of the `nrhs` option — the explicit multi-RHS
    /// entry point (the `nrhs` option is the declarative twin that makes
    /// plain [`SparseSolverPort::solve`] take this path).
    pub fn solve_batch(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, true)
    }

    fn solve_impl(
        &self,
        solution: &mut [f64],
        status: &mut [f64],
        force_batch: bool,
    ) -> LisiResult<()> {
        let st = self.state.lock();
        st.check_solve_buffers(solution, status)?;
        crate::ledger::arm();
        let comm = st.comm()?;
        let rank = comm.rank();

        let matrix_free = super::matrix_free_requested(&st);
        let mf_pc = matrix_free
            && st.options.get("preconditioner").as_deref() == Some("matrix_free");
        let cfg = if mf_pc {
            // "matrix_free" is not a package preconditioner name; the port
            // below supplies the application's preconditioner instead.
            let mut opts = st.options.clone();
            opts.set("preconditioner", "none");
            KspConfig::from_options(&opts).map_err(LisiError::from)?
        } else {
            KspConfig::from_options(&st.options).map_err(LisiError::from)?
        };
        let ksp = Ksp::new(cfg).map_err(LisiError::from)?;

        // Admission control: each rank takes a ticket, then the cohort
        // agrees — if any peer was refused, everyone returns Busy rather
        // than leaving the refused rank's peers stranded in a collective.
        // Agreement uses allgather, not allreduce: fault plans address
        // allreduce calls by index, and the session layer must not shift
        // the numbering of the solver's own reductions.
        let svc = SolverService::global();
        let ticket = svc.admit();
        let admitted = comm.allgather(ticket.is_ok())?.into_iter().all(|ok| ok);
        if !admitted {
            return Err(ticket.err().unwrap_or_else(|| {
                LisiError::Busy("a peer rank was refused admission".into())
            }));
        }
        let _ticket = ticket.expect("cohort agreed all ranks were admitted");

        // Resolve the operator and preconditioner: matrix-free operators
        // bypass the session cache (the closure's identity cannot be
        // fingerprinted); assembled systems are keyed by matrix + option
        // fingerprint so a warm session performs zero setup — the
        // "lisi_setup" span is never even opened. The warm/cold decision
        // is collective: a rank whose entry was evicted must not drag its
        // warm peers into a setup collective they would skip.
        let (operator, pc, partition, setup_seconds): (
            Arc<dyn LinearOperator>,
            Arc<dyn Preconditioner>,
            rsparse::BlockRowPartition,
            f64,
        ) = if matrix_free {
            let setup_t = probe::SectionTimer::start("lisi_setup");
            let partition = st.build_partition()?;
            let port = super::require_matrix_free(&st)?;
            let apply_port = Arc::clone(&port);
            let shell = ShellOperator::new(partition.clone(), move |_, x, y| {
                apply_port
                    .mat_mult(OperatorId::Matrix, x.local(), y.local_mut())
                    .map_err(|e| e.to_string())
            });
            let pc: Arc<dyn Preconditioner> =
                if mf_pc {
                    Self::matrix_free_pc(port)
                } else {
                    ksp.make_pc(&shell).map_err(LisiError::from)?.into()
                };
            let op: Arc<dyn LinearOperator> = Arc::new(shell);
            (op, pc, partition, setup_t.stop())
        } else {
            let (matrix, _) = st.require_system()?;
            let key = service::SessionKey {
                backend: Self::PACKAGE_NAME,
                rank,
                size: comm.size(),
                fingerprint: service::fingerprint(
                    rank,
                    comm.size(),
                    st.start_row.unwrap_or(0),
                    st.global_cols.unwrap_or(0),
                    matrix.row_ptr(),
                    matrix.col_idx(),
                    matrix.values(),
                    &st.options.dump(),
                ),
            };
            let hit = svc.lookup::<RkspArtifact>(&key);
            let warm = comm.allgather(hit.is_some())?.into_iter().all(|h| h);
            svc.record_outcome(warm);
            if warm {
                let art = hit.expect("cohort agreed every rank hit");
                (
                    Arc::clone(&art.operator) as Arc<dyn LinearOperator>,
                    Arc::clone(&art.pc),
                    art.partition.clone(),
                    0.0,
                )
            } else {
                let setup_t = probe::SectionTimer::start("lisi_setup");
                let partition = st.build_partition()?;
                let dist =
                    DistCsrMatrix::from_local_rows(comm, partition.clone(), matrix.clone())?;
                let op = Arc::new(MatOperator::new(dist));
                let pc: Arc<dyn Preconditioner> =
                    ksp.make_pc(op.as_ref()).map_err(LisiError::from)?.into();
                let bytes = service::approx_csr_bytes(matrix.nnz(), partition.local_rows(rank));
                svc.insert(
                    key,
                    Arc::new(RkspArtifact {
                        partition: partition.clone(),
                        operator: Arc::clone(&op),
                        pc: Arc::clone(&pc),
                    }),
                    bytes,
                );
                (op as Arc<dyn LinearOperator>, pc, partition, setup_t.stop())
            }
        };
        let local_rows = partition.local_rows(rank);

        let rhs = st.require_rhs()?.to_vec();
        let n_rhs = st.n_rhs;
        let batch_width: usize = st
            .options
            .get("nrhs")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let use_batch = (force_batch || batch_width >= 2) && n_rhs >= 1;
        let solve_t = probe::SectionTimer::start("lisi_solve");
        let mut report = SolveReport {
            converged: true,
            setup_seconds: setup_seconds + st.convert_seconds,
            ..Default::default()
        };
        let mut cond_estimate = None;
        let mut initial_residual = None;
        let mut fold = |report: &mut SolveReport, res: &rkrylov::KspResult| {
            cond_estimate = res.cond_estimate.or(cond_estimate);
            initial_residual = Some(res.initial_residual);
            report.converged &= res.converged();
            report.iterations = report.iterations.max(res.iterations);
            report.residual = report.residual.max(res.final_residual);
            report.reason = match res.reason {
                rkrylov::ConvergedReason::RelativeTolerance => 1,
                rkrylov::ConvergedReason::AbsoluteTolerance => 2,
                rkrylov::ConvergedReason::MaxIterations => -1,
                rkrylov::ConvergedReason::Breakdown => -2,
                rkrylov::ConvergedReason::Diverged => -3,
                rkrylov::ConvergedReason::Stagnated => -4,
                rkrylov::ConvergedReason::TimedOut => -5,
            };
        };
        if use_batch {
            // One batched call: fused multi-vector SpMV plus per-step
            // reductions batched across all columns (k collectives → 1).
            probe::note("batch", format!("nrhs={n_rhs}"));
            let results = ksp
                .solve_batch_with_pc(
                    comm,
                    operator.as_ref(),
                    pc.as_ref(),
                    &rhs,
                    solution,
                    n_rhs,
                )
                .map_err(LisiError::from)?;
            for res in &results {
                fold(&mut report, res);
            }
        } else {
            for k in 0..n_rhs {
                let b = DistVector::from_local(
                    partition.clone(),
                    rank,
                    rhs[k * local_rows..(k + 1) * local_rows].to_vec(),
                )?;
                let mut x = DistVector::from_local(
                    partition.clone(),
                    rank,
                    solution[k * local_rows..(k + 1) * local_rows].to_vec(),
                )?;
                let res = ksp
                    .solve_with_pc(comm, operator.as_ref(), pc.as_ref(), &b, &mut x)
                    .map_err(LisiError::from)?;
                solution[k * local_rows..(k + 1) * local_rows].copy_from_slice(x.local());
                fold(&mut report, &res);
            }
        }
        report.solve_seconds = solve_t.stop();
        crate::ledger::emit(
            comm,
            &crate::ledger::SolveInfo {
                backend: Self::PACKAGE_NAME,
                report: &report,
                ksp: st.options.get("solver"),
                pc: st.options.get("preconditioner"),
                rtol: st
                    .options
                    .get_first(&["ksp_rtol", "tol", "rtol"])
                    .and_then(|v| v.parse().ok()),
                cond_estimate,
                initial_residual,
            },
        );
        report.write_into(status)?;
        if report.converged {
            Ok(())
        } else {
            Err(LisiError::Package(format!(
                "RKSP did not converge (reason code {})",
                report.reason
            )))
        }
    }
}

impl SparseSolverPort for RkspAdapter {
    super::lisi_common_methods!();

    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{SolveReport, STATUS_LEN};
    use rcomm::Universe;
    use rsparse::BlockRowPartition;

    /// Drive the adapter exactly as an application would, on `p` ranks.
    fn solve_paper_problem(p: usize, opts: &[(&str, &str)]) -> (SolveReport, f64) {
        let m = 10;
        let man = rmesh::manufactured::paper_manufactured(m);
        let n = man.exact.len();
        let a = man.matrix.clone();
        let b = man.rhs.clone();
        let out = Universe::run(p, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let rank = comm.rank();
            let range = part.range(rank);
            let local = a.row_block(range.start, range.end).unwrap();

            let solver = RkspAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(range.start).unwrap();
            solver.set_local_rows(range.len()).unwrap();
            solver.set_local_nnz(local.nnz()).unwrap();
            solver.set_global_cols(n).unwrap();
            for (k, v) in opts {
                solver.set(k, v).unwrap();
            }
            // Feed CSR arrays with *global* rows realized as local ptr.
            solver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            solver.setup_rhs(&b[range.clone()], 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
        });
        let (rep, full) = &out[0];
        (*rep, man.error_inf(full))
    }

    #[test]
    fn serial_solve_recovers_manufactured_solution() {
        let (rep, err) = solve_paper_problem(
            1,
            &[("solver", "bicgstab"), ("preconditioner", "ilu"), ("tol", "1e-10")],
        );
        assert!(rep.converged);
        assert!(rep.iterations > 0);
        assert!(err < 1e-6, "err = {err}");
        assert!(rep.residual < 1e-6);
        assert!(rep.solve_seconds > 0.0);
    }

    #[test]
    fn parallel_solve_matches() {
        for p in [2usize, 4] {
            let (rep, err) = solve_paper_problem(
                p,
                &[("solver", "gmres"), ("preconditioner", "jacobi"), ("tol", "1e-10")],
            );
            assert!(rep.converged, "p = {p}");
            assert!(err < 1e-6, "p = {p}: err = {err}");
        }
    }

    #[test]
    fn multi_rhs_solves_columnwise() {
        let n = 36;
        let a = rsparse::generate::laplacian_2d(6);
        let x1 = rsparse::generate::random_vector(n, 1);
        let x2 = rsparse::generate::random_vector(n, 2);
        let mut b = a.matvec(&x1).unwrap();
        b.extend(a.matvec(&x2).unwrap());
        let out = Universe::run(1, |comm| {
            let solver = RkspAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(n).unwrap();
            solver.set_global_cols(n).unwrap();
            solver.set("solver", "cg").unwrap();
            solver.set("preconditioner", "icc").unwrap();
            solver.set_double("tol", 1e-11).unwrap();
            solver
                .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), crate::SparseStruct::Csr)
                .unwrap();
            solver.setup_rhs(&b, 2).unwrap();
            let mut x = vec![0.0; 2 * n];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            x
        });
        for (g, e) in out[0][..n].iter().zip(&x1) {
            assert!((g - e).abs() < 1e-7);
        }
        for (g, e) in out[0][n..].iter().zip(&x2) {
            assert!((g - e).abs() < 1e-7);
        }
    }

    #[test]
    fn matrix_free_solve_through_the_port() {
        // The application provides A·x (a 1-D Laplacian stencil) through
        // the MatrixFree port; no assembled matrix ever reaches the
        // solver.
        struct Stencil {
            n: usize,
        }
        impl MatrixFreePort for Stencil {
            fn mat_mult(
                &self,
                id: OperatorId,
                x: &[f64],
                y: &mut [f64],
            ) -> LisiResult<()> {
                assert_eq!(id, OperatorId::Matrix);
                for i in 0..self.n {
                    let mut acc = 2.0 * x[i];
                    if i > 0 {
                        acc -= x[i - 1];
                    }
                    if i + 1 < self.n {
                        acc -= x[i + 1];
                    }
                    y[i] = acc;
                }
                Ok(())
            }
        }
        let n = 24;
        let a = rsparse::generate::laplacian_1d(n);
        let x_true = rsparse::generate::random_vector(n, 9);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(1, |comm| {
            let solver = RkspAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(n).unwrap();
            solver.set_global_cols(n).unwrap();
            solver.set_matrix_free(Arc::new(Stencil { n }));
            solver.set_bool("matrix_free", true).unwrap();
            solver.set("solver", "cg").unwrap();
            solver.set("preconditioner", "none").unwrap();
            solver.set_double("tol", 1e-11).unwrap();
            solver.setup_rhs(&b, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            (x, SolveReport::from_slice(&status))
        });
        let (x, rep) = &out[0];
        assert!(rep.converged);
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-7);
        }
    }

    #[test]
    fn matrix_free_without_port_is_a_phase_error() {
        let out = Universe::run(1, |comm| {
            let solver = RkspAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(2).unwrap();
            solver.set_global_cols(2).unwrap();
            solver.set_bool("matrix_free", true).unwrap();
            solver.setup_rhs(&[1.0, 1.0], 1).unwrap();
            let mut x = [0.0; 2];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap_err()
        });
        assert!(matches!(&out[0], LisiError::BadPhase(_)));
    }

    #[test]
    fn get_all_names_the_package_and_parameters() {
        let solver = RkspAdapter::new();
        solver.set("solver", "gmres").unwrap();
        solver.set_int("maxits", 500).unwrap();
        let dump = solver.get_all();
        assert!(dump.contains("package=rksp"));
        assert!(dump.contains("solver=gmres"));
        assert!(dump.contains("maxits=500"));
    }

    #[test]
    fn unknown_solver_name_is_a_package_error_with_code() {
        let out = Universe::run(1, |comm| {
            let solver = RkspAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(1).unwrap();
            solver.set_global_cols(1).unwrap();
            solver.set("solver", "quantum").unwrap();
            solver.setup_matrix_coo(&[1.0], &[0], &[0]).unwrap();
            solver.setup_rhs(&[1.0], 1).unwrap();
            let mut x = [0.0];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap_err()
        });
        assert!(out[0].code() < 0);
        assert!(out[0].to_string().contains("quantum"));
    }
}
