//! The solver-package adapters: each implements [`crate::SparseSolverPort`] over
//! one underlying library, converting LISI's generic inputs and
//! parameters to the package's native forms. This is the reusable "CCA
//! toolkit" the paper's abstract promises — swap the adapter, keep the
//! application.

mod raztec_adapter;
mod rksp_adapter;
mod rmg_adapter;
mod rslu_adapter;

pub use raztec_adapter::RaztecAdapter;
pub use rksp_adapter::RkspAdapter;
pub use rmg_adapter::RmgAdapter;
pub use rslu_adapter::RsluAdapter;

use std::sync::Arc;

use crate::error::LisiResult;
use crate::traits::MatrixFreePort;

/// Implements every [`crate::SparseSolverPort`] method except `solve` by
/// delegating to the adapter's `state: parking_lot::Mutex<LisiState>`
/// field. Each adapter supplies only its package-specific `solve`.
macro_rules! lisi_common_methods {
    () => {
        fn initialize(&self, comm: rcomm::Communicator) -> crate::error::LisiResult<()> {
            self.state.lock().comm = Some(comm);
            Ok(())
        }

        fn set_block_size(&self, bs: usize) -> crate::error::LisiResult<()> {
            if bs == 0 {
                return Err(crate::error::LisiError::InvalidInput(
                    "block size must be positive".into(),
                ));
            }
            self.state.lock().block_size = bs;
            Ok(())
        }

        fn set_start_row(&self, start_row: usize) -> crate::error::LisiResult<()> {
            self.state.lock().start_row = Some(start_row);
            Ok(())
        }

        fn set_local_rows(&self, rows: usize) -> crate::error::LisiResult<()> {
            self.state.lock().local_rows = Some(rows);
            Ok(())
        }

        fn set_local_nnz(&self, nnz: usize) -> crate::error::LisiResult<()> {
            self.state.lock().local_nnz = Some(nnz);
            Ok(())
        }

        fn set_global_cols(&self, cols: usize) -> crate::error::LisiResult<()> {
            self.state.lock().global_cols = Some(cols);
            Ok(())
        }

        fn setup_matrix_coo(
            &self,
            values: &[f64],
            rows: &[usize],
            columns: &[usize],
        ) -> crate::error::LisiResult<()> {
            self.state.lock().ingest_matrix(
                values,
                rows,
                columns,
                crate::types::SparseStruct::Coo,
                0,
            )
        }

        fn setup_matrix(
            &self,
            values: &[f64],
            rows: &[usize],
            columns: &[usize],
            structure: crate::types::SparseStruct,
        ) -> crate::error::LisiResult<()> {
            self.state.lock().ingest_matrix(values, rows, columns, structure, 0)
        }

        fn setup_matrix_offset(
            &self,
            values: &[f64],
            rows: &[usize],
            columns: &[usize],
            structure: crate::types::SparseStruct,
            offset: usize,
        ) -> crate::error::LisiResult<()> {
            self.state.lock().ingest_matrix(values, rows, columns, structure, offset)
        }

        fn setup_rhs(&self, rhs: &[f64], n_rhs: usize) -> crate::error::LisiResult<()> {
            self.state.lock().ingest_rhs(rhs, n_rhs)
        }

        fn set(&self, key: &str, value: &str) -> crate::error::LisiResult<()> {
            // Reserved key: "probe" switches the process-wide tracing
            // mode through the generic option surface, so applications
            // can enable observability without a LISI interface change
            // (SIDL conformance forbids adding trait methods).
            if key == "probe" {
                let mode = probe::ProbeMode::parse(value).ok_or_else(|| {
                    crate::error::LisiError::BadParameter {
                        key: "probe".into(),
                        reason: format!(
                            "unknown probe mode '{value}' (expected off|summary|json|chrome|flight)"
                        ),
                    }
                })?;
                probe::set_mode(mode);
                return Ok(());
            }
            // Reserved key: "threads" sets the rank-local thread count
            // used by the threaded kernels (SpMV chunks, level-scheduled
            // triangular solves, blocked reductions). Same rationale as
            // "probe": a process-wide knob every adapter understands
            // without widening the SIDL surface.
            if key == "threads" {
                let n: usize = value.parse().map_err(|_| {
                    crate::error::LisiError::BadParameter {
                        key: "threads".into(),
                        reason: format!("expected a positive thread count, got '{value}'"),
                    }
                })?;
                if n == 0 {
                    return Err(crate::error::LisiError::BadParameter {
                        key: "threads".into(),
                        reason: "thread count must be ≥ 1".into(),
                    });
                }
                rsparse::threads::set_threads(n);
                return Ok(());
            }
            // Reserved key: "trace" arms or disarms causal cross-rank
            // tracing (`probe::trace`) for subsequent solves — the
            // programmatic twin of `RSPARSE_TRACE`. Accepts the usual
            // switch spellings (1|on|true|yes / 0|off|false|no|none).
            if key == "trace" {
                let armed = probe::trace::parse_switch(value).ok_or_else(|| {
                    crate::error::LisiError::BadParameter {
                        key: "trace".into(),
                        reason: format!(
                            "unknown trace switch '{value}' (expected on|off)"
                        ),
                    }
                })?;
                probe::trace::set_armed(armed);
                return Ok(());
            }
            // Reserved key: "ledger" routes the per-solve efficiency
            // ledger (work models + measured times + convergence
            // analytics) to a path — the programmatic twin of
            // `RSPARSE_LEDGER`. The grammar is infallible: off|0|none
            // disables, 1|on selects the default path, anything else is
            // the target path.
            if key == "ledger" {
                probe::ledger::set_destination(value);
                return Ok(());
            }
            // Reserved key: "format" selects the SpMV storage format the
            // next setupMatrix plans with (csr|sell|bcsr|auto). All
            // formats are bit-identical, so this is purely a performance
            // knob — same process-wide pattern as "probe"/"threads".
            if key == "format" {
                let policy = rsparse::FormatPolicy::parse(value).ok_or_else(|| {
                    crate::error::LisiError::BadParameter {
                        key: "format".into(),
                        reason: format!(
                            "unknown format '{value}' (expected csr|sell|bcsr|auto)"
                        ),
                    }
                })?;
                rsparse::autotune::set_policy(policy);
                return Ok(());
            }
            // Reserved key: "nrhs" opts subsequent solves into the
            // batched multi-RHS path — any value ≥ 2 makes `solve`
            // process all columns of the current right-hand-side block
            // through the batched drivers (one fused reduction / halo
            // exchange per step instead of one per column); 1 restores
            // column-at-a-time solves. Validated here, stored as an
            // ordinary option so it participates in the session
            // fingerprint.
            if key == "nrhs" {
                let n: usize = value.parse().map_err(|_| {
                    crate::error::LisiError::BadParameter {
                        key: "nrhs".into(),
                        reason: format!("expected a positive batch width, got '{value}'"),
                    }
                })?;
                if n == 0 {
                    return Err(crate::error::LisiError::BadParameter {
                        key: "nrhs".into(),
                        reason: "batch width must be ≥ 1".into(),
                    });
                }
                // Falls through: kept in the option table.
            }
            self.state.lock().options.set(key, value);
            Ok(())
        }

        fn set_int(&self, key: &str, value: i64) -> crate::error::LisiResult<()> {
            if key == "threads" || key == "nrhs" {
                return self.set(key, &value.to_string());
            }
            self.state.lock().options.set_int(key, value);
            Ok(())
        }

        fn set_bool(&self, key: &str, value: bool) -> crate::error::LisiResult<()> {
            if key == "trace" {
                probe::trace::set_armed(value);
                return Ok(());
            }
            self.state.lock().options.set_bool(key, value);
            Ok(())
        }

        fn set_double(&self, key: &str, value: f64) -> crate::error::LisiResult<()> {
            self.state.lock().options.set_double(key, value);
            Ok(())
        }

        fn get_all(&self) -> String {
            let st = self.state.lock();
            let mut out = format!("package={}\n", Self::PACKAGE_NAME);
            out.push_str(&st.options.dump());
            out
        }
    };
}
pub(crate) use lisi_common_methods;

/// Common constructor surface shared by the adapters.
macro_rules! lisi_adapter_boilerplate {
    ($name:ident) => {
        impl $name {
            /// Fresh, un-initialized adapter.
            pub fn new() -> Self {
                Self::default()
            }

            /// Connect the application's matrix-free port (done by the
            /// CCA component when the `"matrix-free"` uses port is
            /// wired).
            pub fn set_matrix_free(
                &self,
                port: std::sync::Arc<dyn crate::traits::MatrixFreePort>,
            ) {
                self.state.lock().matrix_free = Some(port);
            }
        }
    };
}
pub(crate) use lisi_adapter_boilerplate;

/// Fetch the matrix-free port or explain what is missing.
pub(crate) fn require_matrix_free(
    state: &crate::state::LisiState,
) -> LisiResult<Arc<dyn MatrixFreePort>> {
    state.matrix_free.clone().ok_or_else(|| {
        crate::error::LisiError::BadPhase(
            "matrix_free=true but no MatrixFree port is connected".into(),
        )
    })
}

/// Is the matrix-free mode requested?
pub(crate) fn matrix_free_requested(state: &crate::state::LisiState) -> bool {
    state
        .options
        .get_parsed::<bool>("matrix_free")
        .unwrap_or(false)
}
