//! The RSLU (SuperLU-like) direct-solver adapter. Demonstrates the part
//! of LISI's design the paper worries most about (§5.1): auxiliary
//! objects — the symbolic analysis and the LU factors — that live
//! *between* calls and must be reused invisibly behind the common
//! interface.

use std::sync::Arc;

use parking_lot::Mutex;
use rdirect::{DistRslu, Ordering, RsluOptions};
use rsparse::{DistCsrMatrix, DistVector};

use crate::error::{LisiError, LisiResult};
use crate::service::{self, SolverService};
use crate::state::LisiState;
use crate::status::SolveReport;
use crate::traits::SparseSolverPort;

/// The between-calls auxiliary object of paper §5.1, now cached in the
/// process-wide [`SolverService`]: the symbolic analysis + LU factors
/// survive not just repeated solves on one component instance but any
/// later instance presenting a fingerprint-identical system. The solver
/// sits behind a mutex because triangular solves scratch internal
/// buffers.
struct RsluArtifact {
    partition: rsparse::BlockRowPartition,
    solver: Mutex<DistRslu>,
}

/// LISI over the RSLU sparse direct package.
#[derive(Default)]
pub struct RsluAdapter {
    state: Mutex<LisiState>,
}

super::lisi_adapter_boilerplate!(RsluAdapter);

impl RsluAdapter {
    const PACKAGE_NAME: &'static str = "rslu";

    fn rslu_options(state: &LisiState) -> LisiResult<RsluOptions> {
        let mut opts = RsluOptions::default();
        if let Some(o) = state.options.get_first(&["ordering", "permc_spec"]) {
            opts.ordering = Ordering::parse(&o).ok_or_else(|| LisiError::BadParameter {
                key: "ordering".into(),
                reason: o.clone(),
            })?;
        }
        if let Some(t) = state.options.get_first(&["pivot_tol", "diag_pivot_thresh"]) {
            opts.pivot_threshold = t.parse().map_err(|_| LisiError::BadParameter {
                key: "pivot_tol".into(),
                reason: t.clone(),
            })?;
        }
        if let Some(r) = state.options.get_parsed::<bool>("refine") {
            opts.refine = r;
        }
        if let Some(e) = state.options.get_parsed::<bool>("equil") {
            opts.equilibrate = e;
        }
        Ok(opts)
    }

    /// Multi-RHS entry point: the factorization is shared across all
    /// columns either way (that is the point of a direct solver), so this
    /// delegates to the common path and records the batch in the probe
    /// counters so ledger attribution matches the other adapters.
    pub fn solve_batch(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, true)
    }

    fn solve_impl(
        &self,
        solution: &mut [f64],
        status: &mut [f64],
        force_batch: bool,
    ) -> LisiResult<()> {
        let st = self.state.lock();
        st.check_solve_buffers(solution, status)?;
        if super::matrix_free_requested(&st) {
            return Err(LisiError::Unsupported(
                "a direct solver cannot run matrix-free (it factors explicit entries)".into(),
            ));
        }
        crate::ledger::arm();
        let comm = st.comm()?;
        let rank = comm.rank();

        // Admission, then the cohort-agreed warm/cold branch (see the
        // RKSP adapter for the full rationale: a refused or evicted rank
        // must not strand its peers inside a collective).
        let svc = SolverService::global();
        let ticket = svc.admit();
        let admitted = comm.allgather(ticket.is_ok())?.into_iter().all(|ok| ok);
        if !admitted {
            return Err(ticket.err().unwrap_or_else(|| {
                LisiError::Busy("a peer rank was refused admission".into())
            }));
        }
        let _ticket = ticket.expect("cohort agreed all ranks were admitted");

        let (matrix, _) = st.require_system()?;
        let key = service::SessionKey {
            backend: Self::PACKAGE_NAME,
            rank,
            size: comm.size(),
            fingerprint: service::fingerprint(
                rank,
                comm.size(),
                st.start_row.unwrap_or(0),
                st.global_cols.unwrap_or(0),
                matrix.row_ptr(),
                matrix.col_idx(),
                matrix.values(),
                &st.options.dump(),
            ),
        };
        let hit = svc.lookup::<RsluArtifact>(&key);
        let warm = comm.allgather(hit.is_some())?.into_iter().all(|h| h);
        svc.record_outcome(warm);
        let (artifact, setup_seconds) = if warm {
            (hit.expect("cohort agreed every rank hit"), 0.0)
        } else {
            // Cold: gather, analyze and factor under the setup span —
            // the §5.1 auxiliary objects are built exactly once per
            // fingerprint and then live in the service.
            let setup_t = probe::SectionTimer::start("lisi_setup");
            let partition = st.build_partition()?;
            let dist = DistCsrMatrix::from_local_rows(comm, partition.clone(), matrix.clone())?;
            let mut solver = DistRslu::new(Self::rslu_options(&st)?);
            solver.factorize(comm, &dist).map_err(LisiError::from)?;
            // The factors live gathered on rank 0; bill that rank for
            // the global footprint and the others for their local share.
            let bytes = if rank == 0 {
                service::approx_csr_bytes(
                    matrix.nnz().saturating_mul(comm.size()),
                    partition.global_rows(),
                )
            } else {
                service::approx_csr_bytes(matrix.nnz(), partition.local_rows(rank))
            };
            let artifact = Arc::new(RsluArtifact { partition, solver: Mutex::new(solver) });
            svc.insert(key, Arc::clone(&artifact) as Arc<_>, bytes);
            (artifact, setup_t.stop())
        };
        let partition = artifact.partition.clone();
        let local_rows = partition.local_rows(rank);

        let rhs = st.require_rhs()?;
        let n_rhs = st.n_rhs;
        let batch_width: usize =
            st.options.get("nrhs").and_then(|v| v.parse().ok()).unwrap_or(1);
        if (force_batch || batch_width >= 2) && n_rhs >= 1 {
            probe::add(probe::Counter::RhsBatched, n_rhs as u64);
            probe::note("batch", format!("nrhs={n_rhs}"));
        }
        let mut solver = artifact.solver.lock();
        let solve_t = probe::SectionTimer::start("lisi_solve");
        let mut residual: f64 = 0.0;
        for k in 0..n_rhs {
            let b = DistVector::from_local(
                partition.clone(),
                rank,
                rhs[k * local_rows..(k + 1) * local_rows].to_vec(),
            )?;
            let x = solver.solve(comm, &partition, &b).map_err(LisiError::from)?;
            solution[k * local_rows..(k + 1) * local_rows].copy_from_slice(x.local());
            // Global residual via the local rows (collective reduction).
            let (matrix, _) = st.require_system()?;
            let x_full = x.allgather_full(comm)?;
            let mut local_res = 0.0f64;
            for lr in 0..local_rows {
                let (cols, vals) = matrix.row(lr);
                let mut acc = b.local()[lr];
                for (&c, &v) in cols.iter().zip(vals) {
                    acc -= v * x_full[c];
                }
                local_res += acc * acc;
            }
            let global: f64 = comm.allreduce(local_res, rcomm::sum)?;
            residual = residual.max(global.sqrt());
        }
        let solve_seconds = solve_t.stop();

        let report = SolveReport {
            converged: true,
            iterations: 0, // direct solve
            residual,
            setup_seconds: setup_seconds + st.convert_seconds,
            solve_seconds,
            reason: 1,
            ..SolveReport::default()
        };
        crate::ledger::emit(
            comm,
            &crate::ledger::SolveInfo {
                backend: Self::PACKAGE_NAME,
                report: &report,
                ksp: None,
                pc: None,
                rtol: None,
                cond_estimate: None,
                initial_residual: None,
            },
        );
        report.write_into(status)?;
        Ok(())
    }
}

impl SparseSolverPort for RsluAdapter {
    super::lisi_common_methods!();

    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{SolveReport, STATUS_LEN};
    use rcomm::Universe;
    use rsparse::BlockRowPartition;

    fn run_direct(p: usize, opts: &[(&str, &str)]) -> (SolveReport, f64) {
        let man = rmesh::manufactured::paper_manufactured(8);
        let n = man.exact.len();
        let a = man.matrix.clone();
        let b = man.rhs.clone();
        let out = Universe::run(p, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let range = part.range(comm.rank());
            let local = a.row_block(range.start, range.end).unwrap();
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(range.start).unwrap();
            solver.set_local_rows(range.len()).unwrap();
            solver.set_global_cols(n).unwrap();
            for (k, v) in opts {
                solver.set(k, v).unwrap();
            }
            solver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            solver.setup_rhs(&b[range.clone()], 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
        });
        let (rep, full) = &out[0];
        (*rep, man.error_inf(full))
    }

    #[test]
    fn direct_solve_is_exact_serial_and_parallel() {
        for p in [1usize, 2, 4] {
            let (rep, err) = run_direct(p, &[]);
            assert!(rep.converged, "p = {p}");
            assert_eq!(rep.iterations, 0, "direct solvers report zero iterations");
            assert!(err < 1e-8, "p = {p}: err = {err}");
            assert!(rep.residual < 1e-8);
        }
    }

    #[test]
    fn orderings_are_selectable_through_generic_keys() {
        for ord in ["natural", "rcm", "mmd"] {
            let (rep, err) = run_direct(1, &[("ordering", ord)]);
            assert!(rep.converged, "{ord}");
            assert!(err < 1e-8, "{ord}");
        }
        // Unknown ordering is a parameter error.
        let man = rmesh::manufactured::paper_manufactured(4);
        let n = man.exact.len();
        let out = Universe::run(1, |comm| {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(n).unwrap();
            solver.set_global_cols(n).unwrap();
            solver.set("ordering", "chaotic").unwrap();
            solver
                .setup_matrix(
                    man.matrix.values(),
                    man.matrix.row_ptr(),
                    man.matrix.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            solver.setup_rhs(&man.rhs, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap_err()
        });
        assert!(matches!(&out[0], LisiError::BadParameter { .. }));
    }

    #[test]
    fn factors_are_reused_across_repeated_solves() {
        // Time is an unreliable witness; watch the session-cache probe
        // counters: an identical second solve must hit (factors reused,
        // no new FactorCalls), new matrix values must miss and refactor.
        let a = rsparse::generate::random_diag_dominant(30, 3, 5);
        let out = Universe::run(1, |comm| {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(30).unwrap();
            solver.set_global_cols(30).unwrap();
            solver
                .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), crate::SparseStruct::Csr)
                .unwrap();
            let x1 = rsparse::generate::random_vector(30, 1);
            let b1 = a.matvec(&x1).unwrap();
            solver.setup_rhs(&b1, 1).unwrap();
            let mut x = vec![0.0; 30];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap();
            let hits0 = probe::get(probe::Counter::SessionCacheHits);
            let factors0 = probe::get(probe::Counter::FactorCalls);

            // New RHS, same matrix: warm session, no refactorization.
            let x2 = rsparse::generate::random_vector(30, 2);
            let b2 = a.matvec(&x2).unwrap();
            solver.setup_rhs(&b2, 1).unwrap();
            solver.solve(&mut x, &mut s).unwrap();
            let warm_hit = probe::get(probe::Counter::SessionCacheHits) - hits0;
            let warm_factors = probe::get(probe::Counter::FactorCalls) - factors0;

            // New matrix values: different fingerprint, refactorization.
            let scaled = rsparse::ops::scale(2.0, &a);
            solver
                .setup_matrix(
                    scaled.values(),
                    scaled.row_ptr(),
                    scaled.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            let b3 = scaled.matvec(&x1).unwrap();
            solver.setup_rhs(&b3, 1).unwrap();
            solver.solve(&mut x, &mut s).unwrap();
            let cold_factors = probe::get(probe::Counter::FactorCalls) - factors0;
            let err: f64 =
                x.iter().zip(&x1).map(|(g, e)| (g - e).abs()).fold(0.0, f64::max);
            (warm_hit, warm_factors, cold_factors, err)
        });
        let (warm_hit, warm_factors, cold_factors, err) = out[0];
        assert_eq!(warm_hit, 1, "identical second solve hits the session cache");
        assert_eq!(warm_factors, 0, "same matrix, same factorization");
        assert_eq!(cold_factors, 1, "new matrix values must refactor");
        assert!(err < 1e-9);
    }

    #[test]
    fn multi_rhs_direct_solve() {
        let a = rsparse::generate::random_diag_dominant(20, 3, 9);
        let x1 = rsparse::generate::random_vector(20, 3);
        let x2 = rsparse::generate::random_vector(20, 4);
        let mut b = a.matvec(&x1).unwrap();
        b.extend(a.matvec(&x2).unwrap());
        let out = Universe::run(2, |comm| {
            let part = BlockRowPartition::even(20, comm.size());
            let range = part.range(comm.rank());
            let local = a.row_block(range.start, range.end).unwrap();
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(range.start).unwrap();
            solver.set_local_rows(range.len()).unwrap();
            solver.set_global_cols(20).unwrap();
            solver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            // Column-major multi-RHS chunks.
            let mut local_b = b[range.clone()].to_vec();
            local_b.extend(&b[20 + range.start..20 + range.end]);
            solver.setup_rhs(&local_b, 2).unwrap();
            let mut x = vec![0.0; 2 * range.len()];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap();
            let first = comm.allgatherv(&x[..range.len()]).unwrap();
            let second = comm.allgatherv(&x[range.len()..]).unwrap();
            (first, second)
        });
        let (f, s) = &out[0];
        for (g, e) in f.iter().zip(&x1) {
            assert!((g - e).abs() < 1e-9);
        }
        for (g, e) in s.iter().zip(&x2) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn matrix_free_is_unsupported() {
        let out = Universe::run(1, |comm| {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(2).unwrap();
            solver.set_global_cols(2).unwrap();
            solver.set_bool("matrix_free", true).unwrap();
            solver.setup_rhs(&[1.0, 1.0], 1).unwrap();
            let mut x = [0.0; 2];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap_err()
        });
        assert!(matches!(&out[0], LisiError::Unsupported(_)));
    }
}
