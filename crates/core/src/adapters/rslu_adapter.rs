//! The RSLU (SuperLU-like) direct-solver adapter. Demonstrates the part
//! of LISI's design the paper worries most about (§5.1): auxiliary
//! objects — the symbolic analysis and the LU factors — that live
//! *between* calls and must be reused invisibly behind the common
//! interface.

use parking_lot::Mutex;
use rdirect::{DistRslu, Ordering, RsluOptions};
use rsparse::{DistCsrMatrix, DistVector};

use crate::error::{LisiError, LisiResult};
use crate::state::LisiState;
use crate::status::SolveReport;
use crate::traits::SparseSolverPort;

#[derive(Default)]
struct Cache {
    /// Epoch of the matrix the current factorization belongs to.
    factored_epoch: Option<u64>,
    solver: Option<DistRslu>,
}

/// LISI over the RSLU sparse direct package.
#[derive(Default)]
pub struct RsluAdapter {
    state: Mutex<LisiState>,
    cache: Mutex<Cache>,
}

super::lisi_adapter_boilerplate!(RsluAdapter);

impl RsluAdapter {
    const PACKAGE_NAME: &'static str = "rslu";

    fn rslu_options(state: &LisiState) -> LisiResult<RsluOptions> {
        let mut opts = RsluOptions::default();
        if let Some(o) = state.options.get_first(&["ordering", "permc_spec"]) {
            opts.ordering = Ordering::parse(&o).ok_or_else(|| LisiError::BadParameter {
                key: "ordering".into(),
                reason: o.clone(),
            })?;
        }
        if let Some(t) = state.options.get_first(&["pivot_tol", "diag_pivot_thresh"]) {
            opts.pivot_threshold = t.parse().map_err(|_| LisiError::BadParameter {
                key: "pivot_tol".into(),
                reason: t.clone(),
            })?;
        }
        if let Some(r) = state.options.get_parsed::<bool>("refine") {
            opts.refine = r;
        }
        if let Some(e) = state.options.get_parsed::<bool>("equil") {
            opts.equilibrate = e;
        }
        Ok(opts)
    }
}

impl SparseSolverPort for RsluAdapter {
    super::lisi_common_methods!();

    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        let st = self.state.lock();
        st.check_solve_buffers(solution, status)?;
        if super::matrix_free_requested(&st) {
            return Err(LisiError::Unsupported(
                "a direct solver cannot run matrix-free (it factors explicit entries)".into(),
            ));
        }
        crate::ledger::arm();
        let setup_t = probe::SectionTimer::start("lisi_setup");
        let partition = st.build_partition()?;
        let comm = st.comm()?;
        let rank = comm.rank();
        let local_rows = partition.local_rows(rank);

        // Factor only when the matrix changed since the cached
        // factorization (usage scenarios §5.2 b/c: reuse across RHS).
        let mut cache = self.cache.lock();
        if cache.factored_epoch != Some(st.matrix_epoch) {
            let (matrix, _) = st.require_system()?;
            let dist = DistCsrMatrix::from_local_rows(comm, partition.clone(), matrix.clone())?;
            let mut solver = DistRslu::new(Self::rslu_options(&st)?);
            solver.factorize(comm, &dist).map_err(LisiError::from)?;
            cache.solver = Some(solver);
            cache.factored_epoch = Some(st.matrix_epoch);
        }
        let setup_seconds = setup_t.stop();

        let rhs = st.require_rhs()?;
        let n_rhs = st.n_rhs;
        let solver = cache.solver.as_mut().expect("factored above");
        let solve_t = probe::SectionTimer::start("lisi_solve");
        let mut residual: f64 = 0.0;
        for k in 0..n_rhs {
            let b = DistVector::from_local(
                partition.clone(),
                rank,
                rhs[k * local_rows..(k + 1) * local_rows].to_vec(),
            )?;
            let x = solver.solve(comm, &partition, &b).map_err(LisiError::from)?;
            solution[k * local_rows..(k + 1) * local_rows].copy_from_slice(x.local());
            // Global residual via the local rows (collective reduction).
            let (matrix, _) = st.require_system()?;
            let x_full = x.allgather_full(comm)?;
            let mut local_res = 0.0f64;
            for lr in 0..local_rows {
                let (cols, vals) = matrix.row(lr);
                let mut acc = b.local()[lr];
                for (&c, &v) in cols.iter().zip(vals) {
                    acc -= v * x_full[c];
                }
                local_res += acc * acc;
            }
            let global: f64 = comm.allreduce(local_res, rcomm::sum)?;
            residual = residual.max(global.sqrt());
        }
        let solve_seconds = solve_t.stop();

        let report = SolveReport {
            converged: true,
            iterations: 0, // direct solve
            residual,
            setup_seconds: setup_seconds + st.convert_seconds,
            solve_seconds,
            reason: 1,
            ..SolveReport::default()
        };
        crate::ledger::emit(
            comm,
            &crate::ledger::SolveInfo {
                backend: Self::PACKAGE_NAME,
                report: &report,
                ksp: None,
                pc: None,
                rtol: None,
                cond_estimate: None,
                initial_residual: None,
            },
        );
        report.write_into(status)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{SolveReport, STATUS_LEN};
    use rcomm::Universe;
    use rsparse::BlockRowPartition;

    fn run_direct(p: usize, opts: &[(&str, &str)]) -> (SolveReport, f64) {
        let man = rmesh::manufactured::paper_manufactured(8);
        let n = man.exact.len();
        let a = man.matrix.clone();
        let b = man.rhs.clone();
        let out = Universe::run(p, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let range = part.range(comm.rank());
            let local = a.row_block(range.start, range.end).unwrap();
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(range.start).unwrap();
            solver.set_local_rows(range.len()).unwrap();
            solver.set_global_cols(n).unwrap();
            for (k, v) in opts {
                solver.set(k, v).unwrap();
            }
            solver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            solver.setup_rhs(&b[range.clone()], 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
        });
        let (rep, full) = &out[0];
        (*rep, man.error_inf(full))
    }

    #[test]
    fn direct_solve_is_exact_serial_and_parallel() {
        for p in [1usize, 2, 4] {
            let (rep, err) = run_direct(p, &[]);
            assert!(rep.converged, "p = {p}");
            assert_eq!(rep.iterations, 0, "direct solvers report zero iterations");
            assert!(err < 1e-8, "p = {p}: err = {err}");
            assert!(rep.residual < 1e-8);
        }
    }

    #[test]
    fn orderings_are_selectable_through_generic_keys() {
        for ord in ["natural", "rcm", "mmd"] {
            let (rep, err) = run_direct(1, &[("ordering", ord)]);
            assert!(rep.converged, "{ord}");
            assert!(err < 1e-8, "{ord}");
        }
        // Unknown ordering is a parameter error.
        let man = rmesh::manufactured::paper_manufactured(4);
        let n = man.exact.len();
        let out = Universe::run(1, |comm| {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(n).unwrap();
            solver.set_global_cols(n).unwrap();
            solver.set("ordering", "chaotic").unwrap();
            solver
                .setup_matrix(
                    man.matrix.values(),
                    man.matrix.row_ptr(),
                    man.matrix.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            solver.setup_rhs(&man.rhs, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap_err()
        });
        assert!(matches!(&out[0], LisiError::BadParameter { .. }));
    }

    #[test]
    fn factors_are_reused_across_repeated_solves() {
        // Time is an unreliable witness; use the epoch cache directly:
        // solve twice, mutate nothing, and verify the cached epoch stays.
        let a = rsparse::generate::random_diag_dominant(30, 3, 5);
        let out = Universe::run(1, |comm| {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(30).unwrap();
            solver.set_global_cols(30).unwrap();
            solver
                .setup_matrix(a.values(), a.row_ptr(), a.col_idx(), crate::SparseStruct::Csr)
                .unwrap();
            let x1 = rsparse::generate::random_vector(30, 1);
            let b1 = a.matvec(&x1).unwrap();
            solver.setup_rhs(&b1, 1).unwrap();
            let mut x = vec![0.0; 30];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap();
            let epoch_after_first = solver.cache.lock().factored_epoch;

            // New RHS, same matrix: no refactorization.
            let x2 = rsparse::generate::random_vector(30, 2);
            let b2 = a.matvec(&x2).unwrap();
            solver.setup_rhs(&b2, 1).unwrap();
            solver.solve(&mut x, &mut s).unwrap();
            let epoch_after_second = solver.cache.lock().factored_epoch;

            // New matrix values: epoch bumps, refactorization happens.
            let scaled = rsparse::ops::scale(2.0, &a);
            solver
                .setup_matrix(
                    scaled.values(),
                    scaled.row_ptr(),
                    scaled.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            let b3 = scaled.matvec(&x1).unwrap();
            solver.setup_rhs(&b3, 1).unwrap();
            solver.solve(&mut x, &mut s).unwrap();
            let epoch_after_third = solver.cache.lock().factored_epoch;
            let err: f64 =
                x.iter().zip(&x1).map(|(g, e)| (g - e).abs()).fold(0.0, f64::max);
            (epoch_after_first, epoch_after_second, epoch_after_third, err)
        });
        let (e1, e2, e3, err) = out[0];
        assert_eq!(e1, Some(1));
        assert_eq!(e2, Some(1), "same matrix, same factorization");
        assert_eq!(e3, Some(2), "new matrix must refactor");
        assert!(err < 1e-9);
    }

    #[test]
    fn multi_rhs_direct_solve() {
        let a = rsparse::generate::random_diag_dominant(20, 3, 9);
        let x1 = rsparse::generate::random_vector(20, 3);
        let x2 = rsparse::generate::random_vector(20, 4);
        let mut b = a.matvec(&x1).unwrap();
        b.extend(a.matvec(&x2).unwrap());
        let out = Universe::run(2, |comm| {
            let part = BlockRowPartition::even(20, comm.size());
            let range = part.range(comm.rank());
            let local = a.row_block(range.start, range.end).unwrap();
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(range.start).unwrap();
            solver.set_local_rows(range.len()).unwrap();
            solver.set_global_cols(20).unwrap();
            solver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    crate::SparseStruct::Csr,
                )
                .unwrap();
            // Column-major multi-RHS chunks.
            let mut local_b = b[range.clone()].to_vec();
            local_b.extend(&b[20 + range.start..20 + range.end]);
            solver.setup_rhs(&local_b, 2).unwrap();
            let mut x = vec![0.0; 2 * range.len()];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap();
            let first = comm.allgatherv(&x[..range.len()]).unwrap();
            let second = comm.allgatherv(&x[range.len()..]).unwrap();
            (first, second)
        });
        let (f, s) = &out[0];
        for (g, e) in f.iter().zip(&x1) {
            assert!((g - e).abs() < 1e-9);
        }
        for (g, e) in s.iter().zip(&x2) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn matrix_free_is_unsupported() {
        let out = Universe::run(1, |comm| {
            let solver = RsluAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(2).unwrap();
            solver.set_global_cols(2).unwrap();
            solver.set_bool("matrix_free", true).unwrap();
            solver.setup_rhs(&[1.0, 1.0], 1).unwrap();
            let mut x = [0.0; 2];
            let mut s = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut s).unwrap_err()
        });
        assert!(matches!(&out[0], LisiError::Unsupported(_)));
    }
}
