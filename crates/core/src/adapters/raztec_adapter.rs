//! The RAztec (Trilinos/AztecOO-like) adapter: LISI's generic keys are
//! translated to Aztec option enums, and matrix-free solves ride on
//! RAztec's own `RowMatrix` virtual-matrix trait.

use std::sync::Arc;

use parking_lot::Mutex;
use rcomm::Communicator;
use raztec::{AztecOO, AztecOptions, AzConv, AzPrecond, AzSolver, AzWhy, CrsMatrix, Map, RowMatrix, Vector};

use crate::error::{LisiError, LisiResult};
use crate::service::{self, SolverService};
use crate::state::LisiState;
use crate::status::SolveReport;
use crate::traits::{MatrixFreePort, SparseSolverPort};
use crate::types::OperatorId;

/// Session-cached setup: the row map and the imported `CrsMatrix`
/// (whose construction includes the off-rank column import plan).
/// Matrix-free operators are built fresh per solve — a user closure has
/// no fingerprint — so only assembled systems land in the cache.
struct RaztecArtifact {
    partition: rsparse::BlockRowPartition,
    map: Map,
    operator: Box<dyn RowMatrix + Send + Sync>,
}

/// LISI over the RAztec iterative package.
#[derive(Default)]
pub struct RaztecAdapter {
    state: Mutex<LisiState>,
}

super::lisi_adapter_boilerplate!(RaztecAdapter);

/// A `RowMatrix` that forwards multiplications to the application's
/// `MatrixFree` port — RAztec's native matrix-free mechanism (the
/// `Epetra_RowMatrix` route the paper cites in §5.5).
struct MfRowMatrix {
    map: Map,
    port: Arc<dyn MatrixFreePort>,
}

impl RowMatrix for MfRowMatrix {
    fn row_map(&self) -> &Map {
        &self.map
    }

    fn apply(
        &self,
        _comm: &Communicator,
        x: &Vector,
        y: &mut Vector,
    ) -> raztec::AztecResult<()> {
        self.port
            .mat_mult(OperatorId::Matrix, x.values(), y.values_mut())
            .map_err(|e| raztec::AztecError::Sparse(e.to_string()))
    }
}

impl RaztecAdapter {
    const PACKAGE_NAME: &'static str = "raztec";

    fn aztec_options(state: &LisiState) -> LisiResult<AztecOptions> {
        let mut opts = AztecOptions::default();
        if let Some(s) = state.options.get_first(&["solver", "az_solver"]) {
            opts.solver = AzSolver::parse(&s).map_err(LisiError::from)?;
        }
        if let Some(p) = state.options.get_first(&["preconditioner", "az_precond"]) {
            opts.precond = AzPrecond::parse(&p).map_err(LisiError::from)?;
        }
        if let AzPrecond::Neumann { .. } = opts.precond {
            if let Some(ord) = state.options.get_parsed::<usize>("poly_ord") {
                opts.precond = AzPrecond::Neumann { order: ord };
            }
        }
        if let Some(t) = state.options.get_first(&["tol", "az_tol"]) {
            opts.tol = t
                .parse()
                .map_err(|_| LisiError::BadParameter { key: "tol".into(), reason: t.clone() })?;
        }
        if let Some(m) = state.options.get_first(&["maxits", "az_max_iter"]) {
            opts.max_iter = m.parse().map_err(|_| LisiError::BadParameter {
                key: "maxits".into(),
                reason: m.clone(),
            })?;
        }
        if let Some(k) = state.options.get_first(&["restart", "az_kspace"]) {
            opts.kspace = k.parse().map_err(|_| LisiError::BadParameter {
                key: "restart".into(),
                reason: k.clone(),
            })?;
        }
        if let Some(w) = state.options.get_first(&["stagnation_window", "az_stagnation_window"])
        {
            opts.stall_window = w.parse().map_err(|_| LisiError::BadParameter {
                key: "stagnation_window".into(),
                reason: w.clone(),
            })?;
        }
        if let Some(c) = state.options.get("conv") {
            opts.conv = match c.as_str() {
                "r0" => AzConv::R0,
                "rhs" => AzConv::Rhs,
                other => {
                    return Err(LisiError::BadParameter {
                        key: "conv".into(),
                        reason: other.into(),
                    })
                }
            };
        }
        Ok(opts)
    }

    /// Multi-RHS entry point: delegates to the common path and records
    /// the batch in the probe counters (RAztec's drivers are
    /// column-at-a-time; the amortized work is the cached setup).
    pub fn solve_batch(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, true)
    }

    fn solve_impl(
        &self,
        solution: &mut [f64],
        status: &mut [f64],
        force_batch: bool,
    ) -> LisiResult<()> {
        let st = self.state.lock();
        st.check_solve_buffers(solution, status)?;
        crate::ledger::arm();
        let comm = st.comm()?;
        let rank = comm.rank();
        let opts = Self::aztec_options(&st)?;

        // Admission, then the cohort-agreed warm/cold branch (see the
        // RKSP adapter for the full rationale).
        let svc = SolverService::global();
        let ticket = svc.admit();
        let admitted = comm.allgather(ticket.is_ok())?.into_iter().all(|ok| ok);
        if !admitted {
            return Err(ticket.err().unwrap_or_else(|| {
                LisiError::Busy("a peer rank was refused admission".into())
            }));
        }
        let _ticket = ticket.expect("cohort agreed all ranks were admitted");

        let (artifact, setup_seconds): (Arc<RaztecArtifact>, f64) =
            if super::matrix_free_requested(&st) {
                let setup_t = probe::SectionTimer::start("lisi_setup");
                let partition = st.build_partition()?;
                let map = Map::from_partition(partition.clone(), rank);
                let port = super::require_matrix_free(&st)?;
                let operator: Box<dyn RowMatrix + Send + Sync> =
                    Box::new(MfRowMatrix { map: map.clone(), port });
                (Arc::new(RaztecArtifact { partition, map, operator }), setup_t.stop())
            } else {
                let (matrix, _) = st.require_system()?;
                let key = service::SessionKey {
                    backend: Self::PACKAGE_NAME,
                    rank,
                    size: comm.size(),
                    fingerprint: service::fingerprint(
                        rank,
                        comm.size(),
                        st.start_row.unwrap_or(0),
                        st.global_cols.unwrap_or(0),
                        matrix.row_ptr(),
                        matrix.col_idx(),
                        matrix.values(),
                        &st.options.dump(),
                    ),
                };
                let hit = svc.lookup::<RaztecArtifact>(&key);
                let warm = comm.allgather(hit.is_some())?.into_iter().all(|h| h);
                svc.record_outcome(warm);
                if warm {
                    (hit.expect("cohort agreed every rank hit"), 0.0)
                } else {
                    let setup_t = probe::SectionTimer::start("lisi_setup");
                    let partition = st.build_partition()?;
                    let map = Map::from_partition(partition.clone(), rank);
                    let crs = CrsMatrix::from_local_rows(comm, map.clone(), matrix.clone())
                        .map_err(LisiError::from)?;
                    let bytes =
                        service::approx_csr_bytes(matrix.nnz(), partition.local_rows(rank));
                    let artifact = Arc::new(RaztecArtifact {
                        partition,
                        map,
                        operator: Box::new(crs),
                    });
                    svc.insert(key, Arc::clone(&artifact) as Arc<_>, bytes);
                    (artifact, setup_t.stop())
                }
            };
        let map = artifact.map.clone();
        let local_rows = artifact.partition.local_rows(rank);

        let rhs = st.require_rhs()?;
        let n_rhs = st.n_rhs;
        let batch_width: usize =
            st.options.get("nrhs").and_then(|v| v.parse().ok()).unwrap_or(1);
        if (force_batch || batch_width >= 2) && n_rhs >= 1 {
            probe::add(probe::Counter::RhsBatched, n_rhs as u64);
            probe::note("batch", format!("nrhs={n_rhs}"));
        }
        let mut az = AztecOO::new(artifact.operator.as_ref());
        az.set_options(opts);

        let solve_t = probe::SectionTimer::start("lisi_solve");
        let mut report = SolveReport {
            converged: true,
            setup_seconds: setup_seconds + st.convert_seconds,
            ..Default::default()
        };
        for k in 0..n_rhs {
            let b = Vector::from_values(
                map.clone(),
                rhs[k * local_rows..(k + 1) * local_rows].to_vec(),
            )
            .map_err(LisiError::from)?;
            let mut x = Vector::from_values(
                map.clone(),
                solution[k * local_rows..(k + 1) * local_rows].to_vec(),
            )
            .map_err(LisiError::from)?;
            let stat = az.iterate(comm, &b, &mut x).map_err(LisiError::from)?;
            solution[k * local_rows..(k + 1) * local_rows].copy_from_slice(x.values());
            report.converged &= stat.why.converged();
            report.iterations = report.iterations.max(stat.its);
            report.residual = report.residual.max(stat.true_residual);
            report.reason = match stat.why {
                AzWhy::Normal => 1,
                AzWhy::Maxits => -1,
                AzWhy::Breakdown => -2,
                AzWhy::Ill => -3,
                AzWhy::Stagnated => -4,
            };
        }
        report.solve_seconds = solve_t.stop();
        crate::ledger::emit(
            comm,
            &crate::ledger::SolveInfo {
                backend: Self::PACKAGE_NAME,
                report: &report,
                ksp: st.options.get_first(&["solver", "az_solver"]),
                pc: st.options.get_first(&["preconditioner", "az_precond"]),
                rtol: st
                    .options
                    .get_first(&["tol", "az_tol"])
                    .and_then(|v| v.parse().ok()),
                cond_estimate: None,
                initial_residual: None,
            },
        );
        report.write_into(status)?;
        if report.converged {
            Ok(())
        } else {
            Err(LisiError::Package(format!(
                "RAztec did not converge (reason code {})",
                report.reason
            )))
        }
    }
}

impl SparseSolverPort for RaztecAdapter {
    super::lisi_common_methods!();

    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        self.solve_impl(solution, status, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{SolveReport, STATUS_LEN};
    use rcomm::Universe;
    use rsparse::BlockRowPartition;

    #[test]
    fn solves_the_paper_problem_in_parallel() {
        let man = rmesh::manufactured::paper_manufactured(9);
        let n = man.exact.len();
        for p in [1usize, 3] {
            let a = man.matrix.clone();
            let b = man.rhs.clone();
            let out = Universe::run(p, |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let range = part.range(comm.rank());
                let local = a.row_block(range.start, range.end).unwrap();
                let solver = RaztecAdapter::new();
                solver.initialize(comm.dup().unwrap()).unwrap();
                solver.set_start_row(range.start).unwrap();
                solver.set_local_rows(range.len()).unwrap();
                solver.set_global_cols(n).unwrap();
                solver.set("solver", "gmres").unwrap();
                solver.set("preconditioner", "jacobi").unwrap();
                solver.set_double("tol", 1e-10).unwrap();
                solver
                    .setup_matrix(
                        local.values(),
                        local.row_ptr(),
                        local.col_idx(),
                        crate::SparseStruct::Csr,
                    )
                    .unwrap();
                solver.setup_rhs(&b[range.clone()], 1).unwrap();
                let mut x = vec![0.0; range.len()];
                let mut status = [0.0; STATUS_LEN];
                solver.solve(&mut x, &mut status).unwrap();
                (SolveReport::from_slice(&status), comm.allgatherv(&x).unwrap())
            });
            let (rep, full) = &out[0];
            assert!(rep.converged, "p = {p}");
            assert!(man.error_inf(full) < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn aztec_specific_keys_are_honoured() {
        let st = LisiState {
            options: {
                let mut o = rkrylov::Options::new();
                o.set("solver", "bicgstab");
                o.set("preconditioner", "neumann");
                o.set_int("poly_ord", 5);
                o.set("conv", "rhs");
                o.set_int("restart", 17);
                o
            },
            ..LisiState::default()
        };
        let opts = RaztecAdapter::aztec_options(&st).unwrap();
        assert_eq!(opts.solver, AzSolver::BiCgStab);
        assert_eq!(opts.precond, AzPrecond::Neumann { order: 5 });
        assert_eq!(opts.conv, AzConv::Rhs);
        assert_eq!(opts.kspace, 17);
    }

    #[test]
    fn bad_parameter_values_are_reported() {
        let st = LisiState {
            options: {
                let mut o = rkrylov::Options::new();
                o.set("tol", "very-small-please");
                o
            },
            ..LisiState::default()
        };
        assert!(matches!(
            RaztecAdapter::aztec_options(&st),
            Err(LisiError::BadParameter { .. })
        ));
        let st2 = LisiState {
            options: {
                let mut o = rkrylov::Options::new();
                o.set("conv", "vibes");
                o
            },
            ..LisiState::default()
        };
        assert!(RaztecAdapter::aztec_options(&st2).is_err());
    }

    #[test]
    fn matrix_free_uses_the_rowmatrix_route() {
        struct Identity {
            n: usize,
        }
        impl MatrixFreePort for Identity {
            fn mat_mult(
                &self,
                _id: OperatorId,
                x: &[f64],
                y: &mut [f64],
            ) -> LisiResult<()> {
                assert_eq!(x.len(), self.n);
                y.copy_from_slice(x);
                Ok(())
            }
        }
        let n = 8;
        let out = Universe::run(1, |comm| {
            let solver = RaztecAdapter::new();
            solver.initialize(comm.dup().unwrap()).unwrap();
            solver.set_start_row(0).unwrap();
            solver.set_local_rows(n).unwrap();
            solver.set_global_cols(n).unwrap();
            solver.set_matrix_free(Arc::new(Identity { n }));
            solver.set_bool("matrix_free", true).unwrap();
            solver.set("solver", "cg").unwrap();
            solver.set("preconditioner", "none").unwrap();
            let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
            solver.setup_rhs(&b, 1).unwrap();
            let mut x = vec![0.0; n];
            let mut status = [0.0; STATUS_LEN];
            solver.solve(&mut x, &mut status).unwrap();
            x
        });
        // Identity system: x = b.
        assert_eq!(out[0], (0..n).map(|i| i as f64).collect::<Vec<_>>());
    }
}
