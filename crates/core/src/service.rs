//! The solver service: a long-lived session layer that caches setup
//! artifacts across solves.
//!
//! In a serving deployment the same operator is solved against many
//! right-hand sides over the lifetime of a process — parameter sweeps,
//! time stepping with a frozen Jacobian, embarrassingly parallel UQ
//! ensembles. The expensive part of each solve is often not the Krylov
//! iteration but the setup that precedes it: partition construction,
//! halo-plan assembly, storage-format conversion, ILU factorization,
//! sparse-direct symbolic analysis. [`SolverService`] lets adapters
//! memoize those artifacts under a *session key* — a fingerprint of the
//! matrix sparsity + values plus the solver options — so a second solve
//! of an identical system skips setup entirely.
//!
//! Three concerns live here:
//!
//! 1. **Keying.** [`fingerprint`] hashes the rank/size, the row range,
//!    the local CSR structure and value bits, the solver option dump and
//!    the active storage-format policy with FNV-1a. Any change to the
//!    pattern, the values, the distribution or the configuration yields
//!    a different key, so stale artifacts can never be served. The hit
//!    or miss decision must be *rank-collective* (a warm rank skipping a
//!    collective setup while a cold rank enters it would deadlock), so
//!    adapters agree on hit/miss with an `allreduce` before branching —
//!    see [`SolverService::lookup`]'s docs.
//! 2. **Budgeting.** Cached artifacts are byte-accounted and evicted in
//!    least-recently-used order once the budget set by
//!    `RSPARSE_SESSION_CACHE_MB` (default 64) is exceeded. Hits, misses
//!    and evictions are visible as probe counters
//!    (`session_cache_{hits,misses,evictions}`) and in the solve
//!    ledger's `session` object.
//! 3. **Admission.** Each in-flight solve holds a [`SessionTicket`].
//!    When `max_inflight` tickets are out, further callers wait in a
//!    bounded queue; once the queue is full (or the wait times out) the
//!    adapter returns [`LisiError::Busy`] (code `-7`) so callers can
//!    back off instead of piling onto a saturated process. Limits come
//!    from `RSPARSE_SESSION_MAX_INFLIGHT` / `RSPARSE_SESSION_QUEUE`
//!    with defaults far above any rank-thread count used in tests, so
//!    backpressure only engages when explicitly configured.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::{LisiError, LisiResult};

/// Identifies one cached session: the adapter backend, the rank
/// coordinates, and the matrix/options fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Adapter backend name (`"rksp"`, `"rslu"`, ...).
    pub backend: &'static str,
    /// Rank that owns the artifact (artifacts hold rank-local state).
    pub rank: usize,
    /// Cohort size the artifact was built for.
    pub size: usize,
    /// [`fingerprint`] of the local matrix + options.
    pub fingerprint: u64,
}

/// FNV-1a over the session-relevant state: rank/size, the owned row
/// range, the local CSR pattern and value bits, the solver option dump
/// and the active storage-format policy. Value *bits* (not rounded
/// values) so that any numerical change — however small — is a miss.
#[allow(clippy::too_many_arguments)]
pub fn fingerprint(
    rank: usize,
    size: usize,
    start_row: usize,
    global_cols: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    options_dump: &str,
) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for word in [rank as u64, size as u64, start_row as u64, global_cols as u64] {
        eat(&word.to_le_bytes());
    }
    for &p in row_ptr {
        eat(&(p as u64).to_le_bytes());
    }
    for &c in col_idx {
        eat(&(c as u64).to_le_bytes());
    }
    for &v in values {
        eat(&v.to_bits().to_le_bytes());
    }
    eat(options_dump.as_bytes());
    eat(rsparse::autotune::active_policy().name().as_bytes());
    // A probe reset wipes registered kernel work models; folding the
    // reset epoch in forces the next solve cold so setup re-registers
    // them (a warm solve would assemble a ledger with no kernel rows).
    eat(&probe::reset_epoch().to_le_bytes());
    h
}

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    last_use: u64,
}

struct Inner {
    entries: HashMap<SessionKey, Entry>,
    total_bytes: usize,
    tick: u64,
    inflight: usize,
    queued: usize,
}

/// Process-global cache + admission controller for solver sessions.
/// Obtain the shared instance with [`SolverService::global`]; tests
/// construct private instances with explicit limits via
/// [`SolverService::with_limits`].
pub struct SolverService {
    inner: Mutex<Inner>,
    admit_cv: Condvar,
    capacity_bytes: usize,
    max_inflight: usize,
    max_queue: usize,
    wait_timeout: Duration,
}

/// RAII admission ticket: holding one means the solve is in flight;
/// dropping it frees the slot and wakes one queued waiter.
pub struct SessionTicket<'a> {
    service: &'a SolverService,
}

impl std::fmt::Debug for SessionTicket<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTicket").finish_non_exhaustive()
    }
}

impl Drop for SessionTicket<'_> {
    fn drop(&mut self) {
        let mut inner = self.service.inner.lock();
        inner.inflight -= 1;
        drop(inner);
        self.service.admit_cv.notify_one();
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl SolverService {
    /// A service with explicit limits (used by tests; [`Self::global`]
    /// reads limits from the environment).
    pub fn with_limits(
        capacity_bytes: usize,
        max_inflight: usize,
        max_queue: usize,
        wait_timeout: Duration,
    ) -> Self {
        SolverService {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                total_bytes: 0,
                tick: 0,
                inflight: 0,
                queued: 0,
            }),
            admit_cv: Condvar::new(),
            capacity_bytes,
            max_inflight: max_inflight.max(1),
            max_queue,
            wait_timeout,
        }
    }

    /// The process-wide service. Budget from `RSPARSE_SESSION_CACHE_MB`
    /// (default 64 MB); admission limits from
    /// `RSPARSE_SESSION_MAX_INFLIGHT` (default 512) and
    /// `RSPARSE_SESSION_QUEUE` (default 4096) — generous enough that
    /// rank-thread cohorts never trip backpressure unintentionally.
    pub fn global() -> &'static SolverService {
        static GLOBAL: OnceLock<SolverService> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            SolverService::with_limits(
                env_usize("RSPARSE_SESSION_CACHE_MB", 64).saturating_mul(1024 * 1024),
                env_usize("RSPARSE_SESSION_MAX_INFLIGHT", 512),
                env_usize("RSPARSE_SESSION_QUEUE", 4096),
                Duration::from_secs(30),
            )
        })
    }

    /// Admit one solve, waiting in the bounded queue if `max_inflight`
    /// tickets are already out. Returns [`LisiError::Busy`] when the
    /// queue is full or the wait times out.
    pub fn admit(&self) -> LisiResult<SessionTicket<'_>> {
        let mut inner = self.inner.lock();
        if inner.inflight < self.max_inflight {
            inner.inflight += 1;
            return Ok(SessionTicket { service: self });
        }
        if inner.queued >= self.max_queue {
            return Err(LisiError::Busy(format!(
                "{} solves in flight and {} queued (queue depth {})",
                inner.inflight, inner.queued, self.max_queue
            )));
        }
        inner.queued += 1;
        let deadline = std::time::Instant::now() + self.wait_timeout;
        loop {
            if inner.inflight < self.max_inflight {
                inner.queued -= 1;
                inner.inflight += 1;
                return Ok(SessionTicket { service: self });
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                inner.queued -= 1;
                return Err(LisiError::Busy(format!(
                    "timed out after {:?} waiting for an admission slot",
                    self.wait_timeout
                )));
            }
            // The shim Mutex hands out std guards, so the std Condvar
            // composes with it (poisoning ignored, matching the shim).
            let (guard, _timeout) = self
                .admit_cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Look up a cached artifact without touching the hit/miss counters
    /// (counting is deferred until the cohort has *agreed* on warm vs
    /// cold — see [`Self::record_outcome`]). Bumps LRU recency on hit.
    ///
    /// Rank-collective protocols must not branch on this result alone:
    /// if eviction removed one rank's entry but not its peers', a warm
    /// rank would skip a collective setup the cold rank enters and the
    /// cohort deadlocks. Adapters therefore `allreduce` (logical-and)
    /// the per-rank hit flag and only take the warm path when *every*
    /// rank hit.
    pub fn lookup<T: Send + Sync + 'static>(&self, key: &SessionKey) -> Option<Arc<T>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(key)?;
        entry.last_use = tick;
        entry.value.clone().downcast::<T>().ok()
    }

    /// Record the cohort-agreed outcome of a lookup in the probe
    /// counters: one hit or one miss per rank per solve.
    pub fn record_outcome(&self, warm: bool) {
        if warm {
            probe::incr(probe::Counter::SessionCacheHits);
        } else {
            probe::incr(probe::Counter::SessionCacheMisses);
        }
    }

    /// Insert an artifact (size `bytes`), then evict least-recently-used
    /// entries until the budget is respected again. The entry just
    /// inserted is never evicted by its own insertion, so a single
    /// over-budget artifact still caches (it will be first out next
    /// time).
    pub fn insert(&self, key: SessionKey, value: Arc<dyn Any + Send + Sync>, bytes: usize) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(key.clone(), Entry { value, bytes, last_use: tick })
        {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;
        while inner.total_bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = inner.entries.remove(&k) {
                        inner.total_bytes -= e.bytes;
                        probe::incr(probe::Counter::SessionCacheEvictions);
                    }
                }
                None => break,
            }
        }
    }

    /// (entry count, total cached bytes) — for tests and diagnostics.
    pub fn stats(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.entries.len(), inner.total_bytes)
    }

    /// Drop every cached artifact (tests; also useful between benchmark
    /// phases to force cold setups).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.total_bytes = 0;
    }
}

/// Rough per-rank byte footprint of a cached CSR-shaped artifact:
/// pattern indices + values, plus a fudge for derived structures
/// (halo plans, format conversions, ILU factors are all O(nnz)).
pub fn approx_csr_bytes(nnz: usize, rows: usize) -> usize {
    // row_ptr + col_idx as usize, values as f64, ×3 for derived copies
    // (converted format, preconditioner factors, halo staging).
    (rows + 1) * std::mem::size_of::<usize>()
        + nnz * (std::mem::size_of::<usize>() + std::mem::size_of::<f64>())
            .saturating_mul(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64) -> SessionKey {
        SessionKey { backend: "test", rank: 0, size: 1, fingerprint: fp }
    }

    #[test]
    fn lookup_miss_then_hit_roundtrips_value() {
        let svc = SolverService::with_limits(1 << 20, 4, 4, Duration::from_millis(50));
        assert!(svc.lookup::<Vec<f64>>(&key(1)).is_none());
        svc.insert(key(1), Arc::new(vec![1.0f64, 2.0]), 16);
        let got = svc.lookup::<Vec<f64>>(&key(1)).expect("hit");
        assert_eq!(*got, vec![1.0, 2.0]);
        // Wrong type at the same key is a miss, not a panic.
        assert!(svc.lookup::<String>(&key(1)).is_none());
        assert_eq!(svc.stats(), (1, 16));
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let svc = SolverService::with_limits(100, 4, 4, Duration::from_millis(50));
        svc.insert(key(1), Arc::new(1u64), 40);
        svc.insert(key(2), Arc::new(2u64), 40);
        // Touch key 1 so key 2 is the LRU victim.
        assert!(svc.lookup::<u64>(&key(1)).is_some());
        svc.insert(key(3), Arc::new(3u64), 40);
        assert!(svc.lookup::<u64>(&key(2)).is_none(), "LRU entry evicted");
        assert!(svc.lookup::<u64>(&key(1)).is_some());
        assert!(svc.lookup::<u64>(&key(3)).is_some());
        let (n, bytes) = svc.stats();
        assert_eq!(n, 2);
        assert!(bytes <= 100);
    }

    #[test]
    fn oversized_entry_still_caches_alone() {
        let svc = SolverService::with_limits(10, 4, 4, Duration::from_millis(50));
        svc.insert(key(1), Arc::new(0u8), 1000);
        assert_eq!(svc.stats().0, 1);
        svc.insert(key(2), Arc::new(0u8), 1000);
        // The older oversized entry goes; the new one stays.
        assert!(svc.lookup::<u8>(&key(1)).is_none());
        assert!(svc.lookup::<u8>(&key(2)).is_some());
    }

    #[test]
    fn admission_returns_busy_when_saturated() {
        let svc = SolverService::with_limits(1 << 20, 1, 0, Duration::from_millis(20));
        let t1 = svc.admit().expect("first ticket");
        // inflight full, queue depth 0 → immediate Busy with code -7.
        let err = svc.admit().expect_err("queue full");
        assert!(matches!(err, LisiError::Busy(_)));
        assert_eq!(err.code(), -7);
        drop(t1);
        let t2 = svc.admit().expect("slot freed after drop");
        drop(t2);
    }

    #[test]
    fn queued_waiter_times_out_busy_or_acquires_after_release() {
        let svc = Arc::new(SolverService::with_limits(
            1 << 20,
            1,
            4,
            Duration::from_millis(40),
        ));
        // Timeout path: nobody releases, the queued waiter goes Busy.
        let t1 = svc.admit().expect("first ticket");
        let err = svc.admit().expect_err("waiter times out");
        assert!(matches!(err, LisiError::Busy(_)));
        // Handoff path: release from another thread while one waits.
        let svc2 = Arc::clone(&svc);
        let waiter = std::thread::spawn(move || svc2.admit().map(drop).is_ok());
        std::thread::sleep(Duration::from_millis(5));
        drop(t1);
        assert!(waiter.join().unwrap(), "waiter acquired after release");
    }

    #[test]
    fn fingerprint_tracks_values_pattern_and_options() {
        let base = fingerprint(0, 2, 0, 8, &[0, 2], &[0, 1], &[1.0, 2.0], "cg");
        assert_eq!(
            base,
            fingerprint(0, 2, 0, 8, &[0, 2], &[0, 1], &[1.0, 2.0], "cg"),
            "deterministic"
        );
        assert_ne!(base, fingerprint(0, 2, 0, 8, &[0, 2], &[0, 1], &[1.0, 2.5], "cg"));
        assert_ne!(base, fingerprint(0, 2, 0, 8, &[0, 2], &[0, 2], &[1.0, 2.0], "cg"));
        assert_ne!(base, fingerprint(0, 2, 0, 8, &[0, 2], &[0, 1], &[1.0, 2.0], "gmres"));
        assert_ne!(base, fingerprint(1, 2, 4, 8, &[0, 2], &[0, 1], &[1.0, 2.0], "cg"));
    }
}
