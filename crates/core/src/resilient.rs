//! The resilient solve driver: a [`SparseSolverPort`] that orchestrates
//! *other* solver components and survives their failures.
//!
//! The paper's central claim is that a common interface makes solver
//! packages interchangeable. This module turns that interchangeability
//! into a fault-tolerance mechanism: because every backend speaks
//! `lisi.SparseSolver`, a failed solve can be retried — on the same
//! backend with adjusted parameters, or on an entirely different package
//! — by replaying the captured setup phase onto the next port in a
//! [`RetryPolicy`] chain. The swap itself is the CCA builder operation
//! (`disconnect` + `connect` of the driver's uses port), so the recovery
//! path exercises exactly the dynamic-composition machinery of §4.
//!
//! Failure taxonomy handled here:
//!
//! - **transient communication faults** (injected faults, suspected
//!   deadlocks, departed peers — [`rcomm::CommError::is_transient`]'s
//!   set): retried on the *same* backend after an exponential backoff,
//!   up to `max_transient_retries` times;
//! - **numerical failures** (divergence, stagnation, breakdown, budget
//!   exhaustion — surfaced by the guards in `rkrylov`/`raztec` as
//!   non-convergence errors): no point retrying identically, so the
//!   driver advances to the next attempt spec in the chain;
//! - **lost ranks** ([`rcomm::CommError::RankLost`] — a member stopped
//!   servicing communication for good): no amount of retrying at the
//!   old size can succeed, so the survivors *shrink* the communicator
//!   around the casualty, repartition its block rows from the
//!   neighbour-mirrored copy of the problem data, restore the newest
//!   cohort-consistent Krylov checkpoint (falling back to the caller's
//!   initial guess when checkpointing was off) and re-run the same
//!   attempt spec on the smaller cohort (`recovery = 3`, with the new
//!   cohort size in `STATUS_COHORT`);
//! - **exhaustion**: every spec failed. The driver still writes a full
//!   status array (`converged = 0`, `recovery = −1`, the attempt count)
//!   before returning a structured error — callers always get the
//!   post-solve statistics the interface promises, even for a lost
//!   battle.
//!
//! Rank consistency: each attempt runs on a fresh `dup()` of the
//! driver's communicator, and the numerical guards downstream fold
//! their verdicts into existing reductions, so under rank-consistent
//! failures every rank walks the same attempt sequence. Under
//! rank-*divergent* failures (one rank errors out of a collective while
//! its peers block), the peers' deadlock watchdog converts the hang
//! into a transient error within `RCOMM_DEADLOCK_TIMEOUT_SECS`, and the
//! bounded attempt count guarantees eventual termination with a
//! structured verdict on every rank — never a permanent deadlock.

use std::collections::BTreeMap;
use std::sync::{Arc, Weak};
use std::time::Duration;

use cca::{BuilderService, CcaError, ComponentId, Framework, Services};
use parking_lot::{Mutex, RwLock};

use crate::components::{SOLVER_PORT, SOLVER_PORT_TYPE};
use crate::error::{LisiError, LisiResult};
use crate::postmortem::CohortChange;
use crate::state::LisiState;
use crate::status::{SolveReport, STATUS_LEN};
use crate::traits::SparseSolverPort;
use crate::types::SparseStruct;

/// The neighbour mirror of each rank's static problem data (block rows +
/// right-hand side), deposited at solve entry. In the MPI picture this
/// copy lives in the memory of rank `(r + 1) mod size` — the same ring
/// placement the Krylov checkpoints use — so one lost rank leaves every
/// block recoverable on a survivor. In this in-process SPMD runtime all
/// rank threads share one heap, so a process-global registry keyed by
/// world rank plays the neighbour's part; what matters for the recovery
/// protocol is that after `RankLost(d)` the casualty's ring neighbour can
/// produce `d`'s exact block for the repartition.
mod mirror {
    use std::collections::HashMap;
    use std::sync::Mutex;

    use rsparse::CsrMatrix;

    #[derive(Clone)]
    pub(super) struct Block {
        pub start_row: usize,
        pub matrix: CsrMatrix,
        pub rhs: Vec<f64>,
    }

    static STORE: Mutex<Option<HashMap<usize, Block>>> = Mutex::new(None);

    /// Overwrite `world_rank`'s mirrored block (every solve entry
    /// re-deposits, so stale blocks from earlier solves never survive
    /// into a shrink).
    pub(super) fn deposit(world_rank: usize, start_row: usize, matrix: CsrMatrix, rhs: Vec<f64>) {
        STORE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_or_insert_with(HashMap::new)
            .insert(world_rank, Block { start_row, matrix, rhs });
    }

    pub(super) fn get(world_rank: usize) -> Option<Block> {
        STORE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .and_then(|m| m.get(&world_rank).cloned())
    }
}

/// Uses-port name through which the resilient driver reaches its
/// current backend solver (type [`SOLVER_PORT_TYPE`]).
pub const BACKEND_PORT: &str = "resilient-backend";

/// Option keys consumed by the driver itself — everything else is
/// replayed verbatim onto each backend.
const RESILIENT_KEYS: [&str; 3] =
    ["retry_policy", "resilient_max_transient_retries", "resilient_backoff_ms"];

/// One entry in a retry chain: which backend to use and which option
/// overrides to apply on top of the caller's options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptSpec {
    /// Backend name, resolved through the connected [`BackendSwitch`].
    pub backend: String,
    /// `(key, value)` pairs applied after the caller's own options.
    pub overrides: Vec<(String, String)>,
}

/// An ordered fallback chain plus the transient-retry knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempt specs, tried in order.
    pub attempts: Vec<AttemptSpec>,
    /// How many extra times a *transient* failure may retry the same
    /// spec before the driver moves on.
    pub max_transient_retries: usize,
    /// Base of the exponential backoff between transient retries.
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: Vec::new(), max_transient_retries: 2, backoff_base_ms: 5 }
    }
}

impl AttemptSpec {
    /// Render this attempt back in the `retry_policy` grammar
    /// (`backend[:key=value,…]`).
    pub fn spec(&self) -> String {
        if self.overrides.is_empty() {
            return self.backend.clone();
        }
        let opts: Vec<String> =
            self.overrides.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}:{}", self.backend, opts.join(","))
    }
}

impl RetryPolicy {
    /// Render the attempt chain back in the `retry_policy` grammar —
    /// stamped into postmortem documents so a failure dump names the
    /// exact chain that was walked.
    pub fn spec(&self) -> String {
        let parts: Vec<String> = self.attempts.iter().map(AttemptSpec::spec).collect();
        parts.join(" -> ")
    }

    /// Parse the chain grammar used by the `"retry_policy"` option:
    ///
    /// ```text
    /// backend[:key=value[,key=value…]] [-> backend[:…]]…
    /// ```
    ///
    /// e.g. `"rksp:solver=cg -> rksp:solver=gmres,restart=30 -> rslu"`.
    /// Backend names are whatever the connected [`BackendSwitch`] knows;
    /// whitespace around separators is ignored.
    pub fn parse(spec: &str) -> LisiResult<RetryPolicy> {
        let bad = |reason: String| LisiError::BadParameter { key: "retry_policy".into(), reason };
        let mut attempts = Vec::new();
        for part in spec.split("->") {
            let part = part.trim();
            if part.is_empty() {
                return Err(bad(format!("empty attempt spec in '{spec}'")));
            }
            let (backend, opts) = match part.split_once(':') {
                Some((b, o)) => (b.trim(), o.trim()),
                None => (part, ""),
            };
            if backend.is_empty() {
                return Err(bad(format!("missing backend name in '{part}'")));
            }
            let mut overrides = Vec::new();
            if !opts.is_empty() {
                for kv in opts.split(',') {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| bad(format!("expected key=value, got '{kv}'")))?;
                    let (k, v) = (k.trim(), v.trim());
                    if k.is_empty() {
                        return Err(bad(format!("empty key in '{kv}'")));
                    }
                    overrides.push((k.to_string(), v.to_string()));
                }
            }
            attempts.push(AttemptSpec { backend: backend.to_string(), overrides });
        }
        Ok(RetryPolicy { attempts, ..RetryPolicy::default() })
    }
}

/// Resolves a backend name to a live solver port — the seam between the
/// driver's policy logic and however the backends are hosted.
pub trait BackendSwitch: Send + Sync {
    /// Make `name` the active backend and return its port.
    fn acquire(&self, name: &str) -> LisiResult<Arc<dyn SparseSolverPort>>;
}

/// A switch over plain `Arc` ports — for tests and library embedders
/// that do not run a CCA framework.
#[derive(Default)]
pub struct StaticSwitch {
    backends: BTreeMap<String, Arc<dyn SparseSolverPort>>,
}

impl StaticSwitch {
    /// Empty switch.
    pub fn new() -> Self {
        StaticSwitch::default()
    }

    /// Register `port` under `name` (builder style).
    pub fn with(mut self, name: &str, port: Arc<dyn SparseSolverPort>) -> Self {
        self.backends.insert(name.to_string(), port);
        self
    }
}

impl BackendSwitch for StaticSwitch {
    fn acquire(&self, name: &str) -> LisiResult<Arc<dyn SparseSolverPort>> {
        self.backends.get(name).cloned().ok_or_else(|| {
            LisiError::InvalidInput(format!("no backend registered under '{name}'"))
        })
    }
}

/// The CCA-native switch: every `acquire` rewires the driver
/// component's [`BACKEND_PORT`] uses port to the named provider through
/// the framework's [`BuilderService`] (a `disconnect` + `connect` pair,
/// visible in the builder event log), then fetches the freshly
/// connected port. Holds the framework weakly — the application owns
/// the framework; the switch must not keep it (or the component cycle
/// it contains) alive.
pub struct FrameworkSwitch {
    framework: Weak<RwLock<Framework>>,
    user: ComponentId,
    uses_port: String,
    providers: BTreeMap<String, ComponentId>,
}

impl FrameworkSwitch {
    /// A switch that rewires `user`'s `uses_port` inside `framework`.
    pub fn new(framework: &Arc<RwLock<Framework>>, user: ComponentId, uses_port: &str) -> Self {
        FrameworkSwitch {
            framework: Arc::downgrade(framework),
            user,
            uses_port: uses_port.to_string(),
            providers: BTreeMap::new(),
        }
    }

    /// Map `name` to a provider component instance (builder style).
    pub fn with_provider(mut self, name: &str, id: ComponentId) -> Self {
        self.providers.insert(name.to_string(), id);
        self
    }
}

impl BackendSwitch for FrameworkSwitch {
    fn acquire(&self, name: &str) -> LisiResult<Arc<dyn SparseSolverPort>> {
        let provider = self.providers.get(name).cloned().ok_or_else(|| {
            LisiError::InvalidInput(format!("no provider component registered under '{name}'"))
        })?;
        let fw = self.framework.upgrade().ok_or_else(|| {
            LisiError::BadPhase("the CCA framework behind this switch is gone".into())
        })?;
        let mut fw = fw.write();
        let mut builder = BuilderService::new(&mut fw);
        match builder.disconnect(&self.user, &self.uses_port) {
            Ok(()) | Err(CcaError::NotConnected { .. }) => {}
            Err(e) => return Err(LisiError::Package(e.to_string())),
        }
        builder
            .connect(&self.user, &self.uses_port, &provider, SOLVER_PORT)
            .map_err(|e| LisiError::Package(e.to_string()))?;
        fw.services(&self.user)
            .and_then(|s| s.get_port::<Arc<dyn SparseSolverPort>>(&self.uses_port))
            .map_err(|e| LisiError::Package(e.to_string()))
    }
}

/// The resilient driver. Speaks [`SparseSolverPort`] like any adapter,
/// but its `solve` delegates to the backends selected by the policy.
#[derive(Default)]
pub struct ResilientSolver {
    state: Mutex<LisiState>,
    policy: Mutex<RetryPolicy>,
    switch: Mutex<Option<Arc<dyn BackendSwitch>>>,
}

impl ResilientSolver {
    const PACKAGE_NAME: &'static str = "resilient";

    /// Fresh driver with an empty policy and no switch.
    pub fn new() -> Self {
        ResilientSolver::default()
    }

    /// Connect the backend switch (done by the embedding application or
    /// the CCA driver wiring).
    pub fn set_backends(&self, switch: Arc<dyn BackendSwitch>) {
        *self.switch.lock() = Some(switch);
    }

    /// Install a policy programmatically. The `"retry_policy"` option,
    /// if set, overrides the attempt chain (but not the retry knobs) at
    /// solve time.
    pub fn set_policy(&self, policy: RetryPolicy) {
        *self.policy.lock() = policy;
    }

    /// The policy in force for a solve: programmatic base, with the
    /// generic options (§6.5 surface) layered on top.
    fn effective_policy(&self, st: &LisiState) -> LisiResult<RetryPolicy> {
        let mut policy = self.policy.lock().clone();
        if let Some(spec) = st.options.get("retry_policy") {
            policy.attempts = RetryPolicy::parse(&spec)?.attempts;
        }
        if let Some(n) = st.options.get("resilient_max_transient_retries") {
            policy.max_transient_retries = n.parse().map_err(|_| LisiError::BadParameter {
                key: "resilient_max_transient_retries".into(),
                reason: n.clone(),
            })?;
        }
        if let Some(ms) = st.options.get("resilient_backoff_ms") {
            policy.backoff_base_ms = ms.parse().map_err(|_| LisiError::BadParameter {
                key: "resilient_backoff_ms".into(),
                reason: ms.clone(),
            })?;
        }
        Ok(policy)
    }

    /// Is this error worth retrying on the same backend? Transient
    /// communication failures are; numerical and configuration failures
    /// are not. The comm layer's taxonomy arrives stringified (the
    /// interface returns `LisiError`), so classification matches on the
    /// stable display prefixes of [`rcomm::CommError`]'s transient set.
    fn is_transient(err: &LisiError) -> bool {
        match err {
            LisiError::Package(msg) => {
                msg.contains("injected fault")
                    || msg.contains("suspected deadlock")
                    || msg.contains("is gone")
            }
            _ => false,
        }
    }

    /// The world rank named by a `RankLost` verdict, if this error is
    /// one. Like [`Self::is_transient`], the comm taxonomy arrives
    /// stringified, so this parses the stable display form
    /// `"rank R lost from cohort"`.
    fn lost_rank(err: &LisiError) -> Option<usize> {
        let LisiError::Package(msg) = err else { return None };
        let head = &msg[..msg.find(" lost from cohort")?];
        head.rsplit(|c: char| !c.is_ascii_digit()).next().and_then(|d| d.parse().ok())
    }

    /// The elastic recovery action: shrink the communicator around the
    /// casualty, repartition its block rows from the neighbour mirror,
    /// and restore the newest cohort-consistent Krylov checkpoint.
    ///
    /// Collective on the survivor set — every survivor reaches this from
    /// the same rank-consistent `RankLost` verdict. Mutates the captured
    /// setup state in place (communicator, distribution, matrix, RHS),
    /// so the ordinary [`Self::configure_backend`] replay rebuilds halo
    /// and format plans for the new layout through the cached setup
    /// path. Returns the change record and the initial guess for this
    /// rank's new block: the checkpoint slice when one exists, zeros
    /// otherwise (restart from scratch).
    fn shrink_after_loss(
        st: &mut LisiState,
        lost_world: usize,
    ) -> LisiResult<(CohortChange, Vec<f64>)> {
        let (old_members, old_size, my_local, shrunken, holder) = {
            let comm = st.comm()?;
            let old_members: Vec<usize> = comm.world_members().to_vec();
            let old_size = comm.size();
            let dead_local =
                old_members.iter().position(|&w| w == lost_world).ok_or_else(|| {
                    LisiError::Package(format!(
                        "world rank {lost_world} reported lost is not a cohort member"
                    ))
                })?;
            let survivors: Vec<usize> = (0..old_size).filter(|&r| r != dead_local).collect();
            let shrunken = comm.shrink(&survivors).map_err(LisiError::from)?;
            // The casualty's ring neighbour serves its mirrored block.
            let holder = (dead_local + 1) % old_size;
            (old_members, old_size, comm.rank(), shrunken, holder)
        };
        let (new_start, new_matrix, new_rhs) = {
            let matrix = st.matrix.as_ref().ok_or_else(|| {
                LisiError::BadPhase("cannot repartition before setupMatrix".into())
            })?;
            let rhs = st.rhs.as_deref().ok_or_else(|| {
                LisiError::BadPhase("cannot repartition before setupRHS".into())
            })?;
            let global_rows = st.global_cols.ok_or_else(|| {
                LisiError::BadPhase("cannot repartition before setGlobalCols".into())
            })?;
            let extra = if my_local == holder {
                Some(mirror::get(lost_world).map(|b| (b.start_row, b.matrix, b.rhs)).ok_or_else(
                    || {
                        LisiError::Package(format!(
                            "no mirrored block for lost rank {lost_world}; its rows are \
                             unrecoverable"
                        ))
                    },
                )?)
            } else {
                None
            };
            let start = st.start_row.unwrap_or(0);
            rsparse::DistCsrMatrix::repartition_block_rows(
                &shrunken, start, matrix, rhs, extra, global_rows,
            )
            .map_err(|e| LisiError::Package(e.to_string()))?
        };
        let new_rows = new_matrix.rows();
        // Restore against the *old* membership: the casualty's
        // neighbour-held snapshot is part of the consistent set.
        let (resumed_iteration, guess) = match rkrylov::checkpoint::latest_consistent(&old_members)
        {
            Some((it, chunks)) => {
                let mut full: Vec<f64> = Vec::new();
                for (_, chunk) in chunks {
                    full.extend_from_slice(&chunk);
                }
                if full.len() == st.global_cols.unwrap_or(0) {
                    (it, full[new_start..new_start + new_rows].to_vec())
                } else {
                    (0, vec![0.0; new_rows])
                }
            }
            None => (0, vec![0.0; new_rows]),
        };
        let survivors_world: Vec<usize> =
            old_members.iter().copied().filter(|&w| w != lost_world).collect();
        st.comm = Some(shrunken);
        st.start_row = Some(new_start);
        st.local_rows = Some(new_rows);
        st.matrix = Some(new_matrix);
        st.matrix_epoch += 1;
        st.rhs = Some(new_rhs);
        probe::note("cohort_size", (old_size - 1).to_string());
        let change = CohortChange {
            lost_rank: lost_world,
            old_size,
            new_size: old_size - 1,
            survivors: survivors_world,
            resumed_iteration,
        };
        Ok((change, guess))
    }

    /// Replay the captured setup phase onto `port`: communicator,
    /// distribution, options (caller's, then the spec's overrides),
    /// matrix and right-hand sides — the §5.1 call sequence, re-driven
    /// from the driver's state instead of the application.
    fn configure_backend(
        port: &dyn SparseSolverPort,
        st: &LisiState,
        spec: &AttemptSpec,
        comm: rcomm::Communicator,
    ) -> LisiResult<()> {
        port.initialize(comm)?;
        if st.block_size > 1 {
            port.set_block_size(st.block_size)?;
        }
        if let Some(v) = st.start_row {
            port.set_start_row(v)?;
        }
        if let Some(v) = st.local_rows {
            port.set_local_rows(v)?;
        }
        if let Some(v) = st.global_cols {
            port.set_global_cols(v)?;
        }
        for (k, v) in st.options.iter() {
            if RESILIENT_KEYS.contains(&k) {
                continue;
            }
            port.set(k, v)?;
        }
        for (k, v) in &spec.overrides {
            port.set(k, v)?;
        }
        if let Some(m) = &st.matrix {
            // The state already holds the localized CSR form, whatever
            // format the application originally supplied.
            port.setup_matrix(m.values(), m.row_ptr(), m.col_idx(), SparseStruct::Csr)?;
        }
        if let Some(rhs) = &st.rhs {
            port.setup_rhs(rhs, st.n_rhs)?;
        }
        Ok(())
    }

    /// One full backend solve: acquire, configure, run. Returns the
    /// backend's report on success.
    fn attempt_once(
        st: &LisiState,
        switch: &dyn BackendSwitch,
        spec: &AttemptSpec,
        solution: &mut [f64],
    ) -> LisiResult<SolveReport> {
        // A fresh context per attempt keeps a retried solve's messages
        // from matching stragglers of the failed one.
        let comm = st.comm()?.dup().map_err(LisiError::from)?;
        let port = switch.acquire(&spec.backend)?;
        Self::configure_backend(port.as_ref(), st, spec, comm)?;
        let mut inner = [0.0; STATUS_LEN];
        port.solve(solution, &mut inner)?;
        Ok(SolveReport::from_slice(&inner))
    }

    fn emit_attempt_event(spec: &AttemptSpec, slot: usize, attempt: usize, outcome: &str) {
        probe::emit_jsonl(&format!(
            "{{\"event\":\"resilient_attempt\",\"backend\":\"{}\",\"slot\":{slot},\
             \"attempt\":{attempt},\"outcome\":\"{}\"}}",
            spec.backend,
            outcome.replace('"', "'"),
        ));
    }

    /// Stamp an attempt phase transition into the flight recorder, so a
    /// postmortem's event tail shows the recovery path interleaved with
    /// the comm/iteration events that caused it.
    fn flight_attempt(slot: usize, attempt: usize, phase: &'static str) {
        probe::flight::record(probe::flight::FlightKind::Attempt {
            slot: slot as u32,
            attempt: attempt as u32,
            phase,
        });
    }
}

impl SparseSolverPort for ResilientSolver {
    crate::adapters::lisi_common_methods!();

    fn solve(&self, solution: &mut [f64], status: &mut [f64]) -> LisiResult<()> {
        let mut st = self.state.lock();
        st.check_solve_buffers(solution, status)?;
        let policy = self.effective_policy(&st)?;
        if policy.attempts.is_empty() {
            return Err(LisiError::BadPhase(
                "resilient solver has no retry policy (set the \"retry_policy\" option or \
                 call set_policy)"
                    .into(),
            ));
        }
        let switch = self.switch.lock().clone().ok_or_else(|| {
            LisiError::BadPhase("no backend switch connected (call set_backends)".into())
        })?;

        // Elastic-recovery staging: forget checkpoints from earlier
        // solves (a restored iterate must never leak across solves — the
        // first deposit of this solve is gated behind collectives, so no
        // rank can deposit before every rank has cleared), and mirror
        // this rank's static problem data onto its ring neighbour so a
        // lost rank's block stays recoverable. Repartitioning handles a
        // single RHS; multi-RHS solves keep the retry/swap taxonomy only.
        rkrylov::checkpoint::clear_all();
        if st.n_rhs == 1 {
            if let (Ok(comm), Some(m), Some(rhs)) = (st.comm(), st.matrix.as_ref(), st.rhs.as_ref())
            {
                mirror::deposit(
                    comm.world_members()[comm.rank()],
                    st.start_row.unwrap_or(0),
                    m.clone(),
                    rhs.clone(),
                );
            }
        }
        // The caller's layout, for writing the solution back after a
        // shrink moved this rank's block boundaries.
        let old_start = st.start_row.unwrap_or(0);
        let old_rows = st.local_rows.unwrap_or(solution.len());

        // The caller's initial guess, restored before every attempt so a
        // half-diverged iterate never seeds the next backend. A shrink
        // replaces it with the restored checkpoint slice for the new
        // block (or zeros when no checkpoint existed).
        let mut guess: Vec<f64> = solution.to_vec();
        // Working buffer sized to the *current* layout — after a shrink
        // the local block no longer matches the caller's `solution`.
        let mut work: Vec<f64> = Vec::new();
        let mut attempts_made = 0usize;
        let mut last_err: Option<LisiError> = None;
        let mut cohort_change: Option<CohortChange> = None;
        // Human-readable trail of every attempt's fate, stamped into the
        // postmortem document as `recovery_path`.
        let mut recovery_path: Vec<String> = Vec::new();

        'specs: for (slot, spec) in policy.attempts.iter().enumerate() {
            let mut retries = 0usize;
            loop {
                attempts_made += 1;
                probe::incr(probe::Counter::ResilientAttempts);
                let _span = probe::span!("resilient_attempt");
                Self::flight_attempt(slot, attempts_made, "start");
                work.clear();
                work.extend_from_slice(&guess);
                match Self::attempt_once(&st, switch.as_ref(), spec, &mut work) {
                    Ok(mut report) => {
                        Self::emit_attempt_event(spec, slot, attempts_made, "ok");
                        Self::flight_attempt(slot, attempts_made, "ok");
                        recovery_path.push(format!("{}#{attempts_made}: ok", spec.backend));
                        report.attempts = attempts_made;
                        report.recovery = if cohort_change.is_some() {
                            3
                        } else {
                            match (attempts_made, slot) {
                                (1, _) => 0,
                                (_, 0) => 1,
                                _ => 2,
                            }
                        };
                        report.cohort =
                            cohort_change.as_ref().map(|c| c.new_size).unwrap_or(0);
                        if report.recovery != 0 {
                            probe::incr(probe::Counter::ResilientRecoveries);
                        }
                        report.write_into(status)?;
                        if cohort_change.is_some() {
                            // The survivors' blocks moved; rebuild the
                            // global solution and hand the caller back
                            // exactly the rows it originally owned.
                            let full =
                                st.comm()?.allgatherv(&work).map_err(LisiError::from)?;
                            solution.copy_from_slice(&full[old_start..old_start + old_rows]);
                        } else {
                            solution.copy_from_slice(&work);
                        }
                        if report.recovery != 0 {
                            // The solve survived only through recovery:
                            // leave the black-box record of how.
                            crate::postmortem::write_cohort(
                                st.comm()?,
                                "recovered",
                                &report,
                                &policy.spec(),
                                &recovery_path,
                                cohort_change.as_ref(),
                            );
                        }
                        return Ok(());
                    }
                    Err(e) => {
                        Self::emit_attempt_event(spec, slot, attempts_made, &e.to_string());
                        // A lost rank is not a retryable hiccup — the
                        // cohort itself changed shape. Handle it before
                        // the transient taxonomy.
                        if let Some(lost_world) = Self::lost_rank(&e) {
                            let me = {
                                let comm = st.comm()?;
                                comm.world_members()[comm.rank()]
                            };
                            if lost_world == me {
                                // This rank *is* the casualty: no shrink
                                // can include it. Exit with the full
                                // structured verdict below.
                                Self::flight_attempt(slot, attempts_made, "casualty");
                                recovery_path.push(format!(
                                    "{}#{attempts_made}: casualty: {e}",
                                    spec.backend
                                ));
                                last_err = Some(e);
                                break 'specs;
                            }
                            if st.n_rhs == 1 {
                                match Self::shrink_after_loss(&mut st, lost_world) {
                                    Ok((change, restored)) => {
                                        Self::flight_attempt(slot, attempts_made, "shrink");
                                        probe::emit_jsonl(&format!(
                                            "{{\"event\":\"cohort_shrink\",\"lost_rank\":{},\
                                             \"new_size\":{},\"resumed_iteration\":{}}}",
                                            change.lost_rank,
                                            change.new_size,
                                            change.resumed_iteration,
                                        ));
                                        recovery_path.push(format!(
                                            "{}#{attempts_made}: shrink: rank {} lost, cohort \
                                             {} -> {}, resume at iteration {}",
                                            spec.backend,
                                            change.lost_rank,
                                            change.old_size,
                                            change.new_size,
                                            change.resumed_iteration,
                                        ));
                                        guess = restored;
                                        cohort_change = Some(change);
                                        // Same spec, shrunken cohort; a
                                        // loss does not spend a retry.
                                        continue;
                                    }
                                    Err(se) => {
                                        Self::flight_attempt(slot, attempts_made, "shrink-failed");
                                        recovery_path.push(format!(
                                            "{}#{attempts_made}: shrink failed: {se}",
                                            spec.backend
                                        ));
                                        last_err = Some(se);
                                        break 'specs;
                                    }
                                }
                            }
                        }
                        let transient = Self::is_transient(&e);
                        let retrying = transient && retries < policy.max_transient_retries;
                        let phase = if retrying {
                            "retry"
                        } else if slot + 1 < policy.attempts.len() {
                            "swap"
                        } else {
                            "exhausted"
                        };
                        Self::flight_attempt(slot, attempts_made, phase);
                        recovery_path
                            .push(format!("{}#{attempts_made}: {phase}: {e}", spec.backend));
                        last_err = Some(e);
                        if retrying {
                            retries += 1;
                            std::thread::sleep(Duration::from_millis(
                                policy.backoff_base_ms.saturating_mul(1 << retries.min(6)),
                            ));
                            continue;
                        }
                        break; // next spec in the chain
                    }
                }
            }
        }

        // Exhausted: still deliver the post-solve statistics.
        let report = SolveReport {
            converged: false,
            attempts: attempts_made,
            recovery: -1,
            cohort: cohort_change.as_ref().map(|c| c.new_size).unwrap_or(0),
            ..SolveReport::default()
        };
        report.write_into(status)?;
        crate::postmortem::write_cohort(
            st.comm()?,
            "exhausted",
            &report,
            &policy.spec(),
            &recovery_path,
            cohort_change.as_ref(),
        );
        let last = last_err.map(|e| e.to_string()).unwrap_or_else(|| "unknown".into());
        Err(LisiError::Package(format!(
            "resilient solve exhausted {attempts_made} attempt(s) over {} backend spec(s); \
             last error: {last}",
            policy.attempts.len()
        )))
    }
}

/// The CCA component wrapper: provides [`SOLVER_PORT`] (applications
/// talk to the driver exactly as to any solver component) and declares
/// the [`BACKEND_PORT`] uses port the [`FrameworkSwitch`] rewires.
pub struct ResilientSolverComponent {
    solver: Arc<ResilientSolver>,
}

impl ResilientSolverComponent {
    /// Fresh component around a fresh driver.
    pub fn new() -> Self {
        ResilientSolverComponent { solver: Arc::new(ResilientSolver::new()) }
    }

    /// Handle to the driver (for `set_policy` / `set_backends` and
    /// direct port calls from the hosting application).
    pub fn solver(&self) -> Arc<ResilientSolver> {
        self.solver.clone()
    }
}

impl Default for ResilientSolverComponent {
    fn default() -> Self {
        Self::new()
    }
}

impl cca::Component for ResilientSolverComponent {
    fn set_services(&mut self, services: &Services) -> cca::CcaResult<()> {
        let port: Arc<dyn SparseSolverPort> = self.solver.clone();
        services.add_provides_port(SOLVER_PORT, SOLVER_PORT_TYPE, port)?;
        services.register_uses_port(BACKEND_PORT, SOLVER_PORT_TYPE)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{RkspAdapter, RsluAdapter};
    use crate::components::SolverComponent;
    use crate::status::{STATUS_ATTEMPTS, STATUS_CONVERGED, STATUS_RECOVERY};
    use cca::BuilderEvent;
    use rcomm::Universe;
    use rsparse::BlockRowPartition;

    #[test]
    fn policy_grammar_round_trips() {
        let p = RetryPolicy::parse("rksp:solver=cg -> rksp : solver=gmres, restart=30 -> rslu")
            .unwrap();
        assert_eq!(p.attempts.len(), 3);
        assert_eq!(p.attempts[0].backend, "rksp");
        assert_eq!(p.attempts[0].overrides, vec![("solver".into(), "cg".into())]);
        assert_eq!(
            p.attempts[1].overrides,
            vec![("solver".into(), "gmres".into()), ("restart".into(), "30".into())]
        );
        assert_eq!(p.attempts[2].backend, "rslu");
        assert!(p.attempts[2].overrides.is_empty());
    }

    #[test]
    fn malformed_policy_specs_are_rejected() {
        for bad in ["", " -> rslu", "rksp:solver", "rksp:=cg", ":solver=cg"] {
            assert!(
                matches!(RetryPolicy::parse(bad), Err(LisiError::BadParameter { .. })),
                "spec {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn static_switch_reports_unknown_backends() {
        let sw = StaticSwitch::new();
        assert!(matches!(sw.acquire("rksp"), Err(LisiError::InvalidInput(_))));
    }

    /// Drive the resilient solver over the manufactured paper problem.
    fn run_resilient(
        ranks: usize,
        policy: &str,
        expect_converged: bool,
    ) -> Vec<(LisiResult<()>, Vec<f64>, f64)> {
        let man = rmesh::manufactured::paper_manufactured(9);
        let n = man.exact.len();
        let a = man.matrix.clone();
        let b = man.rhs.clone();
        let policy = policy.to_string();
        let out = Universe::run(ranks, move |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let range = part.range(comm.rank());
            let local = a.row_block(range.start, range.end).unwrap();
            let driver = ResilientSolver::new();
            let switch = StaticSwitch::new()
                .with("rksp", Arc::new(RkspAdapter::new()))
                .with("rslu", Arc::new(RsluAdapter::new()));
            driver.set_backends(Arc::new(switch));
            driver.initialize(comm.dup().unwrap()).unwrap();
            driver.set_start_row(range.start).unwrap();
            driver.set_local_rows(range.len()).unwrap();
            driver.set_global_cols(n).unwrap();
            driver.set("retry_policy", &policy).unwrap();
            driver.set_double("tol", 1e-10).unwrap();
            driver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    SparseStruct::Csr,
                )
                .unwrap();
            driver.setup_rhs(&b[range.clone()], 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = vec![0.0; STATUS_LEN];
            let r = driver.solve(&mut x, &mut status);
            let full = comm.allgatherv(&x).unwrap();
            let err_inf = if r.is_ok() {
                // only meaningful when the solve succeeded
                let man = rmesh::manufactured::paper_manufactured(9);
                man.error_inf(&full)
            } else {
                f64::INFINITY
            };
            (r, status, err_inf)
        });
        for (r, status, _) in &out {
            assert_eq!(r.is_ok(), expect_converged, "solve outcome: {r:?}");
            assert_eq!(
                status[STATUS_CONVERGED],
                if expect_converged { 1.0 } else { 0.0 }
            );
        }
        out
    }

    #[test]
    fn first_try_success_reports_single_attempt() {
        for ranks in [1usize, 3] {
            let out = run_resilient(ranks, "rksp:solver=gmres,preconditioner=jacobi", true);
            for (_, status, err_inf) in out {
                assert_eq!(status[STATUS_ATTEMPTS], 1.0);
                assert_eq!(status[STATUS_RECOVERY], 0.0);
                assert!(err_inf < 1e-6);
            }
        }
    }

    #[test]
    fn numerical_failure_swaps_to_the_next_backend() {
        // maxits=1 makes the CG attempt fail deterministically with a
        // non-convergence (non-transient) error; the chain then swaps
        // to the direct solver, which cannot stagnate.
        for ranks in [1usize, 2] {
            let out = run_resilient(ranks, "rksp:solver=cg,maxits=1 -> rslu", true);
            for (_, status, err_inf) in out {
                assert_eq!(status[STATUS_ATTEMPTS], 2.0, "one failed + one good attempt");
                assert_eq!(status[STATUS_RECOVERY], 2.0, "recovered by swapping");
                assert!(err_inf < 1e-6);
            }
        }
    }

    #[test]
    fn exhausted_chain_reports_structured_failure() {
        let out = run_resilient(1, "rksp:solver=cg,maxits=1", false);
        for (r, status, _) in out {
            let msg = r.unwrap_err().to_string();
            assert!(msg.contains("exhausted"), "got: {msg}");
            assert_eq!(status[STATUS_ATTEMPTS], 1.0);
            assert_eq!(status[STATUS_RECOVERY], -1.0);
        }
    }

    #[test]
    fn missing_policy_and_switch_are_phase_errors() {
        let driver = ResilientSolver::new();
        let out = Universe::run(1, move |comm| {
            driver.initialize(comm.dup().unwrap()).unwrap();
            driver.set_start_row(0).unwrap();
            driver.set_local_rows(2).unwrap();
            driver.set_global_cols(2).unwrap();
            let m = rsparse::CsrMatrix::identity(2);
            driver
                .setup_matrix(m.values(), m.row_ptr(), m.col_idx(), SparseStruct::Csr)
                .unwrap();
            driver.setup_rhs(&[1.0, 1.0], 1).unwrap();
            let mut x = [0.0; 2];
            let mut status = [0.0; STATUS_LEN];
            let no_policy = driver.solve(&mut x, &mut status).unwrap_err();
            driver.set("retry_policy", "rksp").unwrap();
            let no_switch = driver.solve(&mut x, &mut status).unwrap_err();
            (no_policy, no_switch)
        });
        let (no_policy, no_switch) = &out[0];
        assert!(matches!(no_policy, LisiError::BadPhase(_)));
        assert!(no_policy.to_string().contains("retry policy"));
        assert!(matches!(no_switch, LisiError::BadPhase(_)));
        assert!(no_switch.to_string().contains("backend switch"));
    }

    #[test]
    fn framework_switch_rewires_through_the_builder_service() {
        let man = rmesh::manufactured::paper_manufactured(7);
        let n = man.exact.len();
        let a = man.matrix.clone();
        let b = man.rhs.clone();
        let out = Universe::run(2, move |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let range = part.range(comm.rank());
            let local = a.row_block(range.start, range.end).unwrap();

            // SPMD: each rank builds the same framework cohort.
            let fw = Arc::new(RwLock::new(Framework::with_registry(
                cca::sidl::SidlRegistry::lisi(),
            )));
            let (driver, res_id, cg_id, lu_id) = {
                let mut f = fw.write();
                let comp = ResilientSolverComponent::new();
                let driver = comp.solver();
                let res_id = f.instantiate("resilient", Box::new(comp)).unwrap();
                let cg_id = f.instantiate("cg", Box::new(SolverComponent::rksp())).unwrap();
                let lu_id = f.instantiate("lu", Box::new(SolverComponent::rslu())).unwrap();
                (driver, res_id, cg_id, lu_id)
            };
            let switch = FrameworkSwitch::new(&fw, res_id.clone(), BACKEND_PORT)
                .with_provider("rksp", cg_id)
                .with_provider("rslu", lu_id);
            driver.set_backends(Arc::new(switch));

            driver.initialize(comm.dup().unwrap()).unwrap();
            driver.set_start_row(range.start).unwrap();
            driver.set_local_rows(range.len()).unwrap();
            driver.set_global_cols(n).unwrap();
            driver.set("retry_policy", "rksp:solver=cg,maxits=1 -> rslu").unwrap();
            driver
                .setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    SparseStruct::Csr,
                )
                .unwrap();
            driver.setup_rhs(&b[range.clone()], 1).unwrap();
            let mut x = vec![0.0; range.len()];
            let mut status = vec![0.0; STATUS_LEN];
            driver.solve(&mut x, &mut status).unwrap();

            // The swap must be visible in the CCA builder event log:
            // connect(cg), disconnect, connect(lu).
            let wired: Vec<String> = fw
                .read()
                .events()
                .iter()
                .filter_map(|e| match e {
                    BuilderEvent::Connected { uses_port, provider, .. }
                        if uses_port == BACKEND_PORT =>
                    {
                        Some(format!("+{provider}"))
                    }
                    BuilderEvent::Disconnected { uses_port, .. }
                        if uses_port == BACKEND_PORT =>
                    {
                        Some("-".into())
                    }
                    _ => None,
                })
                .collect();
            (status, wired, comm.allgatherv(&x).unwrap())
        });
        for (status, wired, full) in out {
            assert_eq!(status[STATUS_ATTEMPTS], 2.0);
            assert_eq!(status[STATUS_RECOVERY], 2.0);
            assert_eq!(wired, vec!["+cg".to_string(), "-".into(), "+lu".into()]);
            assert!(man.error_inf(&full) < 1e-6);
        }
    }
}
