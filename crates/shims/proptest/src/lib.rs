//! In-tree stand-in for the `proptest` crate, so the workspace builds
//! without a network registry. It keeps the same surface the workspace's
//! property tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `Strategy` with `prop_map`/`prop_flat_map`, ranges and tuples as
//! strategies, `collection::vec`, `sample::select`, `any`, and
//! `ProptestConfig::with_cases` — but generates cases from a fixed
//! per-test seed and reports the first failing case without shrinking.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator; every property seeds one from
    /// its own name so runs are reproducible without a persistence file.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: if h == 0 { 0x9e3779b97f4a7c15 } else { h } }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform in the unit interval `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values; the heart of the API. Unlike real proptest
    /// there is no value tree / shrinking — `generate` yields one value.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// References to strategies are strategies (lets helpers take either).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// String literals act as regex-flavoured string strategies, as in
    /// real proptest. Supported syntax: literal characters, `.` (any
    /// printable ASCII), `[a-z0-9_]` classes built from ranges and single
    /// characters, and the quantifiers `{m,n}`, `{n}`, `?`, `*`, `+`
    /// (unbounded ones capped at 8 repeats).
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    #[derive(Debug, Clone)]
    enum CharSet {
        /// `.`: any printable ASCII character.
        Dot,
        /// A union of inclusive character ranges.
        Ranges(Vec<(char, char)>),
    }

    impl CharSet {
        fn pick(&self, rng: &mut TestRng) -> char {
            match self {
                CharSet::Dot => (0x20u8 + rng.below(0x5f) as u8) as char,
                CharSet::Ranges(rs) => {
                    let total: u64 =
                        rs.iter().map(|&(a, b)| b as u64 - a as u64 + 1).sum();
                    let mut k = rng.below(total);
                    for &(a, b) in rs {
                        let span = b as u64 - a as u64 + 1;
                        if k < span {
                            return char::from_u32(a as u32 + k as u32).unwrap_or(a);
                        }
                        k -= span;
                    }
                    unreachable!("pick index within total")
                }
            }
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set = match c {
                '.' => CharSet::Dot,
                '[' => {
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None | Some(']') => break,
                            Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("checked");
                                let hi = chars.next().expect("peeked");
                                ranges.push((lo, hi));
                            }
                            Some(ch) => {
                                if let Some(p) = prev.replace(ch) {
                                    ranges.push((p, p));
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        ranges.push((p, p));
                    }
                    assert!(!ranges.is_empty(), "empty character class in '{pattern}'");
                    CharSet::Ranges(ranges)
                }
                '\\' => {
                    let esc = chars.next().unwrap_or('\\');
                    CharSet::Ranges(vec![(esc, esc)])
                }
                lit => CharSet::Ranges(vec![(lit, lit)]),
            };
            // Optional quantifier after the atom.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad quantifier"),
                            b.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = spec.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = lo + if hi > lo { rng.below((hi - lo + 1) as u64) as usize } else { 0 };
            for _ in 0..count {
                out.push(set.pick(rng));
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
    tuple_strategy!(A, B, C, D, E, G, H);
    tuple_strategy!(A, B, C, D, E, G, H, I);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical full-range strategy for `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector whose elements come from
    /// `element` and whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy that picks uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// `proptest::sample::select`: choose one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Declare property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// real proptest) that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(::std::stringify!($name));
            for case in 0..cfg.cases {
                $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "property '{}' failed at case {}/{}: {}",
                        ::std::stringify!($name), case + 1, cfg.cases, msg
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10, -1.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds((n, x) in pair()) {
            prop_assert!(n >= 1 && n < 10);
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0usize..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6, "len = {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_links_dimensions(
            (n, idx) in (1usize..8).prop_flat_map(|n| (Just(n), 0..n))
        ) {
            prop_assert!(idx < n);
        }

        #[test]
        fn select_picks_from_options(w in crate::sample::select(vec!["a", "b"])) {
            prop_assert!(w == "a" || w == "b");
        }

        #[test]
        fn any_generates_all_widths(a in any::<u64>(), b in any::<u32>()) {
            // Smoke: values exist; equality against themselves.
            prop_assert_eq!(a, a);
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = 0usize..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
