//! In-tree stand-in for `serde_json`, covering the subset the workspace's
//! tests use: parse a JSON document into a [`Value`] tree and inspect it
//! through `as_*` accessors and `value["key"]` / `value[index]` indexing.
//!
//! There is no serde integration (the workspace builds offline with no
//! registry access) and no serializer — tests only ever *read* JSON the
//! crates emitted through their hand-rolled writers, so a strict parser
//! plus a navigable tree is the whole contract. The parser is a plain
//! recursive-descent over bytes: strict about structure (trailing
//! garbage, unterminated strings and malformed escapes are errors), and
//! numbers are held as `f64` (ample for timestamps, durations and ids in
//! probe exports).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Parse failure: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Parse a byte slice (must be UTF-8).
pub fn from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error { msg: format!("invalid UTF-8: {e}"), at: e.valid_up_to() })?;
    from_str(s)
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number, `None` when it has a fractional part or
    /// falls outside the exactly-representable range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= -(2f64.powi(53)) && *n <= 2f64.powi(53) =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Non-panicking lookup: `None` on missing key / out-of-range index /
    /// wrong container kind.
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Lookup key for [`Value::get`] and the `[]` operator: a string key into
/// an object or a usize index into an array.
pub trait Index {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl Index for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(o) => o.get(*self),
            _ => None,
        }
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

/// `value["key"]` / `value[3]` sugar, `Null` (not a panic) on a miss —
/// the behaviour tests lean on when probing optional fields.
impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        const NULL: Value = Value::Null;
        index.index_into(self).unwrap_or(&NULL)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error { msg: msg.into(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 advanced past the digits; undo the
                            // shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control byte in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a checked &str).
                    let start = self.pos;
                    let s = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..]) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error { msg: format!("bad number '{text}'"), at: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = from_str(
            r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5e3}}"#,
        )
        .unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2].as_str(), Some("x\ny"));
        assert_eq!(v["c"]["d"].as_f64(), Some(-2500.0));
        assert!(v["missing"].is_null());
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            from_str(r#""Aé😀""#).unwrap().as_str(),
            Some("Aé😀")
        );
        assert!(from_str(r#""\ud800""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2",
            "{\"a\":1} x", "[01x]",
        ] {
            assert!(from_str(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn numbers_classify_integer_vs_float() {
        let v = from_str("[3, 3.5, -7, 1e300]").unwrap();
        assert_eq!(v[0].as_i64(), Some(3));
        assert_eq!(v[1].as_i64(), None);
        assert_eq!(v[1].as_f64(), Some(3.5));
        assert_eq!(v[2].as_u64(), None);
        assert_eq!(v[2].as_i64(), Some(-7));
        assert_eq!(v[3].as_i64(), None);
    }
}
