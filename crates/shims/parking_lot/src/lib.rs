//! In-tree stand-in for the `parking_lot` crate, so the workspace builds
//! without a network registry. Thin wrappers over `std::sync` locks with
//! parking_lot's ergonomics: `lock()`/`read()`/`write()` return guards
//! directly and ignore poisoning (a panicked holder does not wedge later
//! lockers).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard; poisoning is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard; poisoning is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let mc = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = mc.lock();
            panic!("poison on purpose");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
