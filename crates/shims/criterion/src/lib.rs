//! In-tree stand-in for the `criterion` crate, so the workspace builds and
//! benches run without a network registry. It keeps the same calling
//! convention (`criterion_group!`, `criterion_main!`, groups, `Bencher::
//! iter`) but measures with a plain warmup + timed-loop scheme and writes
//! one small JSON file per benchmark under `target/criterion-shim/` so
//! scripts can scrape results.
//!
//! Recognised CLI arguments (all optional): a positional substring filter,
//! `--measurement-time <secs>`, `--warm-up-time <secs>`. Anything else
//! (e.g. the `--bench` flag cargo passes) is ignored. The environment
//! variables `BENCH_MEASURE_MS` / `BENCH_WARMUP_MS` override the defaults
//! when no flag is given.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-exported optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a group; turns mean time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Join a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Things usable as a benchmark id (plain strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The `function` or `function/parameter` string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handle passed to every benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly: warm up, then time batches until the
    /// measurement window is exhausted, recording the mean latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warmup;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_end {
            std_black_box(f());
            warm_iters += 1;
        }
        // Batch size from the warmup rate so we check the clock rarely.
        let batch = (warm_iters / 50).max(1);
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            for _ in 0..batch {
                std_black_box(f());
            }
            iters += batch;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// The top-level harness context; holds CLI configuration.
pub struct Criterion {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
}

fn env_ms(key: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default_ms),
    )
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            warmup: env_ms("BENCH_WARMUP_MS", 200),
            measure: env_ms("BENCH_MEASURE_MS", 900),
        }
    }
}

impl Criterion {
    /// Build from `std::env::args`, accepting the argument subset described
    /// in the crate docs.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        c.measure = Duration::from_secs_f64(secs);
                    }
                }
                "--warm-up-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        c.warmup = Duration::from_secs_f64(secs);
                    }
                }
                "--sample-size" => {
                    let _ = args.next(); // accepted for compatibility; unused
                }
                flag if flag.starts_with('-') => {}
                positional => c.filter = Some(positional.to_string()),
            }
        }
        c
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { crit: self, name: name.into(), throughput: None }
    }

    /// Benchmark outside any group (group name defaults to the id).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let id = id.into_id();
        let mut g = BenchmarkGroup { crit: self, name: id.clone(), throughput: None };
        g.bench_function(id, f);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes samples by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        if let Some(filter) = &self.crit.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { warmup: self.crit.warmup, measure: self.crit.measure, mean_ns: 0.0 };
        f(&mut b);
        report(&full, b.mean_ns, self.throughput);
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn report(full_id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
            Some(n as f64 / (mean_ns * 1e-9))
        }
        None => None,
    };
    match rate {
        Some(r) => println!("bench {full_id:<40} {mean_ns:>14.1} ns/iter  {r:>14.3e} /s"),
        None => println!("bench {full_id:<40} {mean_ns:>14.1} ns/iter"),
    }
    // One JSON blob per benchmark so shell scripts can scrape results
    // without a JSON parser: target/criterion-shim/<mangled id>.json
    let out_dir = std::env::var("CRITERION_SHIM_OUT")
        .unwrap_or_else(|_| "target/criterion-shim".to_string());
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let fname = format!("{}/{}.json", out_dir, full_id.replace('/', "_"));
        let rate_field =
            rate.map(|r| format!(",\"per_sec\":{r:.3}")).unwrap_or_default();
        let body = format!("{{\"id\":\"{full_id}\",\"mean_ns\":{mean_ns:.1}{rate_field}}}\n");
        let _ = std::fs::write(fname, body);
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut b = Bencher {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            mean_ns: 0.0,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(b.mean_ns > 0.0);
        assert!(acc > 0);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("serial", 200).into_id(), "serial/200");
    }

    #[test]
    fn group_runs_and_respects_filter() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
        };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("x", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        g.finish();
        assert!(!ran, "filter must skip non-matching benchmarks");
    }
}
