//! In-tree stand-in for the `crossbeam` crate, so the workspace builds
//! without a network registry. Only the `channel` module is provided,
//! backed by `std::sync::mpsc` — whose channels have been crossbeam-based
//! in the standard library since Rust 1.72, so `Sender` is `Sync` and the
//! semantics (unbounded, FIFO per producer) match what the comm layer
//! expects.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Create an unbounded MPSC channel, mirroring
    /// `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(41usize).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
    }

    #[test]
    fn recv_timeout_times_out_when_empty() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn sender_is_usable_from_many_threads() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for i in 0..8 {
                let txc = tx.clone();
                s.spawn(move || txc.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }
}
