//! A persistent worker-thread pool with a broadcast ("run this closure on
//! every participant") primitive, plus a spin barrier for level-synchronized
//! kernels.
//!
//! The level-scheduled triangular solves dispatch one job per solve and
//! synchronize between levels with [`SpinBarrier`]s *inside* the job, so the
//! per-level cost is a barrier (~100 ns hot) rather than a thread spawn
//! (~10 µs). Workers spin briefly after finishing a job before sleeping on a
//! condvar, which keeps them hot across the back-to-back dispatches of a
//! solver iteration.
//!
//! Dispatch is exclusive: [`try_broadcast`] returns `false` without running
//! the closure when another thread (e.g. a different in-process rank) holds
//! the pool, and the caller falls back to its serial path. That makes
//! oversubscription from rank-level parallelism degrade gracefully instead
//! of queueing, and makes nested broadcasts (a worker re-entering the pool)
//! impossible by construction.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on pool size; requests beyond it are refused (the caller
/// runs serially). Far above any sane `RSPARSE_THREADS` value.
pub const MAX_POOL_THREADS: usize = 256;

/// Spin iterations before a waiter yields the CPU (oversubscribed hosts).
const BARRIER_SPINS: u32 = 1 << 12;

/// Spin iterations a worker polls for the next job before sleeping.
const WORKER_SPINS: u32 = 1 << 14;

/// A centralized sense-reversing spin barrier for a fixed participant
/// count. `wait` spins on the generation word and yields after a bounded
/// number of spins so oversubscribed hosts make progress.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Barrier for exactly `n` participants (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        SpinBarrier { n, count: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    /// Block until all `n` participants have called `wait` this generation.
    #[inline]
    pub fn wait(&self) {
        if self.n <= 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
                spins += 1;
                if spins >= BARRIER_SPINS {
                    std::thread::yield_now();
                    spins = 0;
                }
            }
        }
    }
}

/// A published broadcast job: a type-erased borrow of the caller's closure.
/// The pointer is only dereferenced while its generation is current, and
/// `try_broadcast` does not return until every participant acknowledged
/// completion, so the borrow never outlives the closure.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    threads: usize,
    generation: u64,
}
// SAFETY: the raw pointer is only shared with pool workers under the
// generation protocol described above; the pointee is `Sync`.
unsafe impl Send for Job {}

struct Shared {
    /// Generation counter workers poll; bumped on publish.
    generation: AtomicU64,
    job: Mutex<Option<Job>>,
    start: Condvar,
    /// Participants (excluding the caller) that finished the current job.
    done: AtomicUsize,
}

struct Pool {
    shared: std::sync::Arc<Shared>,
    /// Exclusive dispatch: holds worker-count bookkeeping.
    dispatch: Mutex<usize>,
}

fn worker_loop(id: usize, shared: std::sync::Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        // Fast path: spin-poll for the next generation so back-to-back
        // dispatches (a solver's inner loop) never pay a condvar wake.
        let mut spins = 0u32;
        while shared.generation.load(Ordering::Acquire) == seen && spins < WORKER_SPINS {
            std::hint::spin_loop();
            spins += 1;
        }
        if shared.generation.load(Ordering::Acquire) == seen {
            let mut guard = shared.job.lock().unwrap_or_else(|e| e.into_inner());
            while shared.generation.load(Ordering::Acquire) == seen {
                guard = shared.start.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        }
        let (f, threads, generation) = {
            let guard = shared.job.lock().unwrap_or_else(|e| e.into_inner());
            let job = guard.as_ref().expect("generation bumped ⇒ job published");
            (job.f, job.threads, job.generation)
        };
        seen = generation;
        if id < threads {
            // SAFETY: the caller blocks in `try_broadcast` until `done`
            // reaches `threads − 1`, so the closure outlives this call.
            let f = unsafe { &*f };
            f(id);
            shared.done.fetch_add(1, Ordering::AcqRel);
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: std::sync::Arc::new(Shared {
            generation: AtomicU64::new(0),
            job: Mutex::new(None),
            start: Condvar::new(),
            done: AtomicUsize::new(0),
        }),
        dispatch: Mutex::new(0),
    })
}

/// Run `f(tid)` for every `tid` in `0..threads`, with `tid == 0` on the
/// calling thread and the rest on persistent pool workers. Returns `true`
/// once every participant finished.
///
/// Returns `false` — without calling `f` at all — when the fan-out cannot
/// happen: `threads < 2`, the pool is busy with another dispatch (another
/// in-process rank, or a nested call from a worker), or `threads` exceeds
/// [`MAX_POOL_THREADS`]. Callers must then run their serial path. Because
/// participation is all-or-nothing, closures may contain [`SpinBarrier`]s
/// sized for exactly `threads` participants.
pub fn try_broadcast<F>(threads: usize, f: F) -> bool
where
    F: Fn(usize) + Sync,
{
    if threads < 2 || threads > MAX_POOL_THREADS {
        return false;
    }
    let pool = pool();
    let Ok(mut workers) = pool.dispatch.try_lock() else {
        return false;
    };
    // Grow the worker set on demand (ids 1..threads; the caller is tid 0).
    while *workers + 1 < threads {
        let id = *workers + 1;
        let shared = std::sync::Arc::clone(&pool.shared);
        let spawned = std::thread::Builder::new()
            .name(format!("rsparse-pool-{id}"))
            .spawn(move || worker_loop(id, shared))
            .is_ok();
        if !spawned {
            return false;
        }
        *workers += 1;
    }

    let shared = &pool.shared;
    shared.done.store(0, Ordering::Relaxed);
    // Erase the closure's lifetime for the workers; see `Job` for why this
    // is sound.
    let f_ref: &(dyn Fn(usize) + Sync) = &f;
    let erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
            f_ref,
        )
    };
    {
        let mut guard = shared.job.lock().unwrap_or_else(|e| e.into_inner());
        let generation = shared.generation.load(Ordering::Relaxed) + 1;
        *guard = Some(Job { f: erased, threads, generation });
        shared.generation.store(generation, Ordering::Release);
        shared.start.notify_all();
    }
    f(0);
    let mut spins = 0u32;
    while shared.done.load(Ordering::Acquire) != threads - 1 {
        std::hint::spin_loop();
        spins += 1;
        if spins >= BARRIER_SPINS {
            std::thread::yield_now();
            spins = 0;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_tid_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        assert!(try_broadcast(4, |tid| {
            hits[tid].fetch_add(1, Ordering::SeqCst);
        }));
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn single_thread_requests_are_refused() {
        assert!(!try_broadcast(1, |_| panic!("must not run")));
        assert!(!try_broadcast(0, |_| panic!("must not run")));
        assert!(!try_broadcast(MAX_POOL_THREADS + 1, |_| panic!("must not run")));
    }

    #[test]
    fn barrier_orders_level_writes() {
        // Each of 3 participants appends its level-stamped contribution;
        // the barrier guarantees level k is fully visible before k+1 runs.
        let levels = 16usize;
        let t = 3usize;
        let sum = AtomicUsize::new(0);
        let barrier = SpinBarrier::new(t);
        let checks = AtomicUsize::new(0);
        assert!(try_broadcast(t, |_tid| {
            for lvl in 0..levels {
                sum.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                // After the barrier every participant's add for this level
                // is visible.
                if sum.load(Ordering::SeqCst) >= (lvl + 1) * t {
                    checks.fetch_add(1, Ordering::SeqCst);
                }
                barrier.wait();
            }
        }));
        assert_eq!(sum.load(Ordering::SeqCst), levels * t);
        assert_eq!(checks.load(Ordering::SeqCst), levels * t);
    }

    #[test]
    fn repeated_broadcasts_reuse_workers() {
        for round in 0..50usize {
            let total = AtomicUsize::new(0);
            assert!(try_broadcast(3, |tid| {
                total.fetch_add(tid + 1, Ordering::SeqCst);
            }));
            assert_eq!(total.load(Ordering::SeqCst), 6, "round {round}");
        }
    }
}
