//! In-tree stand-in for the `rayon` crate, so the workspace builds without
//! a network registry. It implements exactly the subset the workspace
//! uses — `par_iter_mut().enumerate().for_each(..)` over slices — with
//! real data parallelism via `std::thread::scope` chunking for large
//! inputs and a sequential fast path for small ones.

pub mod pool;

/// Parallelism threshold: below this many elements the scheduling overhead
/// of spawning scoped threads dwarfs the work, so we stay sequential.
const PAR_THRESHOLD: usize = 4096;

fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Mutable parallel iterator over a slice (creation point of the chain).
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair every element with its index, preserving slice order.
    pub fn enumerate(self) -> EnumerateParIterMut<'a, T> {
        EnumerateParIterMut { slice: self.slice }
    }

    /// Apply `f` to every element, in parallel when the slice is large.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Send + Sync,
    {
        self.enumerate().for_each(|(_, v)| f(v));
    }
}

/// Enumerated mutable parallel iterator.
pub struct EnumerateParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> EnumerateParIterMut<'a, T> {
    /// Apply `f` to every `(index, element)` pair, chunked across threads
    /// when the slice is large enough to amortize spawning.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Send + Sync,
    {
        let n = self.slice.len();
        let workers = worker_count();
        if n < PAR_THRESHOLD || workers < 2 {
            for (i, v) in self.slice.iter_mut().enumerate() {
                f((i, v));
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        let fref = &f;
        std::thread::scope(|scope| {
            for (c, part) in self.slice.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                scope.spawn(move || {
                    for (i, v) in part.iter_mut().enumerate() {
                        fref((base + i, v));
                    }
                });
            }
        });
    }
}

/// The trait that puts `par_iter_mut` on slices and vectors, mirroring
/// rayon's `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: Send;
    /// Create a mutable parallel iterator borrowing `self`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self.as_mut_slice() }
    }
}

/// Rayon-style prelude: import the traits that add parallel methods.
pub mod prelude {
    pub use crate::IntoParallelRefMutIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn small_slices_run_sequentially_and_correctly() {
        let mut v: Vec<usize> = (0..100).collect();
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x += i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn large_slices_use_parallel_chunks() {
        let mut v: Vec<usize> = vec![0; 100_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 3 * i));
    }

    #[test]
    fn plain_for_each_without_enumerate() {
        let mut v = vec![1.0f64; 10_000];
        v.par_iter_mut().for_each(|x| *x *= 2.0);
        assert!(v.iter().all(|&x| x == 2.0));
    }
}
