//! Grid hierarchies: the chain of operators, prolongations and
//! restrictions a cycle walks.

use rsparse::CsrMatrix;

use crate::transfer::{coarsen_m, prolongation, restriction};
use crate::{MgError, MgResultT};

/// How coarse-level operators are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoarseOperator {
    /// Galerkin triple product `R·A·P` (works for any fine operator).
    #[default]
    Galerkin,
    /// Rediscretize the PDE on the coarse grid (caller supplies the
    /// discretization via a function of `m`).
    Rediscretize,
}

/// One level of the hierarchy.
#[derive(Debug, Clone)]
pub struct Level {
    /// The operator at this level.
    pub a: CsrMatrix,
    /// Interior points per side at this level.
    pub m: usize,
    /// Prolongation from the next-coarser level into this one (`None` on
    /// the coarsest level).
    pub p: Option<CsrMatrix>,
    /// Restriction from this level to the next-coarser one.
    pub r: Option<CsrMatrix>,
}

/// A full multigrid hierarchy, finest first.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<Level>,
}

impl Hierarchy {
    /// Build from the finest operator on an `m × m` interior grid.
    /// Coarsens while `m` stays odd and above `min_m`, up to `max_levels`.
    /// `rediscretize` supplies coarse operators when
    /// [`CoarseOperator::Rediscretize`] is selected.
    pub fn build(
        a_fine: CsrMatrix,
        m_fine: usize,
        coarse_op: CoarseOperator,
        max_levels: usize,
        min_m: usize,
        rediscretize: Option<&dyn Fn(usize) -> CsrMatrix>,
    ) -> MgResultT<Self> {
        if a_fine.rows() != m_fine * m_fine {
            return Err(MgError::BadConfig(format!(
                "operator order {} does not match grid m = {m_fine}",
                a_fine.rows()
            )));
        }
        if max_levels == 0 {
            return Err(MgError::BadConfig("max_levels must be at least 1".into()));
        }
        let mut levels = vec![Level { a: a_fine, m: m_fine, p: None, r: None }];
        while levels.len() < max_levels {
            let m = levels.last().expect("nonempty").m;
            let Ok(mc) = coarsen_m(m) else { break };
            if mc < min_m {
                break;
            }
            let p = prolongation(mc);
            let r = restriction(mc);
            let a_coarse = match coarse_op {
                CoarseOperator::Galerkin => {
                    let fine = &levels.last().expect("nonempty").a;
                    rsparse::ops::triple_product(&r, fine, &p)?
                }
                CoarseOperator::Rediscretize => {
                    let f = rediscretize.ok_or_else(|| {
                        MgError::BadConfig(
                            "Rediscretize needs a discretization callback".into(),
                        )
                    })?;
                    let a = f(mc);
                    if a.rows() != mc * mc {
                        return Err(MgError::BadConfig(format!(
                            "rediscretization returned order {} for m = {mc}",
                            a.rows()
                        )));
                    }
                    a
                }
            };
            // Transfers are owned by the *finer* level.
            let top = levels.last_mut().expect("nonempty");
            top.p = Some(p);
            top.r = Some(r);
            levels.push(Level { a: a_coarse, m: mc, p: None, r: None });
        }
        Ok(Hierarchy { levels })
    }

    /// Number of levels (≥ 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level accessor, 0 = finest.
    pub fn level(&self, l: usize) -> &Level {
        &self.levels[l]
    }

    /// The coarsest level.
    pub fn coarsest(&self) -> &Level {
        self.levels.last().expect("at least one level")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsparse::generate;

    #[test]
    fn builds_full_depth_for_power_of_two_grids() {
        // m = 15 → 7 → 3 → 1.
        let a = generate::laplacian_2d(15);
        let h = Hierarchy::build(a, 15, CoarseOperator::Galerkin, 10, 1, None).unwrap();
        assert_eq!(h.num_levels(), 4);
        assert_eq!(
            (0..4).map(|l| h.level(l).m).collect::<Vec<_>>(),
            vec![15, 7, 3, 1]
        );
        // Transfers exist everywhere except the coarsest.
        for l in 0..3 {
            assert!(h.level(l).p.is_some());
            assert!(h.level(l).r.is_some());
        }
        assert!(h.coarsest().p.is_none());
        assert_eq!(h.coarsest().a.rows(), 1);
    }

    #[test]
    fn respects_max_levels_and_min_m() {
        let a = generate::laplacian_2d(15);
        let h = Hierarchy::build(a.clone(), 15, CoarseOperator::Galerkin, 2, 1, None).unwrap();
        assert_eq!(h.num_levels(), 2);
        let h = Hierarchy::build(a, 15, CoarseOperator::Galerkin, 10, 5, None).unwrap();
        // 15 → 7 (mc = 3 < 5 stops).
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.coarsest().m, 7);
    }

    #[test]
    fn even_grids_stop_coarsening() {
        let a = generate::laplacian_2d(8);
        let h = Hierarchy::build(a, 8, CoarseOperator::Galerkin, 10, 1, None).unwrap();
        assert_eq!(h.num_levels(), 1);
    }

    #[test]
    fn rediscretized_hierarchy_uses_callback() {
        let a = generate::laplacian_2d(7);
        let h = Hierarchy::build(
            a,
            7,
            CoarseOperator::Rediscretize,
            10,
            1,
            Some(&|m| generate::laplacian_2d(m)),
        )
        .unwrap();
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.level(1).a, generate::laplacian_2d(3));
        // Missing callback is an error.
        let a = generate::laplacian_2d(7);
        assert!(Hierarchy::build(a, 7, CoarseOperator::Rediscretize, 10, 1, None).is_err());
    }

    #[test]
    fn mismatched_order_is_rejected() {
        let a = generate::laplacian_2d(7);
        assert!(Hierarchy::build(a, 6, CoarseOperator::Galerkin, 10, 1, None).is_err());
    }
}
