//! Inter-grid transfer operators for vertex-centred 2-D grids with the
//! standard coarsening `m_f = 2·m_c + 1` (fine point `(2i+1, 2j+1)`
//! coincides with coarse point `(i, j)`).

use rsparse::{CooMatrix, CsrMatrix};

use crate::{MgError, MgResultT};

/// Number of interior points per side after one coarsening step, if legal.
pub fn coarsen_m(m_fine: usize) -> MgResultT<usize> {
    if m_fine >= 3 && m_fine % 2 == 1 {
        Ok((m_fine - 1) / 2)
    } else {
        Err(MgError::NotCoarsenable { m: m_fine })
    }
}

/// Bilinear prolongation P: coarse grid (`m_c × m_c`) → fine grid
/// (`m_f × m_f`), `m_f = 2·m_c + 1`. Row = fine index, column = coarse
/// index; weights 1, 1/2, 1/4 by fine-point parity.
pub fn prolongation(m_coarse: usize) -> CsrMatrix {
    let m_fine = 2 * m_coarse + 1;
    let nf = m_fine * m_fine;
    let nc = m_coarse * m_coarse;
    let cidx = |i: usize, j: usize| i * m_coarse + j;
    let mut coo = CooMatrix::new(nf, nc);
    for fi in 0..m_fine {
        for fj in 0..m_fine {
            let frow = fi * m_fine + fj;
            let oi = fi % 2 == 1;
            let oj = fj % 2 == 1;
            match (oi, oj) {
                (true, true) => {
                    // Coincident point.
                    coo.push(frow, cidx(fi / 2, fj / 2), 1.0).expect("bounds");
                }
                (true, false) => {
                    // Horizontal edge midpoint: neighbours (fi/2, fj/2−1)
                    // and (fi/2, fj/2), where existing.
                    let ci = fi / 2;
                    if fj >= 2 {
                        coo.push(frow, cidx(ci, fj / 2 - 1), 0.5).expect("bounds");
                    }
                    if fj / 2 < m_coarse {
                        coo.push(frow, cidx(ci, fj / 2), 0.5).expect("bounds");
                    }
                }
                (false, true) => {
                    let cj = fj / 2;
                    if fi >= 2 {
                        coo.push(frow, cidx(fi / 2 - 1, cj), 0.5).expect("bounds");
                    }
                    if fi / 2 < m_coarse {
                        coo.push(frow, cidx(fi / 2, cj), 0.5).expect("bounds");
                    }
                }
                (false, false) => {
                    // Cell centre: up to four diagonal coarse neighbours
                    // (fewer next to the boundary, where the Dirichlet
                    // value 0 contributes nothing).
                    let base_i = fi / 2;
                    let base_j = fj / 2;
                    for (ci, cj) in [
                        (base_i.wrapping_sub(1), base_j.wrapping_sub(1)),
                        (base_i.wrapping_sub(1), base_j),
                        (base_i, base_j.wrapping_sub(1)),
                        (base_i, base_j),
                    ] {
                        if ci < m_coarse && cj < m_coarse {
                            coo.push(frow, cidx(ci, cj), 0.25).expect("bounds");
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

/// Full-weighting restriction R = ¼·Pᵀ (the transpose scaling that keeps
/// the Galerkin coarse operator consistent with rediscretization for the
/// 5-point Laplacian).
pub fn restriction(m_coarse: usize) -> CsrMatrix {
    rsparse::ops::scale(0.25, &prolongation(m_coarse).transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarsening_arithmetic() {
        assert_eq!(coarsen_m(7).unwrap(), 3);
        assert_eq!(coarsen_m(31).unwrap(), 15);
        assert!(coarsen_m(8).is_err());
        assert!(coarsen_m(1).is_err());
    }

    #[test]
    fn prolongation_shape_and_row_sums() {
        let p = prolongation(3);
        assert_eq!(p.shape(), (49, 9));
        // Interior fine rows interpolate a partition of unity (row sum 1);
        // rows whose stencil touches the boundary sum to less.
        let ones = vec![1.0; 9];
        let at_coarse_one = p.matvec(&ones).unwrap();
        let m_fine = 7;
        for fi in 1..m_fine - 1 {
            for fj in 1..m_fine - 1 {
                let v = at_coarse_one[fi * m_fine + fj];
                assert!((v - 1.0).abs() < 1e-14, "({fi},{fj}): {v}");
            }
        }
        // Corner fine point (0,0) only sees coarse (0,0) with weight 1/4.
        assert!((at_coarse_one[0] - 0.25).abs() < 1e-14);
    }

    #[test]
    fn coincident_points_are_injected_exactly() {
        let m_c = 3;
        let p = prolongation(m_c);
        let m_f = 7;
        let mut e = vec![0.0; 9];
        e[4] = 1.0; // coarse centre (1,1)
        let fine = p.matvec(&e).unwrap();
        // Fine (3,3) coincides with coarse (1,1).
        assert_eq!(fine[3 * m_f + 3], 1.0);
        // Fine (3,2): horizontal midpoint between coarse (1,0) and (1,1).
        assert_eq!(fine[3 * m_f + 2], 0.5);
        // Fine (2,2): centre among four coarse points incl. (1,1).
        assert_eq!(fine[2 * m_f + 2], 0.25);
    }

    #[test]
    fn restriction_is_quarter_transpose() {
        let p = prolongation(3);
        let r = restriction(3);
        assert_eq!(r.shape(), (9, 49));
        let pt = p.transpose();
        for (row, col, v) in r.iter() {
            assert!((v - 0.25 * pt.get(row, col)).abs() < 1e-15);
        }
    }

    #[test]
    fn galerkin_coarse_operator_satisfies_variational_property() {
        // With R = ¼·Pᵀ, the Galerkin operator obeys
        // ⟨A_c·u, v⟩ = ¼·⟨A_f·P·u, P·v⟩ for all coarse u, v — the defining
        // identity of variational coarsening. (The stencil itself becomes
        // 9-point: bilinear interpolation of the 5-point operator.)
        let m_c = 3;
        let a_f = rsparse::generate::laplacian_2d(7);
        let p = prolongation(m_c);
        let r = restriction(m_c);
        let a_c = rsparse::ops::triple_product(&r, &a_f, &p).unwrap();
        assert_eq!(a_c.shape(), (9, 9));
        for seed in 0..4 {
            let u = rsparse::generate::random_vector(9, seed);
            let v = rsparse::generate::random_vector(9, seed + 100);
            let lhs = rsparse::dense::dot(&a_c.matvec(&u).unwrap(), &v);
            let pu = p.matvec(&u).unwrap();
            let pv = p.matvec(&v).unwrap();
            let rhs = 0.25 * rsparse::dense::dot(&a_f.matvec(&pu).unwrap(), &pv);
            assert!((lhs - rhs).abs() < 1e-11 * (1.0 + rhs.abs()), "{lhs} vs {rhs}");
        }
        // SPD fine operator + full-rank P ⇒ symmetric coarse operator.
        let at = a_c.transpose();
        for (rr, cc, v) in a_c.iter() {
            assert!((at.get(rr, cc) - v).abs() < 1e-12);
        }
        // Diagonal stays positive.
        for d in a_c.diagonal().unwrap() {
            assert!(d > 0.0);
        }
    }
}
