//! Smoothers: the cheap stationary iterations that kill high-frequency
//! error between grid transfers.

use rsparse::CsrMatrix;

use crate::{MgError, MgResultT};

/// Smoother selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoother {
    /// Weighted (damped) Jacobi; ω = 4/5 is optimal for the 2-D Laplacian.
    Jacobi {
        /// Damping factor.
        omega: f64,
    },
    /// Forward Gauss–Seidel.
    GaussSeidel,
    /// Symmetric Gauss–Seidel (forward then backward sweep).
    SymGaussSeidel,
}

impl Smoother {
    /// Run `sweeps` smoothing iterations on A·x = b, updating `x`.
    pub fn smooth(
        self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        sweeps: usize,
    ) -> MgResultT<()> {
        match self {
            Smoother::Jacobi { omega } => jacobi(a, b, x, sweeps, omega),
            Smoother::GaussSeidel => {
                for _ in 0..sweeps {
                    gs_forward(a, b, x)?;
                }
                Ok(())
            }
            Smoother::SymGaussSeidel => {
                for _ in 0..sweeps {
                    gs_forward(a, b, x)?;
                    gs_backward(a, b, x)?;
                }
                Ok(())
            }
        }
    }
}

fn diag_of(a: &CsrMatrix) -> MgResultT<Vec<f64>> {
    let d = a.diagonal()?;
    if let Some(i) = d.iter().position(|&v| v == 0.0) {
        return Err(MgError::Sparse(format!("zero diagonal at row {i}")));
    }
    Ok(d)
}

fn jacobi(a: &CsrMatrix, b: &[f64], x: &mut [f64], sweeps: usize, omega: f64) -> MgResultT<()> {
    let d = diag_of(a)?;
    let n = a.rows();
    let mut xnew = vec![0.0; n];
    for _ in 0..sweeps {
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut acc = b[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c != i {
                    acc -= v * x[c];
                }
            }
            xnew[i] = (1.0 - omega) * x[i] + omega * acc / d[i];
        }
        x.copy_from_slice(&xnew);
    }
    Ok(())
}

fn gs_forward(a: &CsrMatrix, b: &[f64], x: &mut [f64]) -> MgResultT<()> {
    let d = diag_of(a)?;
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let mut acc = b[i];
        for (&c, &v) in cols.iter().zip(vals) {
            if c != i {
                acc -= v * x[c];
            }
        }
        x[i] = acc / d[i];
    }
    Ok(())
}

fn gs_backward(a: &CsrMatrix, b: &[f64], x: &mut [f64]) -> MgResultT<()> {
    let d = diag_of(a)?;
    for i in (0..a.rows()).rev() {
        let (cols, vals) = a.row(i);
        let mut acc = b[i];
        for (&c, &v) in cols.iter().zip(vals) {
            if c != i {
                acc -= v * x[c];
            }
        }
        x[i] = acc / d[i];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsparse::generate;

    fn residual_norm(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        rsparse::dense::norm2(&rsparse::ops::residual(a, x, b).unwrap())
    }

    #[test]
    fn all_smoothers_contract_the_residual() {
        let a = generate::laplacian_2d(9);
        let b = generate::random_vector(81, 4);
        for sm in [
            Smoother::Jacobi { omega: 0.8 },
            Smoother::GaussSeidel,
            Smoother::SymGaussSeidel,
        ] {
            let mut x = vec![0.0; 81];
            let r0 = residual_norm(&a, &x, &b);
            sm.smooth(&a, &b, &mut x, 5).unwrap();
            let r5 = residual_norm(&a, &x, &b);
            assert!(r5 < r0 * 0.9, "{sm:?}: {r5} vs {r0}");
        }
    }

    #[test]
    fn jacobi_damps_high_frequency_faster_than_low() {
        // The defining property of a smoother: the oscillatory error mode
        // decays much faster than the smooth one.
        let m = 15;
        let a = generate::laplacian_2d(m);
        let n = m * m;
        let b = vec![0.0; n]; // solve A e = 0 starting from the error mode
        let mode = |k: usize| -> Vec<f64> {
            let mut v = vec![0.0; n];
            for i in 0..m {
                for j in 0..m {
                    let (x, y) = (
                        (i as f64 + 1.0) / (m as f64 + 1.0),
                        (j as f64 + 1.0) / (m as f64 + 1.0),
                    );
                    v[i * m + j] = (k as f64 * std::f64::consts::PI * x).sin()
                        * (k as f64 * std::f64::consts::PI * y).sin();
                }
            }
            v
        };
        let decay = |k: usize| {
            let mut x = mode(k);
            let e0 = rsparse::dense::norm2(&x);
            Smoother::Jacobi { omega: 0.8 }.smooth(&a, &b, &mut x, 3).unwrap();
            rsparse::dense::norm2(&x) / e0
        };
        let smooth_decay = decay(1);
        let rough_decay = decay(m - 1);
        assert!(
            rough_decay < 0.3 && smooth_decay > 0.7,
            "rough {rough_decay} vs smooth {smooth_decay}"
        );
    }

    #[test]
    fn gauss_seidel_solves_small_system_eventually() {
        let a = generate::random_diag_dominant(10, 2, 3);
        let x_true = generate::random_vector(10, 5);
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; 10];
        Smoother::GaussSeidel.smooth(&a, &b, &mut x, 200).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_diagonal_is_rejected() {
        let a = rsparse::CooMatrix::from_triplets(2, 2, &[0, 1], &[1, 0], &[1.0, 1.0])
            .unwrap()
            .to_csr();
        let b = vec![1.0, 1.0];
        let mut x = vec![0.0, 0.0];
        assert!(Smoother::GaussSeidel.smooth(&a, &b, &mut x, 1).is_err());
    }
}
