//! `rmg` — a geometric multigrid solver package (the HYPRE-flavoured
//! multilevel member of the CCA-LISI solver family).
//!
//! The paper's requirements list (§2.2) singles out *multilevel method
//! support*: multilevel solvers alternate between refinement levels, may
//! use different solvers per level, and force the common interface to be
//! re-entrant (usage scenario §5.2e). RMG exercises all of that:
//!
//! * [`transfer`] — bilinear prolongation and full-weighting restriction
//!   between vertex-centred grids (`m_f = 2·m_c + 1`);
//! * [`hierarchy`] — grid hierarchies with Galerkin (R·A·P) or
//!   rediscretized coarse operators;
//! * [`smoother`] — weighted Jacobi, Gauss–Seidel and SSOR sweeps;
//! * [`cycle`] — V- and W-cycles and the [`RmgSolver`] driver, whose
//!   coarsest-grid solver is *pluggable*: a dense LU by default, or any
//!   user callback — which is how the LISI adapter demonstrates recursion
//!   (a LISI solver used as the coarse solver inside another LISI solver).

#![warn(missing_docs)]

pub mod cycle;
pub mod hierarchy;
pub mod smoother;
pub mod transfer;

pub use cycle::{CoarseSolver, CycleType, MgConfig, MgResult, RmgSolver};
pub use hierarchy::{CoarseOperator, Hierarchy};
pub use smoother::Smoother;

/// Errors from the RMG package.
#[derive(Debug, Clone, PartialEq)]
pub enum MgError {
    /// The grid cannot be coarsened (needs `m` odd and ≥ 3).
    NotCoarsenable {
        /// Grid points per side at the level that failed.
        m: usize,
    },
    /// Substrate failure.
    Sparse(String),
    /// Bad configuration.
    BadConfig(String),
    /// The user coarse-solver callback failed.
    CoarseSolver(String),
}

impl std::fmt::Display for MgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MgError::NotCoarsenable { m } => {
                write!(f, "grid with m = {m} interior points per side cannot be coarsened")
            }
            MgError::Sparse(m) => write!(f, "substrate error: {m}"),
            MgError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            MgError::CoarseSolver(m) => write!(f, "coarse solver failed: {m}"),
        }
    }
}

impl std::error::Error for MgError {}

impl From<rsparse::SparseError> for MgError {
    fn from(e: rsparse::SparseError) -> Self {
        MgError::Sparse(e.to_string())
    }
}

/// Result alias.
pub type MgResultT<T> = Result<T, MgError>;
