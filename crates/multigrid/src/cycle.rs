//! V/W-cycles and the multigrid solver driver.

use rsparse::CsrMatrix;

use crate::hierarchy::Hierarchy;
use crate::smoother::Smoother;
use crate::{MgError, MgResultT};

/// Cycle shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleType {
    /// One coarse-grid visit per level.
    V,
    /// Two coarse-grid visits per level (more robust, more work).
    W,
}

/// A pluggable coarse-solve callback `(a, b) -> x`.
pub type CoarseCallback =
    Box<dyn Fn(&CsrMatrix, &[f64]) -> Result<Vec<f64>, String> + Send + Sync>;

/// The coarsest-grid solver. Pluggable so that a *different package* can
/// serve the coarse problem — the recursion scenario of paper §5.2e.
pub enum CoarseSolver {
    /// Dense LU on the coarsest operator (default).
    DenseLu,
    /// A user callback `(a, b) -> x`; any failure aborts the cycle.
    Callback(CoarseCallback),
}

impl std::fmt::Debug for CoarseSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoarseSolver::DenseLu => f.write_str("DenseLu"),
            CoarseSolver::Callback(_) => f.write_str("Callback(..)"),
        }
    }
}

/// Multigrid configuration.
#[derive(Debug)]
pub struct MgConfig {
    /// Pre-smoothing sweeps.
    pub nu1: usize,
    /// Post-smoothing sweeps.
    pub nu2: usize,
    /// Cycle shape.
    pub cycle: CycleType,
    /// The smoother.
    pub smoother: Smoother,
    /// Coarsest-grid solver.
    pub coarse: CoarseSolver,
    /// Relative tolerance on ‖r‖/‖b‖ for [`RmgSolver::solve`].
    pub rtol: f64,
    /// Cycle cap for [`RmgSolver::solve`].
    pub max_cycles: usize,
}

impl Default for MgConfig {
    fn default() -> Self {
        MgConfig {
            nu1: 2,
            nu2: 2,
            cycle: CycleType::V,
            smoother: Smoother::Jacobi { omega: 0.8 },
            coarse: CoarseSolver::DenseLu,
            rtol: 1e-8,
            max_cycles: 100,
        }
    }
}

/// Outcome of an [`RmgSolver::solve`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct MgResult {
    /// Cycles performed.
    pub cycles: usize,
    /// Converged within `max_cycles`?
    pub converged: bool,
    /// ‖b − A·x‖₂ / ‖b‖₂ at exit.
    pub relative_residual: f64,
    /// Residual-norm history per cycle (entry 0 = initial).
    pub history: Vec<f64>,
}

/// The multigrid solver: a hierarchy plus a configuration.
#[derive(Debug)]
pub struct RmgSolver {
    hierarchy: Hierarchy,
    config: MgConfig,
}

impl RmgSolver {
    /// Assemble from a prebuilt hierarchy.
    pub fn new(hierarchy: Hierarchy, config: MgConfig) -> MgResultT<Self> {
        if config.nu1 + config.nu2 == 0 {
            return Err(MgError::BadConfig("need at least one smoothing sweep".into()));
        }
        if config.max_cycles == 0 {
            return Err(MgError::BadConfig("max_cycles must be positive".into()));
        }
        Ok(RmgSolver { hierarchy, config })
    }

    /// Borrow the hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// One multigrid cycle on level `l` for A_l·x = b (x updated in
    /// place).
    fn cycle(&self, l: usize, b: &[f64], x: &mut [f64]) -> MgResultT<()> {
        let level = self.hierarchy.level(l);
        let a = &level.a;
        // Coarsest level: direct solve.
        if l + 1 == self.hierarchy.num_levels() {
            let sol = match &self.config.coarse {
                CoarseSolver::DenseLu => {
                    a.to_dense().solve(b).map_err(|e| MgError::Sparse(e.to_string()))?
                }
                CoarseSolver::Callback(f) => f(a, b).map_err(MgError::CoarseSolver)?,
            };
            x.copy_from_slice(&sol);
            return Ok(());
        }
        let visits = match self.config.cycle {
            CycleType::V => 1,
            CycleType::W => 2,
        };
        self.config.smoother.smooth(a, b, x, self.config.nu1)?;
        for _ in 0..visits {
            // Residual, restrict, recurse, correct.
            let r = rsparse::ops::residual(a, x, b)?;
            let restrict = level.r.as_ref().expect("non-coarsest level has R");
            let rc = restrict.matvec(&r)?;
            let mut ec = vec![0.0; rc.len()];
            self.cycle(l + 1, &rc, &mut ec)?;
            let p = level.p.as_ref().expect("non-coarsest level has P");
            let ef = p.matvec(&ec)?;
            rsparse::dense::axpy(1.0, &ef, x);
        }
        self.config.smoother.smooth(a, b, x, self.config.nu2)?;
        Ok(())
    }

    /// Run one cycle on the finest level (the preconditioner-style entry
    /// point).
    pub fn apply_cycle(&self, b: &[f64], x: &mut [f64]) -> MgResultT<()> {
        self.cycle(0, b, x)
    }

    /// Iterate cycles until the relative residual drops below `rtol`.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) -> MgResultT<MgResult> {
        let a = &self.hierarchy.level(0).a;
        let bnorm = rsparse::dense::norm2(b).max(f64::MIN_POSITIVE);
        let mut history = Vec::with_capacity(self.config.max_cycles + 1);
        let r0 = rsparse::dense::norm2(&rsparse::ops::residual(a, x, b)?);
        history.push(r0);
        let mut rel = r0 / bnorm;
        let mut cycles = 0usize;
        while rel > self.config.rtol && cycles < self.config.max_cycles {
            self.cycle(0, b, x)?;
            cycles += 1;
            let rn = rsparse::dense::norm2(&rsparse::ops::residual(a, x, b)?);
            history.push(rn);
            rel = rn / bnorm;
            if !rel.is_finite() {
                return Err(MgError::Sparse("residual diverged".into()));
            }
        }
        Ok(MgResult {
            cycles,
            converged: rel <= self.config.rtol,
            relative_residual: rel,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CoarseOperator;
    use rsparse::generate;

    fn poisson_solver(m: usize, config: MgConfig) -> RmgSolver {
        let a = generate::laplacian_2d(m);
        let h = Hierarchy::build(a, m, CoarseOperator::Galerkin, 10, 1, None).unwrap();
        RmgSolver::new(h, config).unwrap()
    }

    #[test]
    fn v_cycle_solves_poisson_fast() {
        let m = 31;
        let solver = poisson_solver(m, MgConfig::default());
        let n = m * m;
        let x_true = generate::random_vector(n, 7);
        let a = generate::laplacian_2d(m);
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; n];
        let res = solver.solve(&b, &mut x).unwrap();
        assert!(res.converged);
        assert!(
            res.cycles <= 15,
            "multigrid should converge in O(1) cycles, took {}",
            res.cycles
        );
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn cycle_count_is_mesh_independent() {
        // The multigrid signature: iterations don't grow with the grid.
        let counts: Vec<usize> = [7usize, 15, 31]
            .iter()
            .map(|&m| {
                let solver = poisson_solver(m, MgConfig::default());
                let n = m * m;
                let b = vec![1.0; n];
                let mut x = vec![0.0; n];
                solver.solve(&b, &mut x).unwrap().cycles
            })
            .collect();
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(spread <= 3, "cycle counts should be nearly constant: {counts:?}");
    }

    #[test]
    fn w_cycle_converges_at_least_as_fast_per_cycle() {
        let m = 15;
        let mk = |cycle| {
            poisson_solver(
                m,
                MgConfig { cycle, ..MgConfig::default() },
            )
        };
        let b = vec![1.0; m * m];
        let mut xv = vec![0.0; m * m];
        let rv = mk(CycleType::V).solve(&b, &mut xv).unwrap();
        let mut xw = vec![0.0; m * m];
        let rw = mk(CycleType::W).solve(&b, &mut xw).unwrap();
        assert!(rv.converged && rw.converged);
        assert!(rw.cycles <= rv.cycles);
    }

    #[test]
    fn gauss_seidel_smoother_beats_jacobi_cycles() {
        let m = 15;
        let b = vec![1.0; m * m];
        let run = |sm| {
            let solver = poisson_solver(m, MgConfig { smoother: sm, ..MgConfig::default() });
            let mut x = vec![0.0; m * m];
            solver.solve(&b, &mut x).unwrap().cycles
        };
        let j = run(Smoother::Jacobi { omega: 0.8 });
        let gs = run(Smoother::SymGaussSeidel);
        assert!(gs <= j, "sym-GS ({gs}) should need no more cycles than Jacobi ({j})");
    }

    #[test]
    fn history_is_strictly_decreasing_for_poisson() {
        let solver = poisson_solver(15, MgConfig::default());
        let b = vec![1.0; 225];
        let mut x = vec![0.0; 225];
        let res = solver.solve(&b, &mut x).unwrap();
        for w in res.history.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn callback_coarse_solver_is_invoked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let config = MgConfig {
            coarse: CoarseSolver::Callback(Box::new(move |a, b| {
                hits2.fetch_add(1, Ordering::Relaxed);
                a.to_dense().solve(b).map_err(|e| e.to_string())
            })),
            ..MgConfig::default()
        };
        let solver = poisson_solver(15, config);
        let b = vec![1.0; 225];
        let mut x = vec![0.0; 225];
        let res = solver.solve(&b, &mut x).unwrap();
        assert!(res.converged);
        assert_eq!(hits.load(Ordering::Relaxed), res.cycles);
    }

    #[test]
    fn failing_coarse_callback_aborts() {
        let config = MgConfig {
            coarse: CoarseSolver::Callback(Box::new(|_, _| Err("nope".into()))),
            ..MgConfig::default()
        };
        let solver = poisson_solver(7, config);
        let b = vec![1.0; 49];
        let mut x = vec![0.0; 49];
        assert!(matches!(solver.solve(&b, &mut x), Err(MgError::CoarseSolver(_))));
    }

    #[test]
    fn config_validation() {
        let a = generate::laplacian_2d(7);
        let h = Hierarchy::build(a, 7, CoarseOperator::Galerkin, 10, 1, None).unwrap();
        assert!(RmgSolver::new(
            h,
            MgConfig { nu1: 0, nu2: 0, ..MgConfig::default() }
        )
        .is_err());
    }

    #[test]
    fn single_level_hierarchy_degenerates_to_direct_solve() {
        // An even grid cannot coarsen: RMG becomes a dense solve.
        let m = 8;
        let a = generate::laplacian_2d(m);
        let h = Hierarchy::build(a.clone(), m, CoarseOperator::Galerkin, 10, 1, None).unwrap();
        let solver = RmgSolver::new(h, MgConfig::default()).unwrap();
        let x_true = generate::random_vector(64, 3);
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; 64];
        let res = solver.solve(&b, &mut x).unwrap();
        assert!(res.converged);
        assert_eq!(res.cycles, 1);
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9);
        }
    }
}
