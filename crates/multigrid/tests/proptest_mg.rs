//! Property tests on the multigrid package: transfer operators obey
//! their algebraic identities for any legal grid size, and the solver
//! converges from arbitrary right-hand sides.

use proptest::prelude::*;
use rmg::transfer::{coarsen_m, prolongation, restriction};
use rmg::{CoarseOperator, Hierarchy, MgConfig, RmgSolver};
use rsparse::generate;

/// Legal coarse sizes to build fine grids from (m_f = 2·m_c + 1).
fn coarse_sizes() -> impl Strategy<Value = usize> {
    1usize..12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prolongation_restriction_shapes_and_scaling(m_c in coarse_sizes()) {
        let m_f = 2 * m_c + 1;
        let p = prolongation(m_c);
        let r = restriction(m_c);
        prop_assert_eq!(p.shape(), (m_f * m_f, m_c * m_c));
        prop_assert_eq!(r.shape(), (m_c * m_c, m_f * m_f));
        // R = ¼·Pᵀ entrywise.
        let pt = p.transpose();
        for (row, col, v) in r.iter() {
            prop_assert!((v - 0.25 * pt.get(row, col)).abs() < 1e-15);
        }
        prop_assert_eq!(coarsen_m(m_f).unwrap(), m_c);
    }

    #[test]
    fn injection_property_holds_everywhere(m_c in coarse_sizes()) {
        // A coarse unit vector prolongates with weight exactly 1 at its
        // coincident fine point.
        let m_f = 2 * m_c + 1;
        let p = prolongation(m_c);
        for ci in 0..m_c {
            for cj in 0..m_c {
                let mut e = vec![0.0; m_c * m_c];
                e[ci * m_c + cj] = 1.0;
                let fine = p.matvec(&e).unwrap();
                let fi = 2 * ci + 1;
                let fj = 2 * cj + 1;
                prop_assert_eq!(fine[fi * m_f + fj], 1.0);
            }
        }
    }

    #[test]
    fn galerkin_coarse_operators_stay_symmetric_spd(m_c in 1usize..6) {
        let m_f = 2 * m_c + 1;
        let a = generate::laplacian_2d(m_f);
        let h = Hierarchy::build(a, m_f, CoarseOperator::Galerkin, 10, 1, None).unwrap();
        for l in 0..h.num_levels() {
            let al = &h.level(l).a;
            let at = al.transpose();
            for (r, c, v) in al.iter() {
                prop_assert!((at.get(r, c) - v).abs() < 1e-11);
            }
            for d in al.diagonal().unwrap() {
                prop_assert!(d > 0.0);
            }
        }
    }

    #[test]
    fn v_cycle_converges_from_any_rhs(seed in 0u64..100_000) {
        let m = 15;
        let a = generate::laplacian_2d(m);
        let h = Hierarchy::build(a.clone(), m, CoarseOperator::Galerkin, 10, 1, None).unwrap();
        let solver = RmgSolver::new(h, MgConfig::default()).unwrap();
        let b = generate::random_vector(m * m, seed);
        let mut x = vec![0.0; m * m];
        let res = solver.solve(&b, &mut x).unwrap();
        prop_assert!(res.converged, "cycles = {}", res.cycles);
        prop_assert!(res.cycles <= 20);
        let r = rsparse::ops::residual(&a, &x, &b).unwrap();
        let rel = rsparse::dense::norm2(&r)
            / rsparse::dense::norm2(&b).max(f64::MIN_POSITIVE);
        prop_assert!(rel <= 1e-8 * 1.01);
    }
}
