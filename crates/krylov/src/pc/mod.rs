//! Preconditioners.
//!
//! All of these are *domain-decomposed*: each rank preconditions with data
//! it owns (the global diagonal slice, or its local diagonal block), so no
//! communication happens inside an apply — the standard construction for
//! parallel Jacobi / block-Jacobi / local-ILU preconditioning, and exactly
//! what PETSc does by default (`-pc_type bjacobi -sub_pc_type ilu`).

mod ilu;
mod ilut;
mod jacobi;
mod sched;
mod sor;

pub use ilu::{Ic0, Ilu0};
pub use ilut::Ilut;
pub use jacobi::{Identity, Jacobi};
pub use sor::Ssor;

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::result::{KspError, KspOutcome};

/// z ← M⁻¹·r, the only operation iterative methods need from a
/// preconditioner.
pub trait Preconditioner: Send + Sync {
    /// Apply the preconditioner. Must not communicate (all shipped
    /// implementations are rank-local; a future multilevel PC would relax
    /// this, which is why `comm` is in the signature).
    fn apply(&self, comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()>;

    /// Human-readable name (diagnostics, `get_all` dumps).
    fn name(&self) -> &'static str;
}

/// The preconditioner vocabulary, mirroring PETSc's `-pc_type` values that
/// make sense here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PcType {
    /// No preconditioning.
    None,
    /// Point Jacobi (diagonal scaling).
    Jacobi,
    /// ILU(0) on each rank's diagonal block (block-Jacobi/ILU in parallel).
    Ilu0,
    /// IC(0) on each rank's diagonal block (SPD problems).
    Ic0,
    /// SSOR sweeps on each rank's diagonal block, with relaxation ω.
    Ssor {
        /// Relaxation factor in (0, 2).
        omega: f64,
    },
    /// ILUT(p, τ): dual-dropping incomplete LU on each rank's diagonal
    /// block — the "drop tolerance" / "fill" parameter family.
    Ilut {
        /// Relative drop tolerance τ.
        droptol: f64,
        /// Per-row fill cap p (for each of L and U).
        max_fill: usize,
    },
    /// Zero-overlap additive Schwarz — identical to block-Jacobi ILU(0)
    /// here, kept as a named alias because solver packages expose it.
    AdditiveSchwarz,
}

impl PcType {
    /// Parse a PETSc-flavoured name (`"none"`, `"jacobi"`, `"ilu"`,
    /// `"ilu0"`, `"icc"`, `"ic0"`, `"ssor"`, `"sor"`, `"asm"`,
    /// `"bjacobi"`).
    pub fn parse(name: &str) -> KspOutcome<Self> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "none" | "identity" => PcType::None,
            "jacobi" | "diag" => PcType::Jacobi,
            "ilu" | "ilu0" | "bjacobi" => PcType::Ilu0,
            "icc" | "ic0" | "ic" => PcType::Ic0,
            "ssor" | "sor" => PcType::Ssor { omega: 1.0 },
            "ilut" => PcType::Ilut { droptol: 1e-3, max_fill: 10 },
            "asm" | "schwarz" => PcType::AdditiveSchwarz,
            other => {
                return Err(KspError::UnknownName {
                    kind: "preconditioner",
                    name: other.to_string(),
                })
            }
        })
    }
}

/// Wrapper that bumps the probe's `pc_applies` counter around an inner
/// preconditioner, so apply counts show up in per-rank reports no matter
/// which concrete PC the factory produced.
struct Counted(Box<dyn Preconditioner>);

impl Preconditioner for Counted {
    fn apply(&self, comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()> {
        probe::incr(probe::Counter::PcApplies);
        self.0.apply(comm, r, z)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Build a preconditioner of the given type for an operator. Fails with
/// [`KspError::BadConfig`] when the operator cannot supply what the
/// preconditioner needs (e.g. ILU on a matrix-free shell).
pub fn make_preconditioner(
    pc: PcType,
    op: &dyn LinearOperator,
) -> KspOutcome<Box<dyn Preconditioner>> {
    let inner: Box<dyn Preconditioner> = match pc {
        PcType::None => Box::new(Identity),
        PcType::Jacobi => {
            let d = op.diagonal_local().ok_or_else(|| {
                KspError::BadConfig("Jacobi needs the operator diagonal".into())
            })?;
            Box::new(Jacobi::new(d)?)
        }
        PcType::Ilu0 | PcType::AdditiveSchwarz => {
            let blk = op.diagonal_block().ok_or_else(|| {
                KspError::BadConfig("ILU(0) needs an assembled diagonal block".into())
            })?;
            Box::new(Ilu0::new(&blk)?)
        }
        PcType::Ic0 => {
            let blk = op.diagonal_block().ok_or_else(|| {
                KspError::BadConfig("IC(0) needs an assembled diagonal block".into())
            })?;
            Box::new(Ic0::new(&blk)?)
        }
        PcType::Ssor { omega } => {
            let blk = op.diagonal_block().ok_or_else(|| {
                KspError::BadConfig("SSOR needs an assembled diagonal block".into())
            })?;
            Box::new(Ssor::new(&blk, omega)?)
        }
        PcType::Ilut { droptol, max_fill } => {
            let blk = op.diagonal_block().ok_or_else(|| {
                KspError::BadConfig("ILUT needs an assembled diagonal block".into())
            })?;
            Box::new(Ilut::new(&blk, droptol, max_fill)?)
        }
    };
    Ok(Box::new(Counted(inner)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases_and_rejects_garbage() {
        assert_eq!(PcType::parse("none").unwrap(), PcType::None);
        assert_eq!(PcType::parse("JACOBI").unwrap(), PcType::Jacobi);
        assert_eq!(PcType::parse("ilu").unwrap(), PcType::Ilu0);
        assert_eq!(PcType::parse("bjacobi").unwrap(), PcType::Ilu0);
        assert_eq!(PcType::parse("icc").unwrap(), PcType::Ic0);
        assert_eq!(PcType::parse("ssor").unwrap(), PcType::Ssor { omega: 1.0 });
        assert_eq!(PcType::parse("asm").unwrap(), PcType::AdditiveSchwarz);
        assert!(matches!(PcType::parse("ilut").unwrap(), PcType::Ilut { .. }));
        assert!(PcType::parse("multigrid9000").is_err());
    }
}
