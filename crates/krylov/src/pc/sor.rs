//! SSOR preconditioning on the rank-local diagonal block.
//!
//! M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + U) · 1/(2/ω − 1), applied as two
//! triangular sweeps. With ω = 1 this is symmetric Gauss–Seidel.

use rcomm::Communicator;
use rsparse::threads::SharedMutSlice;
use rsparse::{CsrMatrix, DistVector, SparseError};

use crate::pc::sched::{self, SweepSchedules};
use crate::pc::Preconditioner;
use crate::result::{KspError, KspOutcome};

/// The SSOR preconditioner for a local block.
#[derive(Debug, Clone)]
pub struct Ssor {
    a: CsrMatrix,
    diag_pos: Vec<usize>,
    omega: f64,
    /// Level schedules of A's own triangles (SSOR sweeps the original
    /// matrix, not a factor), built once at setup.
    sched: SweepSchedules,
}

impl Ssor {
    /// Build for relaxation factor `omega ∈ (0, 2)`.
    pub fn new(block: &CsrMatrix, omega: f64) -> KspOutcome<Self> {
        if !(0.0..2.0).contains(&omega) || omega == 0.0 {
            return Err(KspError::BadConfig(format!(
                "SSOR omega must be in (0, 2), got {omega}"
            )));
        }
        let (n, cols) = block.shape();
        if n != cols {
            return Err(KspError::Sparse(SparseError::NotSquare { rows: n, cols }));
        }
        let mut diag_pos = vec![usize::MAX; n];
        for (i, dp) in diag_pos.iter_mut().enumerate() {
            let (cs, vs) = block.row(i);
            match cs.binary_search(&i) {
                Ok(k) if vs[k] != 0.0 => *dp = block.row_ptr()[i] + k,
                _ => return Err(KspError::Sparse(SparseError::ZeroPivot { row: i })),
            }
        }
        let sched = SweepSchedules::for_combined(block);
        Ok(Ssor { a: block.clone(), diag_pos, omega, sched })
    }

    /// z ← M⁻¹·r on local slices, using the configured rank-local thread
    /// count.
    pub fn solve_local(&self, r: &[f64], z: &mut [f64]) {
        self.solve_local_with(r, z, sched::active_threads());
    }

    /// z ← M⁻¹·r with an explicit thread count. The two triangular sweeps
    /// are level-scheduled when worthwhile; the diagonal rescale passes
    /// between and after them are elementwise and stay serial. Arithmetic
    /// matches the serial path entry-for-entry.
    pub fn solve_local_with(&self, r: &[f64], z: &mut [f64], threads: usize) {
        let n = self.diag_pos.len();
        let row_ptr = self.a.row_ptr();
        let col_idx = self.a.col_idx();
        let vals = self.a.values();
        let w = self.omega;
        let diag = &self.diag_pos;
        let t = self.sched.plan(threads);
        if t > 1 {
            let _s = probe::span!("sptrsv_scheduled");
            let zs = SharedMutSlice::new(z);
            // Forward sweep: (D/ω + L)·t = r.
            let used_f = self.sched.fwd.run(t, |i| {
                let mut acc = r[i];
                for k in row_ptr[i]..diag[i] {
                    // SAFETY: column < i ⇒ earlier level.
                    acc -= vals[k] * unsafe { zs.get(col_idx[k]) };
                }
                unsafe { zs.set(i, acc * w / vals[diag[i]]) };
            });
            // Rescale between the sweeps (elementwise).
            for i in 0..n {
                z[i] *= vals[diag[i]] / w;
            }
            // Backward sweep: (D/ω + U)·z = t.
            let zs = SharedMutSlice::new(z);
            let used_b = self.sched.bwd.run(t, |i| {
                let mut acc = unsafe { zs.get(i) };
                for k in diag[i] + 1..row_ptr[i + 1] {
                    // SAFETY: column > i ⇒ earlier backward level.
                    acc -= vals[k] * unsafe { zs.get(col_idx[k]) };
                }
                unsafe { zs.set(i, acc * w / vals[diag[i]]) };
            });
            let scale = 2.0 - w;
            for zi in z.iter_mut() {
                *zi *= scale;
            }
            self.sched.record(used_f, used_b);
            return;
        }
        // Forward sweep: (D/ω + L)·t = r.
        for i in 0..n {
            let mut acc = r[i];
            for k in row_ptr[i]..self.diag_pos[i] {
                acc -= vals[k] * z[col_idx[k]];
            }
            z[i] = acc * w / vals[self.diag_pos[i]];
        }
        // Scale: t ← (D/ω)·t · (2/ω − 1)⁻¹... fold the scalar in at the end.
        for i in 0..n {
            z[i] *= vals[self.diag_pos[i]] / w;
        }
        // Backward sweep: (D/ω + U)·z = t.
        for i in (0..n).rev() {
            let mut acc = z[i];
            for k in self.diag_pos[i] + 1..row_ptr[i + 1] {
                acc -= vals[k] * z[col_idx[k]];
            }
            z[i] = acc * w / vals[self.diag_pos[i]];
        }
        // Final scalar: M⁻¹ = ω(2−ω)·(D+ωU)⁻¹·D·(D+ωL)⁻¹, and the sweeps
        // above produced ω·(D+ωU)⁻¹·D·(D+ωL)⁻¹·r.
        let scale = 2.0 - w;
        for zi in z.iter_mut() {
            *zi *= scale;
        }
    }
}

impl Preconditioner for Ssor {
    fn apply(&self, _comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()> {
        self.solve_local(r.local(), z.local_mut());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ssor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsparse::generate;

    #[test]
    fn omega_bounds_are_enforced() {
        let a = generate::laplacian_1d(4);
        assert!(Ssor::new(&a, 0.0).is_err());
        assert!(Ssor::new(&a, 2.0).is_err());
        assert!(Ssor::new(&a, -0.5).is_err());
        assert!(Ssor::new(&a, 1.0).is_ok());
        assert!(Ssor::new(&a, 1.8).is_ok());
    }

    #[test]
    fn missing_diagonal_is_rejected() {
        let a = rsparse::CooMatrix::from_triplets(2, 2, &[0, 1], &[1, 0], &[1.0, 1.0])
            .unwrap()
            .to_csr();
        assert!(Ssor::new(&a, 1.0).is_err());
    }

    #[test]
    fn ssor_on_diagonal_matrix_matches_closed_form() {
        // With no off-diagonal entries M = D/(ω(2−ω)), so
        // M⁻¹·r = ω(2−ω)·D⁻¹·r. For ω = 1 that is exactly Jacobi.
        let mut coo = rsparse::CooMatrix::new(3, 3);
        for (i, d) in [2.0, 4.0, 8.0].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let a = coo.to_csr();
        let r = vec![2.0, 4.0, 8.0];
        for omega in [1.0f64, 1.3, 0.7] {
            let ssor = Ssor::new(&a, omega).unwrap();
            let mut z = vec![0.0; 3];
            ssor.solve_local(&r, &mut z);
            let expect = omega * (2.0 - omega);
            for zi in &z {
                assert!((zi - expect).abs() < 1e-14, "omega {omega}: {z:?}");
            }
        }
    }

    #[test]
    fn application_is_symmetric_for_symmetric_blocks() {
        let a = generate::laplacian_2d(5);
        let ssor = Ssor::new(&a, 1.2).unwrap();
        let u = generate::random_vector(25, 1);
        let v = generate::random_vector(25, 2);
        let mut mu = vec![0.0; 25];
        let mut mv = vec![0.0; 25];
        ssor.solve_local(&u, &mut mu);
        ssor.solve_local(&v, &mut mv);
        let lhs = rsparse::dense::dot(&mu, &v);
        let rhs = rsparse::dense::dot(&u, &mv);
        assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    }

    #[test]
    fn ssor_reduces_laplacian_residual() {
        let a = generate::laplacian_2d(7);
        let n = 49;
        let ssor = Ssor::new(&a, 1.0).unwrap();
        let b = vec![1.0; n];
        let mut z = vec![0.0; n];
        ssor.solve_local(&b, &mut z);
        let r = rsparse::ops::residual(&a, &z, &b).unwrap();
        let rel = rsparse::dense::norm2(&r) / rsparse::dense::norm2(&b);
        assert!(rel < 0.9, "rel = {rel}");
    }
}
