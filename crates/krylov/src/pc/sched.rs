//! Shared level-schedule plumbing for the triangular-sweep
//! preconditioners (ILU(0), ILUT, SSOR).
//!
//! Each preconditioner builds a [`SweepSchedules`] pair once at setup —
//! forward-sweep levels from the lower-triangular pattern, backward-sweep
//! levels from the upper — and consults it on every apply. The pair owns
//! the serial-fallback decision and the probe accounting so the three
//! call sites stay identical.

use rsparse::schedule::LevelSchedule;
use rsparse::threads;
use rsparse::CsrMatrix;

/// Cached forward/backward level schedules for one factored block.
#[derive(Debug, Clone)]
pub(crate) struct SweepSchedules {
    /// Forward (lower-triangle) schedule.
    pub fwd: LevelSchedule,
    /// Backward (upper-triangle) schedule.
    pub bwd: LevelSchedule,
}

impl SweepSchedules {
    /// Analyze a matrix holding both sweeps' patterns: a combined LU
    /// factor, or the original matrix for SSOR sweeps.
    pub fn for_combined(mat: &CsrMatrix) -> Self {
        SweepSchedules { fwd: LevelSchedule::lower(mat), bwd: LevelSchedule::upper(mat) }
    }

    /// Analyze separately stored factors (ILUT keeps L and U apart).
    pub fn for_split(l: &CsrMatrix, u: &CsrMatrix) -> Self {
        SweepSchedules { fwd: LevelSchedule::lower(l), bwd: LevelSchedule::upper(u) }
    }

    /// Decide the thread count for one apply: the configured count when
    /// both sweeps clear the worthwhile heuristic, else 1 (the caller
    /// takes its serial path). Records the fallback counter whenever
    /// threads were configured but the schedule is too shallow.
    pub fn plan(&self, threads: usize) -> usize {
        if threads > 1
            && self.fwd.parallel_worthwhile(threads)
            && self.bwd.parallel_worthwhile(threads)
        {
            threads
        } else {
            if threads > 1 {
                probe::incr(probe::Counter::SptrsvSerialFallbacks);
            }
            1
        }
    }

    /// Account for one scheduled apply: `used_*` are the thread counts
    /// [`LevelSchedule::run`] reports for each sweep (1 means the pool was
    /// busy and that sweep degraded to serial — bits unchanged).
    pub fn record(&self, used_fwd: usize, used_bwd: usize) {
        use probe::Counter as C;
        probe::incr(C::SptrsvScheduledSolves);
        probe::add(C::SptrsvLevels, (self.fwd.levels() + self.bwd.levels()) as u64);
        probe::add(C::ThreadsActive, used_fwd.max(used_bwd) as u64);
        if used_fwd == 1 && used_bwd == 1 {
            probe::incr(C::SptrsvSerialFallbacks);
        }
    }
}

/// The thread count preconditioner applies should use right now.
#[inline]
pub(crate) fn active_threads() -> usize {
    threads::active()
}
