//! ILUT(p, τ): incomplete LU with dual dropping (Saad) on the rank-local
//! diagonal block — the "drop tolerances" and "levels of fill" parameter
//! family the paper lists among solver knobs a common interface must
//! carry (§5.1/§6.5).
//!
//! Row-wise construction: each row of A is combined with the already
//! computed rows of U (multipliers from L), then pruned twice — entries
//! below `droptol · ‖row‖₂` are dropped, and only the `max_fill` largest
//! survivors are kept in each of the L and U parts.

use rcomm::Communicator;
use rsparse::threads::SharedMutSlice;
use rsparse::{CsrMatrix, DistVector, SparseError};

use crate::pc::sched::{self, SweepSchedules};
use crate::pc::Preconditioner;
use crate::result::{KspError, KspOutcome};

/// The ILUT preconditioner for a local block.
#[derive(Debug, Clone)]
pub struct Ilut {
    /// Strictly-lower factor rows (unit diagonal implied), CSR.
    l: CsrMatrix,
    /// Upper factor rows (diagonal first per row is NOT guaranteed;
    /// columns sorted), CSR.
    u: CsrMatrix,
    /// Diagonal entries of U, extracted for the backward solve.
    u_diag: Vec<f64>,
    /// Level schedules for both sweeps, built once at factorization.
    sched: SweepSchedules,
}

impl Ilut {
    /// Factor with drop tolerance `droptol ≥ 0` and per-row fill cap
    /// `max_fill ≥ 1` (applied separately to the L and U parts).
    pub fn new(block: &CsrMatrix, droptol: f64, max_fill: usize) -> KspOutcome<Self> {
        if droptol < 0.0 {
            return Err(KspError::BadConfig(format!("droptol must be ≥ 0, got {droptol}")));
        }
        if max_fill == 0 {
            return Err(KspError::BadConfig("max_fill must be ≥ 1".into()));
        }
        let (n, cols) = block.shape();
        if n != cols {
            return Err(KspError::Sparse(SparseError::NotSquare { rows: n, cols }));
        }
        // Growing factors, rows appended in order.
        let mut l_ptr = vec![0usize];
        let mut l_cols: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_ptr = vec![0usize];
        let mut u_cols: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = vec![0.0f64; n];
        // Position of column j in the dense work row, or MAX.
        let mut w = vec![0.0f64; n];
        let mut nonzero: Vec<usize> = Vec::new();
        let mut in_row = vec![false; n];

        for i in 0..n {
            // Scatter row i of A.
            let (acols, avals) = block.row(i);
            let mut row_norm = 0.0f64;
            for (&c, &v) in acols.iter().zip(avals) {
                w[c] = v;
                if !in_row[c] {
                    in_row[c] = true;
                    nonzero.push(c);
                }
                row_norm += v * v;
            }
            let row_norm = row_norm.sqrt();
            let tau = droptol * row_norm;

            // Eliminate using previous rows in increasing column order.
            // Process columns k < i present in the work row; new fill may
            // add more, so keep the frontier sorted with a simple scan.
            nonzero.sort_unstable();
            let mut idx = 0;
            while idx < nonzero.len() {
                let k = nonzero[idx];
                idx += 1;
                if k >= i {
                    break;
                }
                let wk = w[k];
                if wk == 0.0 {
                    continue;
                }
                let lik = wk / u_diag[k];
                if lik.abs() <= tau {
                    // Dropped multiplier: zero it out.
                    w[k] = 0.0;
                    continue;
                }
                w[k] = lik;
                // w ← w − lik · U(k, :) (strictly upper part of row k).
                for pos in u_ptr[k]..u_ptr[k + 1] {
                    let j = u_cols[pos];
                    if j == k {
                        continue;
                    }
                    let upd = lik * u_vals[pos];
                    if !in_row[j] {
                        in_row[j] = true;
                        // Insert keeping the frontier sorted past idx.
                        let at = nonzero[idx..].partition_point(|&c| c < j) + idx;
                        nonzero.insert(at, j);
                    }
                    w[j] -= upd;
                }
            }

            // Split into L (cols < i), diagonal, U (cols > i), drop small,
            // cap fill.
            let mut l_row: Vec<(usize, f64)> = Vec::new();
            let mut u_row: Vec<(usize, f64)> = Vec::new();
            let mut diag = 0.0f64;
            for &c in &nonzero {
                let v = w[c];
                w[c] = 0.0;
                in_row[c] = false;
                if v == 0.0 {
                    continue;
                }
                if c < i {
                    if v.abs() > tau {
                        l_row.push((c, v));
                    }
                } else if c == i {
                    diag = v;
                } else if v.abs() > tau {
                    u_row.push((c, v));
                }
            }
            nonzero.clear();
            if diag == 0.0 {
                // Saad's fallback: substitute a small pivot scaled to the
                // row so factorization can continue.
                diag = (1e-4 * row_norm).max(f64::MIN_POSITIVE);
            }
            keep_largest(&mut l_row, max_fill);
            keep_largest(&mut u_row, max_fill);
            l_row.sort_unstable_by_key(|&(c, _)| c);
            u_row.sort_unstable_by_key(|&(c, _)| c);

            for (c, v) in l_row {
                l_cols.push(c);
                l_vals.push(v);
            }
            l_ptr.push(l_cols.len());
            u_diag[i] = diag;
            u_cols.push(i);
            u_vals.push(diag);
            for (c, v) in u_row {
                u_cols.push(c);
                u_vals.push(v);
            }
            u_ptr.push(u_cols.len());
        }

        let l = CsrMatrix::from_parts(n, n, l_ptr, l_cols, l_vals)
            .map_err(KspError::Sparse)?;
        let u = CsrMatrix::from_parts(n, n, u_ptr, u_cols, u_vals)
            .map_err(KspError::Sparse)?;
        let sched = SweepSchedules::for_split(&l, &u);
        Ok(Ilut { l, u, u_diag, sched })
    }

    /// Stored entries in both factors (fill diagnostic).
    pub fn fill(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// Solve (L·U)·z = r on local slices, using the configured rank-local
    /// thread count.
    pub fn solve_local(&self, r: &[f64], z: &mut [f64]) {
        self.solve_local_with(r, z, sched::active_threads());
    }

    /// Solve (L·U)·z = r with an explicit thread count; level-scheduled
    /// when worthwhile, serial otherwise, bit-identical either way.
    pub fn solve_local_with(&self, r: &[f64], z: &mut [f64], threads: usize) {
        let n = self.u_diag.len();
        let t = self.sched.plan(threads);
        if t > 1 {
            let _s = probe::span!("sptrsv_scheduled");
            let zs = SharedMutSlice::new(z);
            // Forward: unit-lower L (all stored columns are < i).
            let used_f = self.sched.fwd.run(t, |i| {
                let (cols, vals) = self.l.row(i);
                let mut acc = r[i];
                for (&c, &v) in cols.iter().zip(vals) {
                    // SAFETY: c < i ⇒ written in an earlier level.
                    acc -= v * unsafe { zs.get(c) };
                }
                unsafe { zs.set(i, acc) };
            });
            // Backward: U, skipping the stored diagonal.
            let used_b = self.sched.bwd.run(t, |i| {
                let (cols, vals) = self.u.row(i);
                let mut acc = unsafe { zs.get(i) };
                for (&c, &v) in cols.iter().zip(vals) {
                    if c > i {
                        // SAFETY: c > i ⇒ earlier backward level.
                        acc -= v * unsafe { zs.get(c) };
                    }
                }
                unsafe { zs.set(i, acc / self.u_diag[i]) };
            });
            self.sched.record(used_f, used_b);
            return;
        }
        // Forward: unit-lower L.
        for i in 0..n {
            let (cols, vals) = self.l.row(i);
            let mut acc = r[i];
            for (&c, &v) in cols.iter().zip(vals) {
                acc -= v * z[c];
            }
            z[i] = acc;
        }
        // Backward: U (diagonal stored first in each row).
        for i in (0..n).rev() {
            let (cols, vals) = self.u.row(i);
            let mut acc = z[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c > i {
                    acc -= v * z[c];
                }
            }
            z[i] = acc / self.u_diag[i];
        }
    }
}

/// Keep the `cap` largest-magnitude entries (order not preserved).
fn keep_largest(row: &mut Vec<(usize, f64)>, cap: usize) {
    if row.len() > cap {
        row.sort_unstable_by(|a, b| {
            b.1.abs().partial_cmp(&a.1.abs()).expect("finite values")
        });
        row.truncate(cap);
    }
}

impl Preconditioner for Ilut {
    fn apply(&self, _comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()> {
        self.solve_local(r.local(), z.local_mut());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ilut"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsparse::generate;

    #[test]
    fn zero_droptol_full_fill_is_exact_lu() {
        // With no dropping, ILUT on any matrix with nonzero pivots is the
        // exact (unpivoted) LU, so the solve inverts A.
        let a = generate::random_diag_dominant(20, 3, 4);
        let ilut = Ilut::new(&a, 0.0, 20).unwrap();
        let x_true = generate::random_vector(20, 5);
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; 20];
        ilut.solve_local(&b, &mut x);
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9, "{g} vs {e}");
        }
    }

    #[test]
    fn dropping_reduces_fill_monotonically() {
        let a = generate::laplacian_2d(12);
        let f_tight = Ilut::new(&a, 0.0, 144).unwrap().fill();
        let f_mid = Ilut::new(&a, 1e-3, 10).unwrap().fill();
        let f_loose = Ilut::new(&a, 1e-1, 3).unwrap().fill();
        assert!(f_tight > f_mid, "{f_tight} vs {f_mid}");
        assert!(f_mid > f_loose, "{f_mid} vs {f_loose}");
    }

    #[test]
    fn moderate_ilut_still_contracts_the_residual() {
        let a = generate::laplacian_2d(10);
        let n = 100;
        let ilut = Ilut::new(&a, 1e-2, 8).unwrap();
        let b = vec![1.0; n];
        let mut z = vec![0.0; n];
        ilut.solve_local(&b, &mut z);
        let r = rsparse::ops::residual(&a, &z, &b).unwrap();
        let rel = rsparse::dense::norm2(&r) / 10.0;
        assert!(rel < 0.5, "rel = {rel}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let a = generate::laplacian_1d(4);
        assert!(Ilut::new(&a, -1.0, 5).is_err());
        assert!(Ilut::new(&a, 0.1, 0).is_err());
        let rect = rsparse::CooMatrix::new(2, 3).to_csr();
        assert!(Ilut::new(&rect, 0.1, 5).is_err());
    }

    #[test]
    fn zero_pivot_fallback_keeps_factorization_alive() {
        // A matrix engineered to produce an exact zero pivot without
        // pivoting: [[1, 1], [1, 1 + 0]] → U(1,1) = 0. The τ-fallback must
        // substitute a tiny pivot rather than fail.
        let a = rsparse::CooMatrix::from_triplets(
            2,
            2,
            &[0, 0, 1, 1],
            &[0, 1, 0, 1],
            &[1.0, 1.0, 1.0, 1.0],
        )
        .unwrap()
        .to_csr();
        let ilut = Ilut::new(&a, 0.0, 4).unwrap();
        assert!(ilut.fill() >= 3);
    }
}
