//! Identity and point-Jacobi preconditioners.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::pc::Preconditioner;
use crate::result::{KspError, KspOutcome};

/// No preconditioning: z ← r.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, _comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()> {
        z.local_mut().copy_from_slice(r.local());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Point Jacobi: z ← D⁻¹·r using this rank's slice of the diagonal.
#[derive(Debug, Clone)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Build from the local diagonal slice; rejects zero diagonal entries.
    pub fn new(diagonal_local: Vec<f64>) -> KspOutcome<Self> {
        let mut inv = Vec::with_capacity(diagonal_local.len());
        for (i, &d) in diagonal_local.iter().enumerate() {
            if d == 0.0 {
                return Err(KspError::Sparse(rsparse::SparseError::ZeroPivot { row: i }));
            }
            inv.push(1.0 / d);
        }
        Ok(Jacobi { inv_diag: inv })
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, _comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()> {
        for ((zi, ri), di) in z.local_mut().iter_mut().zip(r.local()).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;
    use rsparse::BlockRowPartition;

    #[test]
    fn identity_copies() {
        let out = Universe::run(1, |comm| {
            let part = BlockRowPartition::even(3, 1);
            let r = DistVector::from_local(part.clone(), 0, vec![1.0, -2.0, 3.0]).unwrap();
            let mut z = DistVector::zeros(part, 0);
            Identity.apply(comm, &r, &mut z).unwrap();
            z.local().to_vec()
        });
        assert_eq!(out[0], vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let out = Universe::run(2, |comm| {
            let part = BlockRowPartition::even(4, 2);
            let pc = Jacobi::new(vec![2.0, 4.0]).unwrap();
            let r = DistVector::from_local(part.clone(), comm.rank(), vec![2.0, 8.0]).unwrap();
            let mut z = DistVector::zeros(part, comm.rank());
            pc.apply(comm, &r, &mut z).unwrap();
            z.local().to_vec()
        });
        for chunk in out {
            assert_eq!(chunk, vec![1.0, 2.0]);
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        assert!(Jacobi::new(vec![1.0, 0.0]).is_err());
    }
}
