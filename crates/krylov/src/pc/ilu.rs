//! Incomplete factorizations on the rank-local diagonal block: ILU(0) for
//! general matrices and IC(0) for SPD ones. In parallel these act as
//! block-Jacobi preconditioners with an incomplete factorization per block
//! — PETSc's default parallel preconditioner.

use rcomm::Communicator;
use rsparse::threads::SharedMutSlice;
use rsparse::{CsrMatrix, DistVector, SparseError};

use crate::pc::sched::{self, SweepSchedules};
use crate::pc::Preconditioner;
use crate::result::{KspError, KspOutcome};

/// ILU(0): incomplete LU with zero fill — L and U inherit the sparsity
/// pattern of A. Stored as a single CSR matrix (strict lower = L with unit
/// diagonal implied, diagonal + strict upper = U).
#[derive(Debug, Clone)]
pub struct Ilu0 {
    /// Factored values on the original pattern.
    lu: CsrMatrix,
    /// Position of the diagonal entry in each row of `lu`.
    diag_pos: Vec<usize>,
    /// Level schedules for both sweeps, built once at factorization.
    sched: SweepSchedules,
}

impl Ilu0 {
    /// Factor the local block. Requires a square matrix with a full
    /// nonzero diagonal (no pivoting, like standard ILU(0)).
    pub fn new(block: &CsrMatrix) -> KspOutcome<Self> {
        let (n, cols) = block.shape();
        if n != cols {
            return Err(KspError::Sparse(SparseError::NotSquare { rows: n, cols }));
        }
        let mut lu = block.clone();
        let mut diag_pos = vec![usize::MAX; n];
        // Row layout is fixed; find diagonal positions first.
        {
            let row_ptr = lu.row_ptr().to_vec();
            let col_idx = lu.col_idx().to_vec();
            for i in 0..n {
                let row = row_ptr[i]..row_ptr[i + 1];
                for (k, &col) in row.clone().zip(&col_idx[row]) {
                    if col == i {
                        diag_pos[i] = k;
                        break;
                    }
                }
                if diag_pos[i] == usize::MAX {
                    return Err(KspError::Sparse(SparseError::ZeroPivot { row: i }));
                }
            }
        }
        let row_ptr = lu.row_ptr().to_vec();
        let col_idx = lu.col_idx().to_vec();
        // IKJ Gaussian elimination restricted to the pattern, with a dense
        // position map per active row for O(nnz_row) pattern lookups.
        let mut pos_of = vec![usize::MAX; n];
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            for k in lo..hi {
                pos_of[col_idx[k]] = k;
            }
            for kk in lo..hi {
                let k = col_idx[kk];
                if k >= i {
                    break; // columns sorted: done with the strict lower part
                }
                let ukk = lu.values()[diag_pos[k]];
                if ukk == 0.0 {
                    return Err(KspError::Sparse(SparseError::ZeroPivot { row: k }));
                }
                let lik = lu.values()[kk] / ukk;
                lu.values_mut()[kk] = lik;
                // Update row i against row k's upper part, pattern-limited.
                let upper = diag_pos[k] + 1..row_ptr[k + 1];
                for (kj, &j) in upper.clone().zip(&col_idx[upper]) {
                    let p = pos_of[j];
                    if p != usize::MAX {
                        let ukj = lu.values()[kj];
                        lu.values_mut()[p] -= lik * ukj;
                    }
                }
            }
            for k in lo..hi {
                pos_of[col_idx[k]] = usize::MAX;
            }
            if lu.values()[diag_pos[i]] == 0.0 {
                return Err(KspError::Sparse(SparseError::ZeroPivot { row: i }));
            }
        }
        let sched = SweepSchedules::for_combined(&lu);
        // Static traffic model for the two triangular sweeps of one
        // apply, from the factor cached here at setup: every stored
        // entry is read once per sweep pair (value + column index +
        // solution gather), plus the row pointers, the rhs read, the
        // solution write and the n diagonal divides.
        {
            let nnz = lu.nnz() as u64;
            let rows = n as u64;
            probe::model::register(
                "sptrsv",
                probe::model::KernelModel {
                    span: "sptrsv",
                    flops: 2 * nnz + rows,
                    bytes: 24 * nnz + 16 * rows + 8,
                    unit: probe::model::WorkUnit::SpanCalls,
                    time: probe::model::TimeBase::Total,
                    nrhs: 1,
                },
            );
        }
        Ok(Ilu0 { lu, diag_pos, sched })
    }

    /// Solve (L·U)·z = r in place on a local slice, using the configured
    /// rank-local thread count.
    pub fn solve_local(&self, r: &[f64], z: &mut [f64]) {
        self.solve_local_with(r, z, sched::active_threads());
    }

    /// Solve (L·U)·z = r with an explicit thread count. Level-scheduled
    /// when `threads > 1` and the cached schedules are deep/wide enough;
    /// serial sweeps otherwise. Row arithmetic is identical on both paths,
    /// so results are bit-equal at every thread count.
    pub fn solve_local_with(&self, r: &[f64], z: &mut [f64], threads: usize) {
        let _span = probe::span!("sptrsv");
        let n = self.diag_pos.len();
        debug_assert_eq!(r.len(), n);
        debug_assert_eq!(z.len(), n);
        let row_ptr = self.lu.row_ptr();
        let col_idx = self.lu.col_idx();
        let vals = self.lu.values();
        let diag = &self.diag_pos;
        let t = self.sched.plan(threads);
        if t > 1 {
            let _s = probe::span!("sptrsv_scheduled");
            let zs = SharedMutSlice::new(z);
            // Forward: L (unit diagonal) z' = r. Row `i` reads only
            // columns < i, finished in earlier levels.
            let used_f = self.sched.fwd.run(t, |i| {
                let mut acc = r[i];
                for k in row_ptr[i]..diag[i] {
                    // SAFETY: column < i ⇒ earlier level; our own slot is
                    // written exactly once.
                    acc -= vals[k] * unsafe { zs.get(col_idx[k]) };
                }
                unsafe { zs.set(i, acc) };
            });
            // Backward: U z = z'. Row `i` reads columns > i.
            let used_b = self.sched.bwd.run(t, |i| {
                let mut acc = unsafe { zs.get(i) };
                for k in diag[i] + 1..row_ptr[i + 1] {
                    // SAFETY: column > i ⇒ earlier backward level.
                    acc -= vals[k] * unsafe { zs.get(col_idx[k]) };
                }
                unsafe { zs.set(i, acc / vals[diag[i]]) };
            });
            self.sched.record(used_f, used_b);
            return;
        }
        // Forward: L (unit diagonal) z' = r.
        for i in 0..n {
            let mut acc = r[i];
            for k in row_ptr[i]..self.diag_pos[i] {
                acc -= vals[k] * z[col_idx[k]];
            }
            z[i] = acc;
        }
        // Backward: U z = z'.
        for i in (0..n).rev() {
            let mut acc = z[i];
            for k in self.diag_pos[i] + 1..row_ptr[i + 1] {
                acc -= vals[k] * z[col_idx[k]];
            }
            z[i] = acc / vals[self.diag_pos[i]];
        }
    }

    /// Borrow the combined LU factor (tests / diagnostics).
    pub fn factor(&self) -> &CsrMatrix {
        &self.lu
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, _comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()> {
        self.solve_local(r.local(), z.local_mut());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ilu0"
    }
}

/// IC(0): incomplete Cholesky with zero fill on the lower-triangular
/// pattern of an SPD block. Applied as z = L⁻ᵀ·L⁻¹·r.
#[derive(Debug, Clone)]
pub struct Ic0 {
    /// Lower-triangular factor rows (columns ≤ i), CSR.
    l: CsrMatrix,
    diag_pos: Vec<usize>,
}

impl Ic0 {
    /// Factor the local block; fails on non-SPD data (non-positive pivot).
    pub fn new(block: &CsrMatrix) -> KspOutcome<Self> {
        let (n, cols) = block.shape();
        if n != cols {
            return Err(KspError::Sparse(SparseError::NotSquare { rows: n, cols }));
        }
        // Extract the lower triangle (including diagonal) as the pattern.
        let mut coo = rsparse::CooMatrix::new(n, n);
        for (r, c, v) in block.iter() {
            if c <= r {
                coo.push(r, c, v).expect("bounds");
            }
        }
        let mut l = coo.to_csr();
        let row_ptr = l.row_ptr().to_vec();
        let col_idx = l.col_idx().to_vec();
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            if row_ptr[i + 1] > row_ptr[i] && col_idx[row_ptr[i + 1] - 1] == i {
                diag_pos[i] = row_ptr[i + 1] - 1;
            } else {
                return Err(KspError::Sparse(SparseError::ZeroPivot { row: i }));
            }
        }
        // Row-oriented incomplete Cholesky.
        let mut pos_of = vec![usize::MAX; n];
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            for k in lo..hi {
                pos_of[col_idx[k]] = k;
            }
            for kk in lo..hi - 1 {
                let j = col_idx[kk]; // strictly below the diagonal
                // l_ij = (a_ij − Σ_{k<j} l_ik·l_jk) / l_jj, sums limited to
                // the shared pattern.
                let mut s = l.values()[kk];
                let lower = row_ptr[j]..diag_pos[j];
                for (jk, &k) in lower.clone().zip(&col_idx[lower]) {
                    let p = pos_of[k];
                    if p != usize::MAX && p < kk {
                        s -= l.values()[p] * l.values()[jk];
                    }
                }
                let ljj = l.values()[diag_pos[j]];
                l.values_mut()[kk] = s / ljj;
            }
            // Diagonal: l_ii = sqrt(a_ii − Σ l_ik²).
            let mut s = l.values()[diag_pos[i]];
            for k in lo..hi - 1 {
                let v = l.values()[k];
                s -= v * v;
            }
            if s <= 0.0 {
                return Err(KspError::BadConfig(format!(
                    "IC(0) pivot {s:.3e} at row {i}: matrix not SPD enough for zero fill"
                )));
            }
            l.values_mut()[diag_pos[i]] = s.sqrt();
            for k in lo..hi {
                pos_of[col_idx[k]] = usize::MAX;
            }
        }
        Ok(Ic0 { l, diag_pos })
    }

    /// Solve L·Lᵀ·z = r on a local slice.
    pub fn solve_local(&self, r: &[f64], z: &mut [f64]) {
        let n = self.diag_pos.len();
        let row_ptr = self.l.row_ptr();
        let col_idx = self.l.col_idx();
        let vals = self.l.values();
        // Forward: L y = r.
        for i in 0..n {
            let mut acc = r[i];
            for k in row_ptr[i]..self.diag_pos[i] {
                acc -= vals[k] * z[col_idx[k]];
            }
            z[i] = acc / vals[self.diag_pos[i]];
        }
        // Backward: Lᵀ z = y, done by scattering columns of L.
        for i in (0..n).rev() {
            z[i] /= vals[self.diag_pos[i]];
            let zi = z[i];
            for k in row_ptr[i]..self.diag_pos[i] {
                z[col_idx[k]] -= vals[k] * zi;
            }
        }
    }
}

impl Preconditioner for Ic0 {
    fn apply(&self, _comm: &Communicator, r: &DistVector, z: &mut DistVector) -> KspOutcome<()> {
        self.solve_local(r.local(), z.local_mut());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ic0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsparse::generate;

    /// On a full (dense-pattern) matrix, ILU(0) is the exact LU, so
    /// solve_local must invert exactly.
    #[test]
    fn ilu0_is_exact_on_full_pattern() {
        let n = 6;
        let mut coo = rsparse::CooMatrix::new(n, n);
        let mut rng = generate::XorShift64::new(99);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j { 10.0 + rng.next_f64() } else { rng.next_f64() - 0.5 };
                coo.push(i, j, v).unwrap();
            }
        }
        let a = coo.to_csr();
        let ilu = Ilu0::new(&a).unwrap();
        let x_true = generate::random_vector(n, 3);
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; n];
        ilu.solve_local(&b, &mut x);
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-10, "{x:?} vs {x_true:?}");
        }
    }

    /// On a tridiagonal matrix the pattern suffers no fill, so ILU(0) is
    /// again exact.
    #[test]
    fn ilu0_is_exact_on_tridiagonal() {
        let a = generate::laplacian_1d(20);
        let ilu = Ilu0::new(&a).unwrap();
        let x_true = generate::random_vector(20, 5);
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; 20];
        ilu.solve_local(&b, &mut x);
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn ilu0_reduces_residual_on_2d_laplacian() {
        // With fill suppressed ILU(0) is inexact, but applying it must
        // still shrink the residual substantially.
        let a = generate::laplacian_2d(8);
        let n = 64;
        let ilu = Ilu0::new(&a).unwrap();
        let b = vec![1.0; n];
        let mut z = vec![0.0; n];
        ilu.solve_local(&b, &mut z);
        let r = rsparse::ops::residual(&a, &z, &b).unwrap();
        let rel = rsparse::dense::norm2(&r) / rsparse::dense::norm2(&b);
        assert!(rel < 0.7, "ILU(0) should beat doing nothing: rel = {rel}");
    }

    #[test]
    fn ilu0_rejects_missing_diagonal() {
        // [0 1; 1 0] has no diagonal entries.
        let a = rsparse::CooMatrix::from_triplets(2, 2, &[0, 1], &[1, 0], &[1.0, 1.0])
            .unwrap()
            .to_csr();
        assert!(Ilu0::new(&a).is_err());
    }

    #[test]
    fn ic0_is_exact_on_tridiagonal_spd() {
        let a = generate::laplacian_1d(15);
        let ic = Ic0::new(&a).unwrap();
        let x_true = generate::random_vector(15, 8);
        let b = a.matvec(&x_true).unwrap();
        let mut x = vec![0.0; 15];
        ic.solve_local(&b, &mut x);
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn ic0_preserves_symmetry_of_application() {
        // M⁻¹ = L⁻ᵀL⁻¹ must be symmetric: ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩.
        let a = generate::laplacian_2d(5);
        let n = 25;
        let ic = Ic0::new(&a).unwrap();
        let u = generate::random_vector(n, 1);
        let v = generate::random_vector(n, 2);
        let mut miu = vec![0.0; n];
        let mut miv = vec![0.0; n];
        ic.solve_local(&u, &mut miu);
        ic.solve_local(&v, &mut miv);
        let lhs = rsparse::dense::dot(&miu, &v);
        let rhs = rsparse::dense::dot(&u, &miv);
        assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    }

    #[test]
    fn ic0_rejects_indefinite_matrices() {
        // −I is symmetric negative definite.
        let a = rsparse::ops::scale(-1.0, &rsparse::CsrMatrix::identity(4));
        assert!(Ic0::new(&a).is_err());
    }
}
