//! Neighbor-checkpointed Krylov state for elastic recovery.
//!
//! With `RSPARSE_CHECKPOINT_EVERY=k` (or `KspConfig::checkpoint_every`)
//! set to a nonzero period, every Krylov solve deposits a snapshot of its
//! per-rank state — the current iterate `x`, the residual `r`, and for
//! GMRES the restart point — every `k` iterations. In the MPI picture each
//! rank's snapshot lives in the memory of its ring neighbour, rank
//! `(r + 1) mod size`, so losing any single rank leaves every snapshot —
//! including the dead rank's — alive on some survivor. In this in-process
//! SPMD runtime all rank threads share one heap, so the process-global
//! registry below *is* the surviving neighbour copy; what the design
//! preserves is the invariant that matters for the recovery protocol:
//! after `RankLost(d)`, the survivors can assemble the newest snapshot set
//! that **every** member of the old cohort had deposited, `d` included.
//!
//! Snapshots are keyed by world rank and double-buffered: ranks pass a
//! checkpoint boundary one collective apart, so at the moment of a loss
//! the newest snapshot may exist on only part of the cohort — the
//! previous one is kept so [`latest_consistent`] can always fall back to
//! the newest *complete* set. Deposits recycle their buffers
//! (`clear` + `extend_from_slice` into storage retained across deposits),
//! so a solve's steady state allocates nothing after each slot's first
//! two snapshots.
//!
//! The registry is process-global state like the fault plan and the
//! cohort registry: tests that depend on checkpoint contents must
//! serialize, and recovery layers should [`clear_all`] at solve entry.

use std::collections::HashMap;
use std::sync::Mutex;

/// One deposited snapshot of a rank's Krylov state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Iteration count at the checkpoint boundary.
    pub iteration: usize,
    /// First global row of this rank's block (keys the layout remap).
    pub start_row: usize,
    /// Local chunk of the iterate.
    pub x: Vec<f64>,
    /// Local chunk of the residual.
    pub r: Vec<f64>,
}

/// The two most recent snapshots for one world rank: `newest` and the one
/// before it (see module docs for why two).
#[derive(Debug, Default)]
struct Slot {
    newest: Snapshot,
    previous: Snapshot,
    /// How many deposits this slot has received (0, 1, or saturating 2).
    filled: u8,
}

static REGISTRY: Mutex<Option<HashMap<usize, Slot>>> = Mutex::new(None);

/// Forget every snapshot (recovery layers call this at solve entry so a
/// restored checkpoint can never leak across solves).
pub fn clear_all() {
    *REGISTRY.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Deposit a snapshot for `world_rank`. The previous newest snapshot is
/// demoted, not dropped; buffers are recycled in place.
pub fn deposit(world_rank: usize, iteration: usize, start_row: usize, x: &[f64], r: &[f64]) {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let slot = guard
        .get_or_insert_with(HashMap::new)
        .entry(world_rank)
        .or_default();
    // Rotate: the old `previous` buffers become the write target.
    std::mem::swap(&mut slot.newest, &mut slot.previous);
    let dst = &mut slot.newest;
    dst.iteration = iteration;
    dst.start_row = start_row;
    dst.x.clear();
    dst.x.extend_from_slice(x);
    dst.r.clear();
    dst.r.extend_from_slice(r);
    slot.filled = (slot.filled + 1).min(2);
}

/// One member's `(start_row, x)` piece of a restored snapshot.
pub type SnapshotChunk = (usize, Vec<f64>);

/// The newest iteration for which **every** member of `world_members` has
/// a snapshot, together with each member's `(start_row, x)` chunk at that
/// iteration, sorted by `start_row`. `None` if any member never deposited
/// or no common iteration exists among the retained generations.
pub fn latest_consistent(world_members: &[usize]) -> Option<(usize, Vec<SnapshotChunk>)> {
    let guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let map = guard.as_ref()?;
    // The candidate iterations are the ones every member retains: the
    // newest complete set is the *minimum* over members of each member's
    // newest iteration — every member keeps its previous generation, so a
    // member that has advanced past `it` can still serve `it` as long as
    // only one boundary separates them (the collective lock-step
    // guarantees survivors are at most one checkpoint apart).
    let target = world_members
        .iter()
        .map(|w| map.get(w).filter(|s| s.filled > 0).map(|s| s.newest.iteration))
        .collect::<Option<Vec<_>>>()?
        .into_iter()
        .min()?;
    let mut chunks = Vec::with_capacity(world_members.len());
    for &w in world_members {
        let slot = map.get(&w)?;
        let snap = if slot.newest.iteration == target {
            &slot.newest
        } else if slot.filled >= 2 && slot.previous.iteration == target {
            &slot.previous
        } else {
            return None;
        };
        chunks.push((snap.start_row, snap.x.clone()));
    }
    chunks.sort_by_key(|&(s, _)| s);
    Some((target, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global registry: world ranks 800+ keep these tests out of
    // any concurrently running solve's key space.

    #[test]
    fn consistent_set_falls_back_to_previous_generation() {
        clear_all();
        deposit(800, 10, 0, &[1.0, 2.0], &[0.1, 0.2]);
        deposit(801, 10, 2, &[3.0, 4.0], &[0.3, 0.4]);
        // Rank 800 advances to 20; 801 dies before depositing 20.
        deposit(800, 20, 0, &[5.0, 6.0], &[0.5, 0.6]);
        let (it, chunks) = latest_consistent(&[800, 801]).unwrap();
        assert_eq!(it, 10, "must fall back to the newest complete set");
        assert_eq!(chunks, vec![(0, vec![1.0, 2.0]), (2, vec![3.0, 4.0])]);
        // Once 801 catches up, the newer set wins.
        deposit(801, 20, 2, &[7.0, 8.0], &[0.7, 0.8]);
        let (it, chunks) = latest_consistent(&[800, 801]).unwrap();
        assert_eq!(it, 20);
        assert_eq!(chunks, vec![(0, vec![5.0, 6.0]), (2, vec![7.0, 8.0])]);
        clear_all();
    }

    #[test]
    fn missing_member_means_no_consistent_set() {
        clear_all();
        deposit(810, 5, 0, &[1.0], &[0.0]);
        assert!(latest_consistent(&[810, 811]).is_none());
        assert!(latest_consistent(&[810]).is_some());
        clear_all();
        assert!(latest_consistent(&[810]).is_none());
    }

    #[test]
    fn deposits_recycle_buffers_without_reallocating() {
        clear_all();
        let x = vec![1.0; 64];
        let r = vec![2.0; 64];
        deposit(820, 10, 0, &x, &r);
        deposit(820, 20, 0, &x, &r);
        // Steady state: both generations' buffers exist; further deposits
        // must reuse their capacity.
        let cap_before = {
            let guard = REGISTRY.lock().unwrap();
            let slot = &guard.as_ref().unwrap()[&820];
            (slot.newest.x.capacity(), slot.previous.x.capacity())
        };
        for it in [30, 40, 50] {
            deposit(820, it, 0, &x, &r);
        }
        let guard = REGISTRY.lock().unwrap();
        let slot = &guard.as_ref().unwrap()[&820];
        assert_eq!(
            (slot.newest.x.capacity(), slot.previous.x.capacity()),
            cap_before,
            "steady-state deposits must not grow the buffers"
        );
        assert_eq!(slot.newest.iteration, 50);
        assert_eq!(slot.previous.iteration, 40);
        drop(guard);
        clear_all();
    }
}
