//! `rkrylov` ("RKSP") — a PETSc-KSP-like parallel iterative solver package.
//!
//! This is one of the three "native solver libraries" the CCA-LISI paper
//! wraps (its PETSc stand-in, per the substitution table in DESIGN.md). It
//! is a complete package in its own right:
//!
//! * [`LinearOperator`] — the operator abstraction; [`MatOperator`] wraps a
//!   block-row-distributed CSR matrix, [`ShellOperator`] wraps a user
//!   closure (PETSc's `MatShell`, the matrix-free path LISI must support);
//! * [`pc`] — preconditioners: identity, Jacobi, block-Jacobi ILU(0) and
//!   IC(0), SOR/SSOR sweeps, additive Schwarz flavour of block solves;
//! * [`solver`] — Krylov and stationary methods: CG, BiCGStab, GMRES(m),
//!   FGMRES(m), CGS, TFQMR, Richardson, Chebyshev;
//! * [`Options`] — a PETSc-style string option database
//!   (`ksp_type`, `pc_type`, `ksp_rtol`, …) from which a configured
//!   [`Ksp`] context is built — this is the parameter surface LISI's
//!   generic `set(key, value)` methods map onto.
//!
//! Everything runs SPMD over an [`rcomm::Communicator`]; a single-rank
//! communicator gives the serial behaviour.

#![warn(missing_docs)]

pub mod analytics;
pub mod checkpoint;
pub mod operator;
pub mod options;
pub mod pc;
pub mod result;
pub mod solver;

pub use operator::{LinearOperator, MatOperator, ShellOperator};
pub use options::Options;
pub use pc::{make_preconditioner, PcType, Preconditioner};
pub use pc::{Ic0, Ilu0, Ilut, Jacobi, Ssor};
pub use result::{ConvergedReason, KspError, KspResult};
pub use solver::{Ksp, KspConfig, KspType};
