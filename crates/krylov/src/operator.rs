//! The operator abstraction: everything a Krylov method needs from "A".

use rcomm::Communicator;
use rsparse::{BlockRowPartition, CsrMatrix, DistCsrMatrix, DistVector};

use crate::result::{KspError, KspOutcome};

/// A linear operator y = A·x over block-row-distributed vectors.
///
/// Two implementations ship: [`MatOperator`] (assembled sparse matrix) and
/// [`ShellOperator`] (user callback — the matrix-free mode of paper §5.5).
/// Krylov methods only ever call [`LinearOperator::apply`]; preconditioner
/// construction additionally asks for the diagonal and the local diagonal
/// block, which matrix-free operators may decline to provide.
pub trait LinearOperator: Send + Sync {
    /// The row partition (also used for all conforming vectors).
    fn partition(&self) -> &BlockRowPartition;

    /// y ← A·x. Collective over `comm`.
    fn apply(
        &self,
        comm: &Communicator,
        x: &DistVector,
        y: &mut DistVector,
    ) -> KspOutcome<()>;

    /// The local slice of the main diagonal, if the operator can produce
    /// it (needed by Jacobi/SSOR/Chebyshev setup).
    fn diagonal_local(&self) -> Option<Vec<f64>> {
        None
    }

    /// The local square diagonal block in local numbering, if available
    /// (needed by ILU/IC block preconditioners).
    fn diagonal_block(&self) -> Option<CsrMatrix> {
        None
    }

    /// Batched apply: column `q` of `ys` ← A · column `q` of `xs`, for
    /// `k` right-hand sides stored as contiguous local columns (column
    /// `q` at `[q·local_rows .. (q+1)·local_rows]`). Collective.
    ///
    /// The default walks the columns through [`Self::apply`] one at a
    /// time (correct for any operator); [`MatOperator`] overrides it
    /// with the fused multi-vector SpMV, which amortizes one matrix
    /// sweep and one halo exchange across all `k` columns. Either way,
    /// column `q`'s result is bit-identical to a single `apply` of that
    /// column.
    fn apply_multi(
        &self,
        comm: &Communicator,
        xs: &[f64],
        ys: &mut [f64],
        k: usize,
    ) -> KspOutcome<()> {
        let n_local = self.partition().local_rows(comm.rank());
        let part = self.partition().clone();
        for q in 0..k {
            let x = DistVector::from_local(
                part.clone(),
                comm.rank(),
                xs[q * n_local..(q + 1) * n_local].to_vec(),
            )
            .map_err(KspError::Sparse)?;
            let mut y = DistVector::zeros(part.clone(), comm.rank());
            self.apply(comm, &x, &mut y)?;
            ys[q * n_local..(q + 1) * n_local].copy_from_slice(y.local());
        }
        Ok(())
    }

    /// Global problem size.
    fn global_order(&self) -> usize {
        self.partition().global_rows()
    }
}

/// An assembled distributed CSR matrix as an operator.
#[derive(Debug, Clone)]
pub struct MatOperator {
    matrix: DistCsrMatrix,
}

impl MatOperator {
    /// Wrap a distributed matrix.
    pub fn new(matrix: DistCsrMatrix) -> Self {
        MatOperator { matrix }
    }

    /// Borrow the underlying matrix.
    pub fn matrix(&self) -> &DistCsrMatrix {
        &self.matrix
    }

    /// Mutably borrow (for value updates with a fixed pattern).
    pub fn matrix_mut(&mut self) -> &mut DistCsrMatrix {
        &mut self.matrix
    }

    /// The SpMV storage format this rank's plan settled on (CSR unless
    /// the `format` option or `RSPARSE_FORMAT` picked otherwise).
    pub fn chosen_format(&self) -> rsparse::Format {
        self.matrix.chosen_format()
    }
}

impl LinearOperator for MatOperator {
    fn partition(&self) -> &BlockRowPartition {
        self.matrix.partition()
    }

    fn apply(
        &self,
        comm: &Communicator,
        x: &DistVector,
        y: &mut DistVector,
    ) -> KspOutcome<()> {
        self.matrix.matvec_into(comm, x, y)?;
        Ok(())
    }

    fn diagonal_local(&self) -> Option<Vec<f64>> {
        Some(self.matrix.diagonal_local())
    }

    fn diagonal_block(&self) -> Option<CsrMatrix> {
        Some(self.matrix.diagonal_block())
    }

    fn apply_multi(
        &self,
        comm: &Communicator,
        xs: &[f64],
        ys: &mut [f64],
        k: usize,
    ) -> KspOutcome<()> {
        self.matrix.matvec_multi_into(comm, xs, ys, k)?;
        Ok(())
    }
}

/// Signature of a matrix-free apply callback: `(comm, x, y)` computes
/// y ← A·x collectively.
pub type ApplyFn =
    dyn Fn(&Communicator, &DistVector, &mut DistVector) -> Result<(), String> + Send + Sync;

/// A matrix-free operator built from a user closure — RKSP's `MatShell`.
/// The application performs the matrix–vector product itself; the solver
/// never sees matrix entries (paper §5.5 / the LISI `MatrixFree` port).
pub struct ShellOperator {
    partition: BlockRowPartition,
    apply: Box<ApplyFn>,
    /// Optional user-supplied diagonal (enables Jacobi-type PCs even
    /// matrix-free, as PETSc allows via `MATOP_GET_DIAGONAL`).
    diagonal: Option<Vec<f64>>,
}

impl ShellOperator {
    /// Build from a partition and an apply callback.
    pub fn new(
        partition: BlockRowPartition,
        apply: impl Fn(&Communicator, &DistVector, &mut DistVector) -> Result<(), String>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        ShellOperator { partition, apply: Box::new(apply), diagonal: None }
    }

    /// Also provide the local diagonal slice (unlocks Jacobi/Chebyshev).
    pub fn with_diagonal(mut self, diagonal_local: Vec<f64>) -> Self {
        self.diagonal = Some(diagonal_local);
        self
    }
}

impl std::fmt::Debug for ShellOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShellOperator")
            .field("global_order", &self.partition.global_rows())
            .field("has_diagonal", &self.diagonal.is_some())
            .finish()
    }
}

impl LinearOperator for ShellOperator {
    fn partition(&self) -> &BlockRowPartition {
        &self.partition
    }

    fn apply(
        &self,
        comm: &Communicator,
        x: &DistVector,
        y: &mut DistVector,
    ) -> KspOutcome<()> {
        // Matrix-backed operators are counted inside the distributed
        // matvec; shell applies never reach that layer, so count here.
        probe::incr(probe::Counter::MatvecCalls);
        (self.apply)(comm, x, y).map_err(KspError::Nonconforming)
    }

    fn diagonal_local(&self) -> Option<Vec<f64>> {
        self.diagonal.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;
    use rsparse::generate;

    #[test]
    fn mat_operator_applies_like_matrix() {
        let n = 10;
        let a = generate::laplacian_1d(n);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let expect = a.matvec(&x).unwrap();
        let out = Universe::run(2, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let dx = DistVector::from_global(part.clone(), comm.rank(), &x).unwrap();
            let mut dy = DistVector::zeros(part, comm.rank());
            op.apply(comm, &dx, &mut dy).unwrap();
            assert!(op.diagonal_local().is_some());
            assert!(op.diagonal_block().is_some());
            dy.allgather_full(comm).unwrap()
        });
        for got in out {
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn diagonal_block_is_local_square_restriction() {
        let n = 9;
        let a = generate::laplacian_1d(n);
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part, &a).unwrap();
            let blk = da.diagonal_block();
            (blk.shape(), blk.get(0, 0), da.diagonal_local())
        });
        for (shape, d00, diag) in out {
            assert_eq!(shape, (3, 3));
            assert_eq!(d00, 2.0);
            assert_eq!(diag, vec![2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn shell_operator_runs_user_callback() {
        // A shell that scales by 3 — a trivial "stencil application".
        let n = 8;
        let out = Universe::run(2, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let shell = ShellOperator::new(part.clone(), |_, x, y| {
                for (yi, xi) in y.local_mut().iter_mut().zip(x.local()) {
                    *yi = 3.0 * xi;
                }
                Ok(())
            })
            .with_diagonal(vec![3.0; part.local_rows(comm.rank())]);
            let dx = DistVector::from_global(
                part.clone(),
                comm.rank(),
                &vec![2.0; n],
            )
            .unwrap();
            let mut dy = DistVector::zeros(part, comm.rank());
            shell.apply(comm, &dx, &mut dy).unwrap();
            assert_eq!(shell.diagonal_local().unwrap(), vec![3.0; 4]);
            assert!(shell.diagonal_block().is_none());
            dy.local().to_vec()
        });
        for chunk in out {
            assert_eq!(chunk, vec![6.0; 4]);
        }
    }

    #[test]
    fn shell_errors_become_ksp_errors() {
        let out = Universe::run(1, |comm| {
            let part = BlockRowPartition::even(4, 1);
            let shell = ShellOperator::new(part.clone(), |_, _, _| Err("nope".into()));
            let dx = DistVector::zeros(part.clone(), 0);
            let mut dy = DistVector::zeros(part, 0);
            shell.apply(comm, &dx, &mut dy).unwrap_err()
        });
        assert!(matches!(&out[0], KspError::Nonconforming(m) if m == "nope"));
    }
}
