//! A PETSc-style string option database. LISI's generic parameter setters
//! (`set`, `setInt`, `setBool`, `setDouble` — paper §6.5) funnel into this
//! structure, and each solver package interprets the keys it knows.

use std::collections::BTreeMap;

/// An ordered string key–value store with typed setters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Options {
    entries: BTreeMap<String, String>,
}

impl Options {
    /// Empty database.
    pub fn new() -> Self {
        Options::default()
    }

    /// Set a string value (last write wins).
    pub fn set(&mut self, key: &str, value: &str) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    /// Set an integer value.
    pub fn set_int(&mut self, key: &str, value: i64) {
        self.set(key, &value.to_string());
    }

    /// Set a boolean value.
    pub fn set_bool(&mut self, key: &str, value: bool) {
        self.set(key, if value { "true" } else { "false" });
    }

    /// Set a floating-point value (round-trip formatting).
    pub fn set_double(&mut self, key: &str, value: f64) {
        self.set(key, &format!("{value:e}"));
    }

    /// Get a raw value.
    pub fn get(&self, key: &str) -> Option<String> {
        self.entries.get(key).cloned()
    }

    /// First present key among aliases (LISI keys vs PETSc keys).
    pub fn get_first(&self, keys: &[&str]) -> Option<String> {
        keys.iter().find_map(|k| self.get(k))
    }

    /// Typed read with parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// Whether a key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Dump as `key=value` lines in key order — what LISI's `get_all()`
    /// returns to the application.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for (k, v) in self.iter() {
            s.push_str(k);
            s.push('=');
            s.push_str(v);
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_setters_round_trip() {
        let mut o = Options::new();
        o.set("solver", "gmres");
        o.set_int("maxits", 500);
        o.set_bool("trace", true);
        o.set_double("tol", 1e-7);
        assert_eq!(o.get("solver").as_deref(), Some("gmres"));
        assert_eq!(o.get_parsed::<usize>("maxits"), Some(500));
        assert_eq!(o.get_parsed::<bool>("trace"), Some(true));
        assert_eq!(o.get_parsed::<f64>("tol"), Some(1e-7));
        assert_eq!(o.len(), 4);
        assert!(!o.is_empty());
    }

    #[test]
    fn last_write_wins_and_aliases_resolve_in_order() {
        let mut o = Options::new();
        o.set("tol", "1e-3");
        o.set("tol", "1e-9");
        assert_eq!(o.get("tol").as_deref(), Some("1e-9"));
        o.set("ksp_rtol", "1e-4");
        assert_eq!(o.get_first(&["ksp_rtol", "tol"]).as_deref(), Some("1e-4"));
        assert_eq!(o.get_first(&["missing", "tol"]).as_deref(), Some("1e-9"));
        assert_eq!(o.get_first(&["missing1", "missing2"]), None);
    }

    #[test]
    fn dump_is_sorted_and_parseable() {
        let mut o = Options::new();
        o.set("b_key", "2");
        o.set("a_key", "1");
        assert_eq!(o.dump(), "a_key=1\nb_key=2\n");
    }
}
