//! Solve outcomes and error types.

use std::fmt;

/// Why an iteration stopped — the RKSP analogue of PETSc's
/// `KSPConvergedReason`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergedReason {
    /// Residual fell below `rtol · ‖b‖`.
    RelativeTolerance,
    /// Residual fell below the absolute tolerance.
    AbsoluteTolerance,
    /// Iteration limit reached without convergence.
    MaxIterations,
    /// The method hit a breakdown condition (zero inner product etc.).
    Breakdown,
    /// Residual exceeded the divergence tolerance `dtol · ‖b‖` or became
    /// non-finite.
    Diverged,
    /// No new best residual for `stagnation_window` consecutive
    /// iterations (see [`crate::KspConfig::stagnation_window`]).
    Stagnated,
    /// The wall-clock budget ran out (see
    /// [`crate::KspConfig::max_seconds`]). The verdict is agreed through
    /// the per-iteration reductions, so every rank stops identically.
    TimedOut,
}

impl ConvergedReason {
    /// Did the solve succeed?
    pub fn converged(self) -> bool {
        matches!(
            self,
            ConvergedReason::RelativeTolerance | ConvergedReason::AbsoluteTolerance
        )
    }

    /// Stable short name, used by the flight recorder's verdict events
    /// and postmortem JSON.
    pub fn name(self) -> &'static str {
        match self {
            ConvergedReason::RelativeTolerance => "rtol",
            ConvergedReason::AbsoluteTolerance => "atol",
            ConvergedReason::MaxIterations => "max_iterations",
            ConvergedReason::Breakdown => "breakdown",
            ConvergedReason::Diverged => "diverged",
            ConvergedReason::Stagnated => "stagnated",
            ConvergedReason::TimedOut => "timed_out",
        }
    }
}

impl fmt::Display for ConvergedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConvergedReason::RelativeTolerance => "converged: relative tolerance",
            ConvergedReason::AbsoluteTolerance => "converged: absolute tolerance",
            ConvergedReason::MaxIterations => "diverged: iteration limit",
            ConvergedReason::Breakdown => "diverged: breakdown",
            ConvergedReason::Diverged => "diverged: residual blow-up",
            ConvergedReason::Stagnated => "diverged: stagnation",
            ConvergedReason::TimedOut => "diverged: wall-clock budget exceeded",
        };
        f.write_str(s)
    }
}

/// Outcome of a Krylov solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KspResult {
    /// Stop reason.
    pub reason: ConvergedReason,
    /// Iterations performed.
    pub iterations: usize,
    /// ‖b − A·x₀‖₂ at entry.
    pub initial_residual: f64,
    /// ‖b − A·x‖₂ (or its recurrence estimate) at exit.
    pub final_residual: f64,
    /// Residual norm per iteration (entry 0 is the initial residual).
    pub history: Vec<f64>,
    /// Condition-number estimate of the preconditioned operator from the
    /// CG Lanczos coefficients (see [`crate::analytics`]); `None` for
    /// methods that don't build the tridiagonal, or too-short solves.
    pub cond_estimate: Option<f64>,
}

impl KspResult {
    /// Did the solve succeed?
    pub fn converged(&self) -> bool {
        self.reason.converged()
    }
}

/// Errors from solver configuration or the substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum KspError {
    /// An underlying sparse/communication failure.
    Sparse(rsparse::SparseError),
    /// The requested solver or preconditioner name is unknown.
    UnknownName {
        /// "solver" or "preconditioner".
        kind: &'static str,
        /// The unknown name.
        name: String,
    },
    /// A configuration value is invalid (e.g. negative tolerance).
    BadConfig(String),
    /// Operands don't conform (partition mismatch etc.).
    Nonconforming(String),
}

impl fmt::Display for KspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KspError::Sparse(e) => write!(f, "substrate error: {e}"),
            KspError::UnknownName { kind, name } => write!(f, "unknown {kind} '{name}'"),
            KspError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            KspError::Nonconforming(msg) => write!(f, "nonconforming operands: {msg}"),
        }
    }
}

impl std::error::Error for KspError {}

impl From<rsparse::SparseError> for KspError {
    fn from(e: rsparse::SparseError) -> Self {
        KspError::Sparse(e)
    }
}

impl From<rcomm::CommError> for KspError {
    fn from(e: rcomm::CommError) -> Self {
        KspError::Sparse(rsparse::SparseError::Comm(e.to_string()))
    }
}

/// Result alias.
pub type KspOutcome<T> = Result<T, KspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_classify_convergence() {
        assert!(ConvergedReason::RelativeTolerance.converged());
        assert!(ConvergedReason::AbsoluteTolerance.converged());
        assert!(!ConvergedReason::MaxIterations.converged());
        assert!(!ConvergedReason::Breakdown.converged());
        assert!(!ConvergedReason::Diverged.converged());
        assert!(!ConvergedReason::Stagnated.converged());
        assert!(!ConvergedReason::TimedOut.converged());
    }

    #[test]
    fn displays_are_informative() {
        assert!(ConvergedReason::Breakdown.to_string().contains("breakdown"));
        let e = KspError::UnknownName { kind: "solver", name: "zzz".into() };
        assert!(e.to_string().contains("zzz"));
        let e = KspError::BadConfig("rtol < 0".into());
        assert!(e.to_string().contains("rtol"));
    }
}
