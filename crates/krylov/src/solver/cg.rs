//! Preconditioned conjugate gradients (Hestenes–Stiefel), for SPD
//! operators with an SPD preconditioner.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();

    let bnorm = b.norm2(comm)?;
    let mut r = b.clone();
    let mut scratch = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut scratch)?;
    r.axpy(-1.0, &scratch)?;
    let r0 = r.norm2(comm)?;
    let mut mon = Monitor::new(cfg, bnorm, r0);
    if let Some(reason) = mon.check(0, r0) {
        return Ok(mon.finish(reason, 0, r0, r0));
    }

    let mut z = DistVector::zeros(part.clone(), rank);
    pc.apply(comm, &r, &mut z)?;
    let mut p = z.clone();
    let mut q = DistVector::zeros(part, rank);
    let mut rz = r.dot(&z, comm)?;

    let mut iterations = 0usize;
    let mut rnorm = r0;
    let reason = loop {
        iterations += 1;
        op.apply(comm, &p, &mut q)?;
        let pq = p.dot(&q, comm)?;
        if pq == 0.0 || !pq.is_finite() {
            break ConvergedReason::Breakdown;
        }
        let alpha = rz / pq;
        x.axpy(alpha, &p)?;
        r.axpy(-alpha, &q)?;
        rnorm = r.norm2(comm)?;
        if let Some(reason) = mon.check(iterations, rnorm) {
            break reason;
        }
        pc.apply(comm, &r, &mut z)?;
        let rz_new = r.dot(&z, comm)?;
        if rz == 0.0 {
            break ConvergedReason::Breakdown;
        }
        let beta = rz_new / rz;
        rz = rz_new;
        // p ← z + β·p.
        for (pi, zi) in p.local_mut().iter_mut().zip(z.local()) {
            *pi = zi + beta * *pi;
        }
    };
    Ok(mon.finish(reason, iterations, r0, rnorm))
}
