//! Preconditioned conjugate gradients (Hestenes–Stiefel), for SPD
//! operators with an SPD preconditioner.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    cb: Option<&mut dyn probe::SolveMonitor>,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();

    let bnorm = b.norm2(comm)?;
    let mut r = b.clone();
    let mut scratch = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut scratch)?;
    r.axpy(-1.0, &scratch)?;
    let r0 = r.norm2(comm)?;
    let mut mon = Monitor::new(comm, cfg, bnorm, r0, cb);
    if let Some(reason) = mon.check(0, r0) {
        return Ok(mon.finish(reason, 0, r0, r0));
    }

    let mut z = DistVector::zeros(part.clone(), rank);
    pc.apply(comm, &r, &mut z)?;
    let mut p = z.clone();
    let mut q = DistVector::zeros(part, rank);
    let mut rz = r.dot(&z, comm)?;

    let mut iterations = 0usize;
    let mut rnorm = r0;
    // The CG scalars double as Lanczos coefficients; keep them so the
    // result can carry a condition-number estimate (see
    // [`crate::analytics`]).
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let reason = loop {
        iterations += 1;
        op.apply(comm, &p, &mut q)?;
        let pq = p.dot(&q, comm)?;
        if pq == 0.0 || !pq.is_finite() {
            break ConvergedReason::Breakdown;
        }
        let alpha = rz / pq;
        alphas.push(alpha);
        x.axpy(alpha, &p)?;
        r.axpy(-alpha, &q)?;
        let rz_new;
        if cfg.fused_reductions {
            // Apply the preconditioner first, then combine ‖r‖² and r·z
            // into one collective: 2 allreduces per iteration instead of
            // 3. The allreduce is elementwise over the same rank-ordered
            // tree, so each component is bit-identical to its standalone
            // reduction and the convergence history is unchanged.
            pc.apply(comm, &r, &mut z)?;
            // The wall-clock guard flag rides the same collective as a
            // third element, so the timeout verdict is rank-agreed for
            // free.
            let local = [
                rsparse::dense::pdot(r.local(), r.local()),
                rsparse::dense::pdot(r.local(), z.local()),
                mon.local_guard(),
            ];
            let fused = comm.allreduce_vec(&local, rcomm::sum)?;
            rnorm = fused[0].sqrt();
            rz_new = fused[1];
            mon.absorb_guard(fused[2]);
            if let Some(reason) = mon.check(iterations, rnorm) {
                break reason;
            }
        } else {
            rnorm = mon.guarded_norm2(&r)?;
            if let Some(reason) = mon.check(iterations, rnorm) {
                break reason;
            }
            pc.apply(comm, &r, &mut z)?;
            rz_new = r.dot(&z, comm)?;
        }
        if cfg.checkpoint_every > 0 && iterations.is_multiple_of(cfg.checkpoint_every) {
            // Elastic-recovery snapshot (x, r) at the checkpoint boundary;
            // every rank passes here on the same iteration, so the
            // deposited generation is cohort-consistent up to the one
            // in-flight boundary `latest_consistent` tolerates.
            crate::checkpoint::deposit(
                comm.world_members()[rank],
                iterations,
                op.partition().start_row(rank),
                x.local(),
                r.local(),
            );
        }
        if rz == 0.0 {
            break ConvergedReason::Breakdown;
        }
        let beta = rz_new / rz;
        betas.push(beta);
        rz = rz_new;
        // p ← z + β·p (threaded elementwise kernel; same arithmetic).
        rsparse::dense::xpby(z.local(), beta, p.local_mut());
    };
    let mut result = mon.finish(reason, iterations, r0, rnorm);
    result.cond_estimate = crate::analytics::cond_estimate_from_cg(&alphas, &betas);
    Ok(result)
}
