//! Transpose-free QMR (Freund), right-preconditioned — smooths CGS's
//! erratic convergence without needing Aᵀ.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    cb: Option<&mut dyn probe::SolveMonitor>,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();

    // Preconditioned apply: w ← A·M⁻¹·v.
    let mut pre = DistVector::zeros(part.clone(), rank);
    let mut apply_right = |comm: &Communicator,
                           vin: &DistVector,
                           vout: &mut DistVector|
     -> KspOutcome<()> {
        pc.apply(comm, vin, &mut pre)?;
        op.apply(comm, &pre, vout)
    };

    let bnorm = b.norm2(comm)?;
    let mut r = b.clone();
    let mut tmp = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut tmp)?;
    r.axpy(-1.0, &tmp)?;
    let r0n = r.norm2(comm)?;
    let mut mon = Monitor::new(comm, cfg, bnorm, r0n, cb);
    if let Some(reason) = mon.check(0, r0n) {
        return Ok(mon.finish(reason, 0, r0n, r0n));
    }

    // TFQMR in the preconditioned variable: accumulate the update d in the
    // preconditioned space, then x += M⁻¹·(…) is folded in because every
    // direction enters through M⁻¹ already — we accumulate d directly in
    // solution space by preconditioning each y before adding.
    let r_hat = r.clone();
    let mut w = r.clone();
    let mut y = r.clone();
    let mut v = DistVector::zeros(part.clone(), rank);
    apply_right(comm, &y, &mut v)?;
    let mut u = v.clone();
    let mut d = DistVector::zeros(part.clone(), rank);
    let mut d_pre = DistVector::zeros(part.clone(), rank);
    let mut theta = 0.0f64;
    let mut eta = 0.0f64;
    let mut tau = r0n;
    let mut rho = r_hat.dot(&r, comm)?;

    let mut iterations = 0usize;
    let mut rnorm = r0n;
    let reason = 'outer: loop {
        iterations += 1;
        let sigma = r_hat.dot(&v, comm)?;
        if sigma == 0.0 || rho == 0.0 || !sigma.is_finite() {
            break ConvergedReason::Breakdown;
        }
        let alpha = rho / sigma;
        // Two half-steps m = 1, 2.
        for m in 0..2 {
            if m == 1 {
                // y₂ = y₁ − α·v ; u₂ = A·M⁻¹·y₂.
                y.axpy(-alpha, &v)?;
                apply_right(comm, &y, &mut u)?;
            }
            // w ← w − α·u.
            w.axpy(-alpha, &u)?;
            // d ← y + (θ²·η/α)·d, accumulated in un-preconditioned space.
            let coeff = theta * theta * eta / alpha;
            for (di, yi) in d.local_mut().iter_mut().zip(y.local()) {
                *di = yi + coeff * *di;
            }
            theta = mon.guarded_norm2(&w)? / tau;
            let c = 1.0 / (1.0 + theta * theta).sqrt();
            tau *= theta * c;
            eta = c * c * alpha;
            // x += η·M⁻¹·d.
            pc.apply(comm, &d, &mut d_pre)?;
            x.axpy(eta, &d_pre)?;
            // Freund's residual bound: ‖r‖ ≤ τ·√(2k+1…); use τ directly as
            // the (tight in practice) estimate PETSc reports.
            rnorm = tau * ((2 * iterations) as f64).sqrt();
            if let Some(reason) = mon.check(iterations, rnorm) {
                // Recompute the true residual for honest reporting.
                rnorm = crate::solver::true_residual_norm(comm, op, b, x)?;
                break 'outer reason;
            }
        }
        let rho_new = r_hat.dot(&w, comm)?;
        let beta = rho_new / rho;
        rho = rho_new;
        // y₁ = w + β·y₂ ; v = A·M⁻¹·y₁ + β·(u₂ + β·v).
        for (yi, wi) in y.local_mut().iter_mut().zip(w.local()) {
            *yi = wi + beta * *yi;
        }
        let mut au = DistVector::zeros(part.clone(), rank);
        apply_right(comm, &y, &mut au)?;
        for ((vi, ui), aui) in v.local_mut().iter_mut().zip(u.local()).zip(au.local()) {
            *vi = aui + beta * (ui + beta * *vi);
        }
        u = au;
    };
    Ok(mon.finish(reason, iterations, r0n, rnorm))
}
