//! Conjugate gradients squared (Sonneveld) with right preconditioning.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    cb: Option<&mut dyn probe::SolveMonitor>,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();

    let bnorm = b.norm2(comm)?;
    let mut r = b.clone();
    let mut tmp = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut tmp)?;
    r.axpy(-1.0, &tmp)?;
    let r0n = r.norm2(comm)?;
    let mut mon = Monitor::new(comm, cfg, bnorm, r0n, cb);
    if let Some(reason) = mon.check(0, r0n) {
        return Ok(mon.finish(reason, 0, r0n, r0n));
    }

    let r_hat = r.clone();
    let mut p = r.clone();
    let mut u = r.clone();
    let mut q = DistVector::zeros(part.clone(), rank);
    let mut v = DistVector::zeros(part.clone(), rank);
    let mut phat = DistVector::zeros(part.clone(), rank);
    let mut uhat = DistVector::zeros(part, rank);
    let mut rho = r_hat.dot(&r, comm)?;

    let mut iterations = 0usize;
    let mut rnorm = r0n;
    let reason = loop {
        iterations += 1;
        if rho == 0.0 || !rho.is_finite() {
            break ConvergedReason::Breakdown;
        }
        // p̂ = M⁻¹ p ; v = A p̂.
        pc.apply(comm, &p, &mut phat)?;
        op.apply(comm, &phat, &mut v)?;
        let sigma = r_hat.dot(&v, comm)?;
        if sigma == 0.0 || !sigma.is_finite() {
            break ConvergedReason::Breakdown;
        }
        let alpha = rho / sigma;
        // q = u − α·v.
        for ((qi, ui), vi) in q.local_mut().iter_mut().zip(u.local()).zip(v.local()) {
            *qi = ui - alpha * vi;
        }
        // û = M⁻¹(u + q) ; x += α·û ; r −= α·A·û.
        for (ti, (ui, qi)) in tmp.local_mut().iter_mut().zip(u.local().iter().zip(q.local())) {
            *ti = ui + qi;
        }
        pc.apply(comm, &tmp, &mut uhat)?;
        x.axpy(alpha, &uhat)?;
        op.apply(comm, &uhat, &mut tmp)?;
        r.axpy(-alpha, &tmp)?;
        rnorm = mon.guarded_norm2(&r)?;
        if let Some(reason) = mon.check(iterations, rnorm) {
            break reason;
        }
        let rho_new = r_hat.dot(&r, comm)?;
        let beta = rho_new / rho;
        rho = rho_new;
        // u = r + β·q ; p = u + β·(q + β·p).
        for ((ui, ri), qi) in u.local_mut().iter_mut().zip(r.local()).zip(q.local()) {
            *ui = ri + beta * qi;
        }
        for ((pi, qi), ui) in p.local_mut().iter_mut().zip(q.local()).zip(u.local()) {
            *pi = ui + beta * (qi + beta * *pi);
        }
    };
    Ok(mon.finish(reason, iterations, r0n, rnorm))
}
