//! Preconditioned Richardson iteration: x ← x + s·M⁻¹·(b − A·x). The
//! simplest stationary method; with a good preconditioner it is the
//! smoother multigrid and dome-level composites build on.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    cb: Option<&mut dyn probe::SolveMonitor>,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();
    let s = cfg.richardson_scale;

    let bnorm = b.norm2(comm)?;
    let mut ax = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut ax)?;
    let mut r = b.clone();
    r.axpy(-1.0, &ax)?;
    let r0 = r.norm2(comm)?;
    let mut mon = Monitor::new(comm, cfg, bnorm, r0, cb);
    if let Some(reason) = mon.check(0, r0) {
        return Ok(mon.finish(reason, 0, r0, r0));
    }

    let mut z = DistVector::zeros(part, rank);
    let mut iterations = 0usize;
    let mut rnorm;
    let reason = loop {
        iterations += 1;
        pc.apply(comm, &r, &mut z)?;
        x.axpy(s, &z)?;
        op.apply(comm, x, &mut ax)?;
        r.local_mut().copy_from_slice(b.local());
        r.axpy(-1.0, &ax)?;
        rnorm = mon.guarded_norm2(&r)?;
        if let Some(reason) = mon.check(iterations, rnorm) {
            break reason;
        }
    };
    Ok(mon.finish(reason, iterations, r0, rnorm))
}
