//! Batched multi-RHS drivers: block CG and pseudo-block GMRES.
//!
//! Both drivers run `k` independent solves in lockstep so that every
//! per-iteration collective carries all active columns at once: the
//! operator application uses the fused multi-vector SpMV
//! ([`LinearOperator::apply_multi`] — one matrix sweep and one halo
//! exchange for all columns), and the per-column dot products batch into
//! a single `allreduce_vec`. Since the batched reduction is elementwise
//! over the same rank-ordered tree as the standalone reductions, every
//! column's scalar sequence — and therefore its iterate — is
//! **bit-identical** to the corresponding single-RHS solve. Columns that
//! converge (or break down) early are frozen: their iterate stops
//! changing and they drop out of subsequent reductions, while the
//! remaining columns keep iterating.
//!
//! Freezing decisions are made only from reduced (rank-agreed) values,
//! so the active set is identical on every rank and the collective
//! schedule never diverges.
//!
//! The batched drivers do not deposit elastic-recovery checkpoints
//! (`checkpoint_every` is ignored); recovery of a batched solve re-runs
//! it from the session's cached setup instead.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspError, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

/// Validate the flat column layout: `k` local columns of length `n`.
fn check_layout(n: usize, k: usize, bs: &[f64], xs: &[f64]) -> KspOutcome<()> {
    if k == 0 {
        return Err(KspError::BadConfig("batched solve needs k >= 1".into()));
    }
    if bs.len() != k * n || xs.len() != k * n {
        return Err(KspError::Nonconforming(format!(
            "batched solve expects k*n_local = {} values per side, got b: {}, x: {}",
            k * n,
            bs.len(),
            xs.len()
        )));
    }
    Ok(())
}

/// The wall-clock guard flag folded into each batched reduction: any
/// active column's monitor over budget trips the shared flag (all
/// monitors carry the same budget, so this matches the single-solve
/// guard bit-for-bit when `k = 1`).
fn batch_guard(mons: &[Option<Monitor<'_, '_>>]) -> f64 {
    mons.iter()
        .flatten()
        .map(|m| m.local_guard())
        .fold(0.0, f64::max)
}

/// Block conjugate gradients: `k` CG solves in lockstep sharing every
/// collective. Mirrors the fused-reduction schedule of
/// [`super::cg::solve`] exactly per column — same operation order, same
/// reduction contents — so column `q`'s result is bit-identical to a
/// single CG solve of that column.
pub(crate) fn block_cg(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    bs: &[f64],
    xs: &mut [f64],
    k: usize,
    cfg: &KspConfig,
) -> KspOutcome<Vec<KspResult>> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();
    let n = part.local_rows(rank);
    check_layout(n, k, bs, xs)?;
    let col = |c: usize| c * n..(c + 1) * n;

    // ‖b‖ for every column in one collective (componentwise identical to
    // k standalone norm2 calls).
    let bb_local: Vec<f64> = (0..k)
        .map(|c| rsparse::dense::pdot(&bs[col(c)], &bs[col(c)]))
        .collect();
    let bnorms: Vec<f64> =
        comm.allreduce_vec(&bb_local, rcomm::sum)?.iter().map(|v| v.sqrt()).collect();

    // r = b − A·x, one fused multi-vector apply for all columns.
    let mut q_flat = vec![0.0f64; k * n];
    op.apply_multi(comm, xs, &mut q_flat, k)?;
    let mut r: Vec<DistVector> = (0..k)
        .map(|c| {
            let mut rc = bs[col(c)].to_vec();
            rsparse::dense::axpy(-1.0, &q_flat[col(c)], &mut rc);
            DistVector::from_local(part.clone(), rank, rc)
        })
        .collect::<Result<_, _>>()
        .map_err(KspError::Sparse)?;
    let rr_local: Vec<f64> =
        r.iter().map(|rc| rsparse::dense::pdot(rc.local(), rc.local())).collect();
    let r0s: Vec<f64> =
        comm.allreduce_vec(&rr_local, rcomm::sum)?.iter().map(|v| v.sqrt()).collect();

    let mut mons: Vec<Option<Monitor>> = Vec::with_capacity(k);
    let mut results: Vec<Option<KspResult>> = vec![None; k];
    for c in 0..k {
        let mut mon = Monitor::new(comm, cfg, bnorms[c], r0s[c], None);
        if let Some(reason) = mon.check(0, r0s[c]) {
            results[c] = Some(mon.finish(reason, 0, r0s[c], r0s[c]));
            mons.push(None);
        } else {
            mons.push(Some(mon));
        }
    }

    let mut z: Vec<DistVector> =
        (0..k).map(|_| DistVector::zeros(part.clone(), rank)).collect();
    let mut p_flat = vec![0.0f64; k * n];
    let mut rz = vec![0.0f64; k];
    {
        let active: Vec<usize> = (0..k).filter(|&c| results[c].is_none()).collect();
        if !active.is_empty() {
            let mut rz_local = Vec::with_capacity(active.len());
            for &c in &active {
                pc.apply(comm, &r[c], &mut z[c])?;
                p_flat[col(c)].copy_from_slice(z[c].local());
                rz_local.push(rsparse::dense::pdot(r[c].local(), z[c].local()));
            }
            let red = comm.allreduce_vec(&rz_local, rcomm::sum)?;
            for (i, &c) in active.iter().enumerate() {
                rz[c] = red[i];
            }
        }
    }

    let mut iterations = 0usize;
    let mut rnorm_last = r0s.clone();
    let mut alphas: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut betas: Vec<Vec<f64>> = vec![Vec::new(); k];

    while results.iter().any(Option::is_none) {
        iterations += 1;
        op.apply_multi(comm, &p_flat, &mut q_flat, k)?;

        let active: Vec<usize> = (0..k).filter(|&c| results[c].is_none()).collect();
        let pq_local: Vec<f64> = active
            .iter()
            .map(|&c| rsparse::dense::pdot(&p_flat[col(c)], &q_flat[col(c)]))
            .collect();
        let pqs = comm.allreduce_vec(&pq_local, rcomm::sum)?;

        let mut survivors: Vec<(usize, f64)> = Vec::with_capacity(active.len());
        for (i, &c) in active.iter().enumerate() {
            let pq = pqs[i];
            if pq == 0.0 || !pq.is_finite() {
                let mut res = mons[c].take().unwrap().finish(
                    ConvergedReason::Breakdown,
                    iterations,
                    r0s[c],
                    rnorm_last[c],
                );
                res.cond_estimate =
                    crate::analytics::cond_estimate_from_cg(&alphas[c], &betas[c]);
                results[c] = Some(res);
                p_flat[col(c)].fill(0.0);
            } else {
                survivors.push((c, pq));
            }
        }

        if survivors.is_empty() {
            continue;
        }
        // α, iterate/residual updates and the preconditioner application,
        // then one fused reduction carrying [‖r‖², r·z] per column plus
        // the shared wall-clock guard — exactly the per-column contents
        // of the single-solve fused collective.
        let mut fused_local = Vec::with_capacity(2 * survivors.len() + 1);
        for &(c, pq) in &survivors {
            let alpha = rz[c] / pq;
            alphas[c].push(alpha);
            {
                let (pcol, qcol) = (&p_flat[col(c)], &q_flat[col(c)]);
                rsparse::dense::axpy(alpha, pcol, &mut xs[col(c)]);
                rsparse::dense::axpy(-alpha, qcol, r[c].local_mut());
            }
            pc.apply(comm, &r[c], &mut z[c])?;
            fused_local.push(rsparse::dense::pdot(r[c].local(), r[c].local()));
            fused_local.push(rsparse::dense::pdot(r[c].local(), z[c].local()));
        }
        fused_local.push(batch_guard(&mons));
        let fused = comm.allreduce_vec(&fused_local, rcomm::sum)?;
        let guard = fused[fused.len() - 1];

        for (i, &(c, _)) in survivors.iter().enumerate() {
            let rnorm = fused[2 * i].sqrt();
            let rz_new = fused[2 * i + 1];
            rnorm_last[c] = rnorm;
            let mon = mons[c].as_mut().unwrap();
            mon.absorb_guard(guard);
            let reason = match mon.check(iterations, rnorm) {
                Some(reason) => Some(reason),
                None if rz[c] == 0.0 => Some(ConvergedReason::Breakdown),
                None => None,
            };
            if let Some(reason) = reason {
                let mut res =
                    mons[c].take().unwrap().finish(reason, iterations, r0s[c], rnorm);
                res.cond_estimate =
                    crate::analytics::cond_estimate_from_cg(&alphas[c], &betas[c]);
                results[c] = Some(res);
                p_flat[col(c)].fill(0.0);
                continue;
            }
            let beta = rz_new / rz[c];
            betas[c].push(beta);
            rz[c] = rz_new;
            rsparse::dense::xpby(z[c].local(), beta, &mut p_flat[col(c)]);
        }
    }
    Ok(results.into_iter().map(Option::unwrap).collect())
}

/// Per-column Arnoldi state for pseudo-block GMRES.
struct GmresCol {
    basis_v: Vec<DistVector>,
    basis_z: Vec<DistVector>,
    n_v: usize,
    n_z: usize,
    cs: Vec<f64>,
    sn: Vec<f64>,
    g: Vec<f64>,
    h_cols: Vec<Vec<f64>>,
}

impl GmresCol {
    fn store_v(&mut self, src: &[f64], part: &rsparse::BlockRowPartition, rank: usize) {
        if self.n_v < self.basis_v.len() {
            self.basis_v[self.n_v].local_mut().copy_from_slice(src);
        } else {
            self.basis_v.push(
                DistVector::from_local(part.clone(), rank, src.to_vec()).expect("conforming"),
            );
        }
        self.n_v += 1;
    }

    fn store_z(&mut self, src: &DistVector) {
        if self.n_z < self.basis_z.len() {
            self.basis_z[self.n_z].local_mut().copy_from_slice(src.local());
        } else {
            self.basis_z.push(src.clone());
        }
        self.n_z += 1;
    }
}

/// Pseudo-block restarted GMRES/FGMRES: `k` independent Arnoldi
/// processes advanced in lockstep (same inner index `j` every step), so
/// the operator application is one fused multi-vector SpMV and all
/// columns' classical-Gram–Schmidt projection coefficients ride a single
/// `allreduce_vec` (one more for the batched `h_{j+1,j}` norms + guard).
/// Givens rotations and back-substitution stay per-column and local.
/// Requires `cfg.fused_reductions` (the caller routes the modified-GS
/// schedule to sequential solves instead).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pseudo_block_gmres(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    bs: &[f64],
    xs: &mut [f64],
    k: usize,
    cfg: &KspConfig,
    flexible: bool,
) -> KspOutcome<Vec<KspResult>> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();
    let n = part.local_rows(rank);
    check_layout(n, k, bs, xs)?;
    let m = cfg.restart;
    let col = |c: usize| c * n..(c + 1) * n;

    let bb_local: Vec<f64> = (0..k)
        .map(|c| rsparse::dense::pdot(&bs[col(c)], &bs[col(c)]))
        .collect();
    let bnorms: Vec<f64> =
        comm.allreduce_vec(&bb_local, rcomm::sum)?.iter().map(|v| v.sqrt()).collect();

    let mut w_flat = vec![0.0f64; k * n];
    op.apply_multi(comm, xs, &mut w_flat, k)?;
    let mut r: Vec<Vec<f64>> = (0..k)
        .map(|c| {
            let mut rc = bs[col(c)].to_vec();
            rsparse::dense::axpy(-1.0, &w_flat[col(c)], &mut rc);
            rc
        })
        .collect();
    let rr_local: Vec<f64> =
        r.iter().map(|rc| rsparse::dense::pdot(rc, rc)).collect();
    let r0s: Vec<f64> =
        comm.allreduce_vec(&rr_local, rcomm::sum)?.iter().map(|v| v.sqrt()).collect();

    let mut mons: Vec<Option<Monitor>> = Vec::with_capacity(k);
    let mut results: Vec<Option<KspResult>> = vec![None; k];
    for c in 0..k {
        let mut mon = Monitor::new(comm, cfg, bnorms[c], r0s[c], None);
        if let Some(reason) = mon.check(0, r0s[c]) {
            results[c] = Some(mon.finish(reason, 0, r0s[c], r0s[c]));
            mons.push(None);
        } else {
            mons.push(Some(mon));
        }
    }

    let mut cols: Vec<GmresCol> = (0..k)
        .map(|_| GmresCol {
            basis_v: Vec::with_capacity(m + 1),
            basis_z: Vec::with_capacity(if flexible { m } else { 0 }),
            n_v: 0,
            n_z: 0,
            cs: Vec::with_capacity(m),
            sn: Vec::with_capacity(m),
            g: vec![0.0f64; m + 1],
            h_cols: Vec::with_capacity(m),
        })
        .collect();
    let mut z_dv: Vec<DistVector> =
        (0..k).map(|_| DistVector::zeros(part.clone(), rank)).collect();
    let mut vy = DistVector::zeros(part.clone(), rank);
    let mut z_flat = vec![0.0f64; k * n];
    let mut rnorms = r0s.clone();
    let mut iterations = 0usize;

    // Back-substitute y and apply the correction for one column whose
    // inner cycle just ended after `inner` steps.
    let apply_update = |st: &mut GmresCol,
                            x_col: &mut [f64],
                            z_dv: &mut DistVector,
                            vy: &mut DistVector,
                            inner: usize|
     -> KspOutcome<()> {
        let mut y = vec![0.0f64; inner];
        for i in (0..inner).rev() {
            let mut acc = st.g[i];
            for (jj, yj) in y.iter().enumerate().take(inner).skip(i + 1) {
                acc -= st.h_cols[jj][i] * yj;
            }
            y[i] = acc / st.h_cols[i][i];
        }
        if flexible {
            for (zi, yi) in st.basis_z.iter().take(st.n_z).zip(&y) {
                rsparse::dense::axpy(*yi, zi.local(), x_col);
            }
        } else {
            vy.local_mut().fill(0.0);
            for (vi, yi) in st.basis_v.iter().zip(&y) {
                vy.axpy(*yi, vi).map_err(KspError::Sparse)?;
            }
            pc.apply(comm, vy, z_dv)?;
            rsparse::dense::axpy(1.0, z_dv.local(), x_col);
        }
        Ok(())
    };

    while results.iter().any(Option::is_none) {
        // --- start of a restart cycle: all live columns enter together.
        let entering: Vec<usize> = (0..k).filter(|&c| results[c].is_none()).collect();
        let mut in_cycle: Vec<usize> = Vec::with_capacity(entering.len());
        for &c in &entering {
            let beta = rnorms[c];
            if beta == 0.0 {
                results[c] = Some(mons[c].take().unwrap().finish(
                    ConvergedReason::AbsoluteTolerance,
                    iterations,
                    r0s[c],
                    rnorms[c],
                ));
                z_flat[col(c)].fill(0.0);
                continue;
            }
            let st = &mut cols[c];
            st.n_v = 0;
            st.n_z = 0;
            st.store_v(&r[c], &part, rank);
            rsparse::dense::scale(1.0 / beta, st.basis_v[0].local_mut());
            st.cs.clear();
            st.sn.clear();
            st.g.fill(0.0);
            st.g[0] = beta;
            in_cycle.push(c);
        }

        for j in 0..m {
            if in_cycle.is_empty() {
                break;
            }
            // w = A·M⁻¹·v_j for every in-cycle column: per-column PC
            // applies, then one fused multi-vector operator apply.
            for &c in &in_cycle {
                pc.apply(comm, &cols[c].basis_v[j], &mut z_dv[c])?;
                z_flat[col(c)].copy_from_slice(z_dv[c].local());
                if flexible {
                    let zc = z_dv[c].clone();
                    cols[c].store_z(&zc);
                }
            }
            op.apply_multi(comm, &z_flat, &mut w_flat, k)?;

            // Classical Gram–Schmidt, batched: all columns' j+1
            // projection coefficients in one collective.
            let gs_span = probe::span!("gram_schmidt");
            let mut dots_local = Vec::with_capacity(in_cycle.len() * (j + 1));
            for &c in &in_cycle {
                let wc = &w_flat[col(c)];
                for vi in cols[c].basis_v.iter().take(j + 1) {
                    dots_local.push(rsparse::dense::pdot(wc, vi.local()));
                }
            }
            let dots = comm.allreduce_vec(&dots_local, rcomm::sum)?;
            for (ci, &c) in in_cycle.iter().enumerate() {
                let st = &mut cols[c];
                if j == st.h_cols.len() {
                    st.h_cols.push(vec![0.0f64; m + 2]);
                }
                let wc = &mut w_flat[col(c)];
                for i in 0..=j {
                    let hij = dots[ci * (j + 1) + i];
                    st.h_cols[j][i] = hij;
                    rsparse::dense::axpy(-hij, st.basis_v[i].local(), wc);
                }
            }
            drop(gs_span);

            // Batched ‖w‖ (= h_{j+1,j}) with the wall-clock guard riding
            // the same collective.
            let mut ww_local: Vec<f64> = in_cycle
                .iter()
                .map(|&c| {
                    let wc = &w_flat[col(c)];
                    rsparse::dense::pdot(wc, wc)
                })
                .collect();
            ww_local.push(batch_guard(&mons));
            let ww = comm.allreduce_vec(&ww_local, rcomm::sum)?;
            let guard = ww[ww.len() - 1];

            iterations += 1;
            let mut still: Vec<usize> = Vec::with_capacity(in_cycle.len());
            for (ci, &c) in in_cycle.iter().enumerate() {
                let hnext = ww[ci].sqrt();
                let st = &mut cols[c];
                st.h_cols[j][j + 1] = hnext;
                for i in 0..j {
                    let t = st.cs[i] * st.h_cols[j][i] + st.sn[i] * st.h_cols[j][i + 1];
                    st.h_cols[j][i + 1] =
                        -st.sn[i] * st.h_cols[j][i] + st.cs[i] * st.h_cols[j][i + 1];
                    st.h_cols[j][i] = t;
                }
                let (cg, sg) = super::gmres::givens(st.h_cols[j][j], st.h_cols[j][j + 1]);
                st.cs.push(cg);
                st.sn.push(sg);
                st.h_cols[j][j] = cg * st.h_cols[j][j] + sg * st.h_cols[j][j + 1];
                st.h_cols[j][j + 1] = 0.0;
                let gj = st.g[j];
                st.g[j] = cg * gj;
                st.g[j + 1] = -sg * gj;
                rnorms[c] = st.g[j + 1].abs();

                let mon = mons[c].as_mut().unwrap();
                mon.absorb_guard(guard);
                let reason = match mon.check(iterations, rnorms[c]) {
                    Some(reason) => Some(reason),
                    None if hnext == 0.0 => Some(ConvergedReason::AbsoluteTolerance),
                    None => None,
                };
                if let Some(reason) = reason {
                    // Inner termination: fold the correction into x now,
                    // exactly as the single solve does after its inner
                    // break, then freeze the column.
                    apply_update(
                        &mut cols[c],
                        &mut xs[col(c)],
                        &mut z_dv[c],
                        &mut vy,
                        j + 1,
                    )?;
                    results[c] = Some(mons[c].take().unwrap().finish(
                        reason,
                        iterations,
                        r0s[c],
                        rnorms[c],
                    ));
                    z_flat[col(c)].fill(0.0);
                    continue;
                }
                let wc = &w_flat[col(c)];
                cols[c].store_v(wc, &part, rank);
                let nv = cols[c].n_v;
                rsparse::dense::scale(1.0 / hnext, cols[c].basis_v[nv - 1].local_mut());
                still.push(c);
            }
            in_cycle = still;
        }

        // --- restart: columns that exhausted the cycle update x and
        // recompute the true residual (one fused apply for all of them).
        if in_cycle.is_empty() {
            continue;
        }
        for &c in &in_cycle {
            apply_update(&mut cols[c], &mut xs[col(c)], &mut z_dv[c], &mut vy, m)?;
        }
        op.apply_multi(comm, xs, &mut w_flat, k)?;
        let mut rr_local: Vec<f64> = in_cycle
            .iter()
            .map(|&c| {
                let rc = &mut r[c];
                rc.copy_from_slice(&bs[col(c)]);
                rsparse::dense::axpy(-1.0, &w_flat[col(c)], rc);
                rsparse::dense::pdot(rc, rc)
            })
            .collect();
        rr_local.push(batch_guard(&mons));
        let rr = comm.allreduce_vec(&rr_local, rcomm::sum)?;
        let guard = rr[rr.len() - 1];
        for (ci, &c) in in_cycle.iter().enumerate() {
            rnorms[c] = rr[ci].sqrt();
            let mon = mons[c].as_mut().unwrap();
            mon.absorb_guard(guard);
            if let Some(reason) = mon.check(iterations, rnorms[c]) {
                results[c] = Some(mons[c].take().unwrap().finish(
                    reason,
                    iterations,
                    r0s[c],
                    rnorms[c],
                ));
                z_flat[col(c)].fill(0.0);
            }
        }
    }
    Ok(results.into_iter().map(Option::unwrap).collect())
}
