//! Restarted GMRES with right preconditioning (and FGMRES, its flexible
//! variant), modified Gram–Schmidt orthogonalization and Givens rotations
//! on the Hessenberg matrix — the algorithm of Saad & Schultz as PETSc
//! ships it.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

#[allow(clippy::too_many_arguments)] // internal entry point shared by GMRES/FGMRES
pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    flexible: bool,
    cb: Option<&mut dyn probe::SolveMonitor>,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();
    let m = cfg.restart;

    let bnorm = b.norm2(comm)?;
    let mut r = b.clone();
    let mut w = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut w)?;
    r.axpy(-1.0, &w)?;
    let r0 = r.norm2(comm)?;
    let mut mon = Monitor::new(comm, cfg, bnorm, r0, cb);
    if let Some(reason) = mon.check(0, r0) {
        return Ok(mon.finish(reason, 0, r0, r0));
    }

    let mut iterations = 0usize;
    let mut rnorm = r0;
    let mut last_checkpoint = 0usize;

    // Per-restart workspace, hoisted out of the cycle loop: the Arnoldi
    // bases grow to restart length once and later cycles overwrite the
    // same vectors; the Hessenberg columns, rotation parameters and the
    // preconditioner scratch are likewise reused. Restart cycles after the
    // first allocate nothing.
    let mut basis_v: Vec<DistVector> = Vec::with_capacity(m + 1);
    let mut basis_z: Vec<DistVector> = Vec::with_capacity(if flexible { m } else { 0 });
    let mut z = DistVector::zeros(part.clone(), rank);
    let mut vy = DistVector::zeros(part, rank);
    let mut cs: Vec<f64> = Vec::with_capacity(m);
    let mut sn: Vec<f64> = Vec::with_capacity(m);
    let mut g = vec![0.0f64; m + 1];
    // Hessenberg column storage: h_cols[j] holds column j; only entries
    // 0..=j+1 of a column are ever written or read.
    let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut dots_local: Vec<f64> = Vec::with_capacity(m + 1);

    /// Copy `src` into slot `*n` of a reused basis, growing it only the
    /// first time a cycle reaches this depth.
    fn store_basis(basis: &mut Vec<DistVector>, n: &mut usize, src: &DistVector) {
        if *n < basis.len() {
            basis[*n].local_mut().copy_from_slice(src.local());
        } else {
            basis.push(src.clone());
        }
        *n += 1;
    }

    let reason = 'outer: loop {
        let mut n_v = 0usize;
        let mut n_z = 0usize;
        let beta = rnorm;
        if beta == 0.0 {
            break ConvergedReason::AbsoluteTolerance;
        }
        store_basis(&mut basis_v, &mut n_v, &r);
        rsparse::dense::scale(1.0 / beta, basis_v[0].local_mut());

        // Givens rotation parameters and the rotated rhs g.
        cs.clear();
        sn.clear();
        g.fill(0.0);
        g[0] = beta;

        let mut inner = 0usize;
        let mut inner_reason: Option<ConvergedReason> = None;
        while inner < m {
            let j = inner;
            // w = A·M⁻¹·v_j (right preconditioning).
            pc.apply(comm, &basis_v[j], &mut z)?;
            op.apply(comm, &z, &mut w)?;
            if flexible {
                store_basis(&mut basis_z, &mut n_z, &z);
            }
            if j == h_cols.len() {
                h_cols.push(vec![0.0f64; m + 2]);
            }
            let hcol = &mut h_cols[j];
            // Both orthogonalization flavours record under one span; the
            // matching "gram_schmidt" work model is registered by the
            // dispatcher.
            let gs_span = probe::span!("gram_schmidt");
            if cfg.fused_reductions {
                // Classical Gram–Schmidt: project against the *unmodified*
                // w, so all j+1 coefficients batch into a single
                // allreduce_vec; one more reduction for the norm makes 2
                // collectives for this inner iteration instead of j+2.
                // (Slightly different roundoff than modified Gram–Schmidt;
                // the basis subtraction itself is unchanged.)
                dots_local.clear();
                for vi in basis_v.iter().take(j + 1) {
                    dots_local.push(rsparse::dense::pdot(w.local(), vi.local()));
                }
                let dots = comm.allreduce_vec(&dots_local, rcomm::sum)?;
                for (i, (vi, &hij)) in basis_v.iter().take(j + 1).zip(&dots).enumerate() {
                    hcol[i] = hij;
                    w.axpy(-hij, vi)?;
                }
            } else {
                // Modified Gram–Schmidt: one collective per basis vector.
                for (i, vi) in basis_v.iter().enumerate().take(j + 1) {
                    let hij = w.dot(vi, comm)?;
                    hcol[i] = hij;
                    w.axpy(-hij, vi)?;
                }
            }
            drop(gs_span);
            let hnext = mon.guarded_norm2(&w)?;
            hcol[j + 1] = hnext;
            // Apply accumulated rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hcol[i] + sn[i] * hcol[i + 1];
                hcol[i + 1] = -sn[i] * hcol[i] + cs[i] * hcol[i + 1];
                hcol[i] = t;
            }
            // New rotation annihilating hcol[j+1].
            let (c, s) = givens(hcol[j], hcol[j + 1]);
            cs.push(c);
            sn.push(s);
            hcol[j] = c * hcol[j] + s * hcol[j + 1];
            hcol[j + 1] = 0.0;
            let gj = g[j];
            g[j] = c * gj;
            g[j + 1] = -s * gj;

            iterations += 1;
            inner += 1;
            rnorm = g[j + 1].abs();
            if let Some(reason) = mon.check(iterations, rnorm) {
                inner_reason = Some(reason);
                break;
            }
            if hnext == 0.0 {
                // Lucky breakdown: exact solution in this Krylov space.
                inner_reason = Some(ConvergedReason::AbsoluteTolerance);
                break;
            }
            store_basis(&mut basis_v, &mut n_v, &w);
            rsparse::dense::scale(1.0 / hnext, basis_v[j + 1].local_mut());
        }

        // Back-substitute y from the triangularized system.
        let k = inner;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for (jj, yj) in y.iter().enumerate().take(k).skip(i + 1) {
                acc -= h_cols[jj][i] * yj;
            }
            y[i] = acc / h_cols[i][i];
        }
        // Update x: x += M⁻¹·V·y (GMRES) or x += Z·y (FGMRES).
        if flexible {
            for (zi, yi) in basis_z.iter().zip(&y) {
                x.axpy(*yi, zi)?;
            }
        } else {
            vy.local_mut().fill(0.0);
            for (vi, yi) in basis_v.iter().zip(&y) {
                vy.axpy(*yi, vi)?;
            }
            pc.apply(comm, &vy, &mut z)?;
            x.axpy(1.0, &z)?;
        }

        if let Some(reason) = inner_reason {
            break 'outer reason;
        }
        // Restart: recompute the true residual.
        r.local_mut().copy_from_slice(b.local());
        op.apply(comm, x, &mut w)?;
        r.axpy(-1.0, &w)?;
        rnorm = mon.guarded_norm2(&r)?;
        if let Some(reason) = mon.check(iterations, rnorm) {
            break 'outer reason;
        }
        if cfg.checkpoint_every > 0
            && iterations - last_checkpoint >= cfg.checkpoint_every
        {
            // Elastic-recovery snapshot at the restart boundary: x and
            // the freshly recomputed true residual fully determine the
            // restart, so no Arnoldi basis needs to be preserved — a
            // restore simply warm-restarts from this x.
            crate::checkpoint::deposit(
                comm.world_members()[rank],
                iterations,
                op.partition().start_row(rank),
                x.local(),
                r.local(),
            );
            last_checkpoint = iterations;
        }
    };
    Ok(mon.finish(reason, iterations, r0, rnorm))
}

/// Stable Givens rotation `(c, s)` with `c·a + s·b = r`, `−s·a + c·b = 0`.
pub(crate) fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    }
}

#[cfg(test)]
mod tests {
    use super::givens;

    #[test]
    fn givens_annihilates_second_component() {
        for (a, b) in [(3.0, 4.0), (1.0, 0.0), (0.0, 2.0), (-5.0, 2.5), (1e-30, 1.0)] {
            let (c, s) = givens(a, b);
            let zero = -s * a + c * b;
            assert!(zero.abs() < 1e-12 * (a.abs() + b.abs()).max(1.0), "({a},{b})");
            assert!((c * c + s * s - 1.0).abs() < 1e-12);
        }
    }
}
