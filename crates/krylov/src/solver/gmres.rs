//! Restarted GMRES with right preconditioning (and FGMRES, its flexible
//! variant), modified Gram–Schmidt orthogonalization and Givens rotations
//! on the Hessenberg matrix — the algorithm of Saad & Schultz as PETSc
//! ships it.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    flexible: bool,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();
    let m = cfg.restart;

    let bnorm = b.norm2(comm)?;
    let mut r = b.clone();
    let mut w = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut w)?;
    r.axpy(-1.0, &w)?;
    let r0 = r.norm2(comm)?;
    let mut mon = Monitor::new(cfg, bnorm, r0);
    if let Some(reason) = mon.check(0, r0) {
        return Ok(mon.finish(reason, 0, r0, r0));
    }

    let mut iterations = 0usize;
    let mut rnorm = r0;
    // Hessenberg column storage: h[j] holds column j (length j + 2).
    let reason = 'outer: loop {
        // Arnoldi basis V and (for FGMRES) preconditioned basis Z.
        let mut basis_v: Vec<DistVector> = Vec::with_capacity(m + 1);
        let mut basis_z: Vec<DistVector> = Vec::with_capacity(if flexible { m } else { 0 });
        let beta = rnorm;
        if beta == 0.0 {
            break ConvergedReason::AbsoluteTolerance;
        }
        let mut v0 = r.clone();
        rsparse::dense::scale(1.0 / beta, v0.local_mut());
        basis_v.push(v0);

        // Givens rotation parameters and the rotated rhs g.
        let mut cs: Vec<f64> = Vec::with_capacity(m);
        let mut sn: Vec<f64> = Vec::with_capacity(m);
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);

        let mut inner = 0usize;
        let mut inner_reason: Option<ConvergedReason> = None;
        while inner < m {
            let j = inner;
            // w = A·M⁻¹·v_j (right preconditioning).
            let mut z = DistVector::zeros(part.clone(), rank);
            pc.apply(comm, &basis_v[j], &mut z)?;
            op.apply(comm, &z, &mut w)?;
            if flexible {
                basis_z.push(z);
            }
            // Modified Gram–Schmidt.
            let mut hcol = vec![0.0f64; j + 2];
            for (i, vi) in basis_v.iter().enumerate().take(j + 1) {
                let hij = w.dot(vi, comm)?;
                hcol[i] = hij;
                w.axpy(-hij, vi)?;
            }
            let hnext = w.norm2(comm)?;
            hcol[j + 1] = hnext;
            // Apply accumulated rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hcol[i] + sn[i] * hcol[i + 1];
                hcol[i + 1] = -sn[i] * hcol[i] + cs[i] * hcol[i + 1];
                hcol[i] = t;
            }
            // New rotation annihilating hcol[j+1].
            let (c, s) = givens(hcol[j], hcol[j + 1]);
            cs.push(c);
            sn.push(s);
            hcol[j] = c * hcol[j] + s * hcol[j + 1];
            hcol[j + 1] = 0.0;
            let gj = g[j];
            g[j] = c * gj;
            g[j + 1] = -s * gj;
            h_cols.push(hcol);

            iterations += 1;
            inner += 1;
            rnorm = g[j + 1].abs();
            if let Some(reason) = mon.check(iterations, rnorm) {
                inner_reason = Some(reason);
                break;
            }
            if hnext == 0.0 {
                // Lucky breakdown: exact solution in this Krylov space.
                inner_reason = Some(ConvergedReason::AbsoluteTolerance);
                break;
            }
            let mut vnext = w.clone();
            rsparse::dense::scale(1.0 / hnext, vnext.local_mut());
            basis_v.push(vnext);
        }

        // Back-substitute y from the triangularized system.
        let k = inner;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for (jj, yj) in y.iter().enumerate().take(k).skip(i + 1) {
                acc -= h_cols[jj][i] * yj;
            }
            y[i] = acc / h_cols[i][i];
        }
        // Update x: x += M⁻¹·V·y (GMRES) or x += Z·y (FGMRES).
        if flexible {
            for (zi, yi) in basis_z.iter().zip(&y) {
                x.axpy(*yi, zi)?;
            }
        } else {
            let mut vy = DistVector::zeros(part.clone(), rank);
            for (vi, yi) in basis_v.iter().zip(&y) {
                vy.axpy(*yi, vi)?;
            }
            let mut z = DistVector::zeros(part.clone(), rank);
            pc.apply(comm, &vy, &mut z)?;
            x.axpy(1.0, &z)?;
        }

        if let Some(reason) = inner_reason {
            break 'outer reason;
        }
        // Restart: recompute the true residual.
        r = b.clone();
        op.apply(comm, x, &mut w)?;
        r.axpy(-1.0, &w)?;
        rnorm = r.norm2(comm)?;
        if let Some(reason) = mon.check(iterations, rnorm) {
            break 'outer reason;
        }
    };
    Ok(mon.finish(reason, iterations, r0, rnorm))
}

/// Stable Givens rotation `(c, s)` with `c·a + s·b = r`, `−s·a + c·b = 0`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    }
}

#[cfg(test)]
mod tests {
    use super::givens;

    #[test]
    fn givens_annihilates_second_component() {
        for (a, b) in [(3.0, 4.0), (1.0, 0.0), (0.0, 2.0), (-5.0, 2.5), (1e-30, 1.0)] {
            let (c, s) = givens(a, b);
            let zero = -s * a + c * b;
            assert!(zero.abs() < 1e-12 * (a.abs() + b.abs()).max(1.0), "({a},{b})");
            assert!((c * c + s * s - 1.0).abs() < 1e-12);
        }
    }
}
