//! The KSP solver context: configuration, dispatch, and the iterative
//! methods themselves.

mod bicgstab;
mod block;
mod cg;
mod cgs;
mod chebyshev;
mod gmres;
mod richardson;
mod tfqmr;

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::options::Options;
use crate::pc::{make_preconditioner, PcType, Preconditioner};
use crate::result::{ConvergedReason, KspError, KspOutcome, KspResult};

/// The solver vocabulary, mirroring PETSc's `-ksp_type` values shipped
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KspType {
    /// Conjugate gradients (SPD systems).
    Cg,
    /// Stabilized bi-conjugate gradients.
    BiCgStab,
    /// Restarted generalized minimal residual.
    Gmres,
    /// Flexible GMRES (tolerates a varying preconditioner).
    Fgmres,
    /// Conjugate gradients squared.
    Cgs,
    /// Transpose-free quasi-minimal residual.
    Tfqmr,
    /// Preconditioned Richardson iteration.
    Richardson,
    /// Chebyshev semi-iteration (needs spectral bounds; estimated if
    /// absent).
    Chebyshev,
}

impl KspType {
    /// Parse a PETSc-flavoured name.
    pub fn parse(name: &str) -> KspOutcome<Self> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "cg" => KspType::Cg,
            "bicgstab" | "bcgs" => KspType::BiCgStab,
            "gmres" => KspType::Gmres,
            "fgmres" => KspType::Fgmres,
            "cgs" => KspType::Cgs,
            "tfqmr" => KspType::Tfqmr,
            "richardson" => KspType::Richardson,
            "chebyshev" | "cheby" => KspType::Chebyshev,
            other => {
                return Err(KspError::UnknownName { kind: "solver", name: other.to_string() })
            }
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            KspType::Cg => "cg",
            KspType::BiCgStab => "bicgstab",
            KspType::Gmres => "gmres",
            KspType::Fgmres => "fgmres",
            KspType::Cgs => "cgs",
            KspType::Tfqmr => "tfqmr",
            KspType::Richardson => "richardson",
            KspType::Chebyshev => "chebyshev",
        }
    }
}

/// Full solver configuration — the parameter surface LISI's generic
/// setters drive.
#[derive(Debug, Clone, PartialEq)]
pub struct KspConfig {
    /// Which method.
    pub ksp_type: KspType,
    /// Which preconditioner.
    pub pc_type: PcType,
    /// Relative tolerance on ‖r‖/‖b‖.
    pub rtol: f64,
    /// Absolute tolerance on ‖r‖.
    pub atol: f64,
    /// Divergence tolerance: stop when ‖r‖ > dtol·‖b‖.
    pub dtol: f64,
    /// Iteration cap.
    pub maxits: usize,
    /// GMRES restart length.
    pub restart: usize,
    /// Richardson damping factor.
    pub richardson_scale: f64,
    /// Chebyshev spectral bounds (λmin, λmax) of the preconditioned
    /// operator; `None` triggers a power-method estimate.
    pub cheby_bounds: Option<(f64, f64)>,
    /// Record the residual history into [`KspResult::history`] (costs one
    /// Vec push per iteration). Automatically suppressed when a
    /// [`probe::SolveMonitor`] is attached via
    /// [`Ksp::solve_monitored`] — the monitor receives the same stream,
    /// so the legacy Vec would be a duplicate allocation.
    pub keep_history: bool,
    /// Fuse per-iteration reductions into batched `allreduce_vec` calls
    /// (CG: residual norm + r·z in one collective; GMRES: all Arnoldi
    /// projection dots in one collective via classical Gram–Schmidt).
    /// Cuts the latency-bound collective count per iteration; disable to
    /// get the textbook one-reduction-per-dot schedule.
    pub fused_reductions: bool,
    /// Wall-clock budget in seconds (`None` = unlimited). Each rank's
    /// local deadline flag is folded into the per-iteration residual
    /// reduction, so the `TimedOut` verdict is agreed rank-wide without
    /// any extra collective.
    pub max_seconds: Option<f64>,
    /// Stagnation window: stop with `Stagnated` after this many
    /// consecutive iterations without a new best residual norm
    /// (0 = disabled). The test is purely residual-derived and residuals
    /// are rank-agreed, so the verdict is identical on every rank.
    pub stagnation_window: usize,
    /// Deposit a [`crate::checkpoint`] snapshot of the Krylov state every
    /// this many iterations (CG and friends: every k-th iteration; GMRES:
    /// at each restart boundary once k iterations have passed).
    /// 0 disables checkpointing entirely — the default, so solves pay
    /// nothing unless elastic recovery is wanted. Defaults from
    /// `RSPARSE_CHECKPOINT_EVERY` (read per `KspConfig::default()` call,
    /// not cached, so recovery layers can toggle it per solve).
    pub checkpoint_every: usize,
}

impl Default for KspConfig {
    fn default() -> Self {
        KspConfig {
            ksp_type: KspType::Gmres,
            pc_type: PcType::Ilu0,
            rtol: 1e-8,
            atol: 1e-50,
            dtol: 1e5,
            maxits: 10_000,
            restart: 30,
            richardson_scale: 1.0,
            cheby_bounds: None,
            keep_history: true,
            fused_reductions: true,
            max_seconds: None,
            stagnation_window: 0,
            checkpoint_every: std::env::var("RSPARSE_CHECKPOINT_EVERY")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
        }
    }
}

impl KspConfig {
    /// Validate numeric sanity.
    pub fn validate(&self) -> KspOutcome<()> {
        if self.rtol < 0.0 || self.atol < 0.0 || self.dtol <= 0.0 {
            return Err(KspError::BadConfig("tolerances must be non-negative".into()));
        }
        if self.restart == 0 {
            return Err(KspError::BadConfig("restart must be at least 1".into()));
        }
        if self.maxits == 0 {
            return Err(KspError::BadConfig("maxits must be at least 1".into()));
        }
        if let Some(s) = self.max_seconds {
            // NaN must be rejected too, hence not `s <= 0.0`.
            if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(KspError::BadConfig("max_seconds must be positive".into()));
            }
        }
        Ok(())
    }

    /// Build from a string option database (PETSc-style keys with several
    /// LISI-friendly aliases): `ksp_type`/`solver`, `pc_type`/
    /// `preconditioner`, `ksp_rtol`/`tol`, `ksp_atol`, `ksp_dtol`,
    /// `ksp_max_it`/`maxits`, `ksp_gmres_restart`/`restart`,
    /// `pc_sor_omega`, `richardson_scale`,
    /// `ksp_fused_reductions`/`fused_reductions`.
    pub fn from_options(opts: &Options) -> KspOutcome<Self> {
        let mut cfg = KspConfig::default();
        if let Some(v) = opts.get_first(&["ksp_type", "solver"]) {
            cfg.ksp_type = KspType::parse(&v)?;
        }
        if let Some(v) = opts.get_first(&["pc_type", "preconditioner"]) {
            cfg.pc_type = PcType::parse(&v)?;
        }
        if let Some(v) = opts.get_first(&["ksp_rtol", "tol", "rtol"]) {
            cfg.rtol = v.parse().map_err(|_| KspError::BadConfig(format!("bad rtol '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["ksp_atol", "atol"]) {
            cfg.atol = v.parse().map_err(|_| KspError::BadConfig(format!("bad atol '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["ksp_dtol", "dtol"]) {
            cfg.dtol = v.parse().map_err(|_| KspError::BadConfig(format!("bad dtol '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["ksp_max_it", "maxits", "max_iterations"]) {
            cfg.maxits =
                v.parse().map_err(|_| KspError::BadConfig(format!("bad maxits '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["ksp_gmres_restart", "restart"]) {
            cfg.restart =
                v.parse().map_err(|_| KspError::BadConfig(format!("bad restart '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["pc_ilut_droptol", "droptol"]) {
            let droptol: f64 =
                v.parse().map_err(|_| KspError::BadConfig(format!("bad droptol '{v}'")))?;
            if let PcType::Ilut { max_fill, .. } = cfg.pc_type {
                cfg.pc_type = PcType::Ilut { droptol, max_fill };
            }
        }
        if let Some(v) = opts.get_first(&["pc_ilut_maxfill", "fill"]) {
            let max_fill: usize =
                v.parse().map_err(|_| KspError::BadConfig(format!("bad fill '{v}'")))?;
            if let PcType::Ilut { droptol, .. } = cfg.pc_type {
                cfg.pc_type = PcType::Ilut { droptol, max_fill };
            }
        }
        if let Some(v) = opts.get_first(&["pc_sor_omega", "omega"]) {
            let omega: f64 =
                v.parse().map_err(|_| KspError::BadConfig(format!("bad omega '{v}'")))?;
            if matches!(cfg.pc_type, PcType::Ssor { .. }) {
                cfg.pc_type = PcType::Ssor { omega };
            }
        }
        if let Some(v) = opts.get_first(&["richardson_scale"]) {
            cfg.richardson_scale =
                v.parse().map_err(|_| KspError::BadConfig(format!("bad scale '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["ksp_max_seconds", "max_seconds"]) {
            let secs: f64 = v
                .parse()
                .map_err(|_| KspError::BadConfig(format!("bad max_seconds '{v}'")))?;
            cfg.max_seconds = Some(secs);
        }
        if let Some(v) = opts.get_first(&["ksp_stagnation_window", "stagnation_window"]) {
            cfg.stagnation_window = v
                .parse()
                .map_err(|_| KspError::BadConfig(format!("bad stagnation_window '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["ksp_checkpoint_every", "checkpoint_every"]) {
            cfg.checkpoint_every = v
                .parse()
                .map_err(|_| KspError::BadConfig(format!("bad checkpoint_every '{v}'")))?;
        }
        if let Some(v) = opts.get_first(&["ksp_fused_reductions", "fused_reductions"]) {
            cfg.fused_reductions = match v.to_ascii_lowercase().as_str() {
                "1" | "true" | "yes" | "on" => true,
                "0" | "false" | "no" | "off" => false,
                other => {
                    return Err(KspError::BadConfig(format!(
                        "bad fused_reductions '{other}' (expected a boolean)"
                    )))
                }
            };
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Convergence bookkeeping shared by every method. Streams residuals to
/// an optional [`probe::SolveMonitor`] callback as the solve progresses;
/// when one is attached, the legacy in-result history Vec is suppressed
/// (the monitor receives the identical stream).
pub(crate) struct Monitor<'a, 'b> {
    rtol_target: f64,
    atol: f64,
    dtol_target: f64,
    maxits: usize,
    pub history: Vec<f64>,
    keep_history: bool,
    comm: &'a Communicator,
    cb: Option<&'b mut dyn probe::SolveMonitor>,
    /// `comm.allreduce_count()` at solve start, so callbacks report the
    /// collectives issued by *this* solve.
    allreduce0: u64,
    /// Highest iteration number seen, so methods that check twice per
    /// iteration (BiCGStab's half-step) count each iteration once.
    last_counted: usize,
    /// Local wall-clock deadline (`None` = no budget).
    deadline: Option<std::time::Instant>,
    /// Rank-agreed timeout verdict, set only by [`Self::absorb_guard`]
    /// from a reduced flag — never from the local clock directly, so all
    /// ranks stop on the same iteration.
    timed_out: bool,
    /// Stagnation window (0 = disabled).
    stagnation_window: usize,
    /// Best residual norm seen so far.
    best_rnorm: f64,
    /// Consecutive iterations without a new best residual.
    stalled: usize,
    /// Clock reading at the last counted iteration, feeding the
    /// per-iteration latency histogram; `None` when histograms are off.
    last_tick: Option<std::time::Instant>,
}

impl<'a, 'b> Monitor<'a, 'b> {
    pub(crate) fn new(
        comm: &'a Communicator,
        cfg: &KspConfig,
        bnorm: f64,
        r0: f64,
        mut cb: Option<&'b mut dyn probe::SolveMonitor>,
    ) -> Self {
        let keep_history = cfg.keep_history && cb.is_none();
        let mut history = Vec::new();
        if keep_history {
            history.push(r0);
        }
        if let Some(m) = cb.as_deref_mut() {
            m.on_start(r0);
        }
        // PETSc semantics: relative to ‖b‖ unless b = 0, then absolute.
        let scale = if bnorm > 0.0 { bnorm } else { 1.0 };
        Monitor {
            rtol_target: cfg.rtol * scale,
            atol: cfg.atol,
            dtol_target: cfg.dtol * scale.max(r0),
            maxits: cfg.maxits,
            history,
            keep_history,
            comm,
            cb,
            allreduce0: comm.allreduce_count(),
            last_counted: 0,
            deadline: cfg
                .max_seconds
                .map(|s| std::time::Instant::now() + std::time::Duration::from_secs_f64(s)),
            timed_out: false,
            stagnation_window: cfg.stagnation_window,
            best_rnorm: r0,
            stalled: 0,
            last_tick: probe::hist::active().then(std::time::Instant::now),
        }
    }

    /// Local guard flag: 1.0 when this rank's wall-clock budget is
    /// exhausted, else 0.0. Fold the flag into an existing sum-reduction
    /// (piggybacked on the residual norm) and feed the reduced value back
    /// through [`Self::absorb_guard`] — that keeps the timeout verdict
    /// rank-agreed without any extra collective.
    pub(crate) fn local_guard(&self) -> f64 {
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => 1.0,
            _ => 0.0,
        }
    }

    /// Absorb the reduced (summed) guard flag: any rank over budget trips
    /// the timeout on every rank.
    pub(crate) fn absorb_guard(&mut self, reduced_flag: f64) {
        if reduced_flag > 0.0 {
            self.timed_out = true;
        }
    }

    /// Residual norm with the wall-clock guard piggybacked: computes
    /// `‖v‖₂` via one fused `allreduce_vec` carrying `[‖v‖²_local,
    /// guard_flag]` — the same collective count as a plain `norm2`, and
    /// bit-identical per component (elementwise reduction over the same
    /// rank-ordered tree).
    pub(crate) fn guarded_norm2(&mut self, v: &DistVector) -> KspOutcome<f64> {
        let local = [rsparse::dense::pdot(v.local(), v.local()), self.local_guard()];
        let red = self.comm.allreduce_vec(&local, rcomm::sum)?;
        self.absorb_guard(red[1]);
        Ok(red[0].sqrt())
    }

    /// Record a residual norm; `Some(reason)` means stop.
    pub(crate) fn check(&mut self, iteration: usize, rnorm: f64) -> Option<ConvergedReason> {
        if iteration > 0 {
            if iteration > self.last_counted {
                self.last_counted = iteration;
                probe::incr(probe::Counter::KspIterations);
                if let Some(prev) = self.last_tick.take() {
                    probe::hist::record_ns(
                        probe::hist::Hist::IterTime,
                        prev.elapsed().as_nanos() as u64,
                    );
                }
                if probe::hist::active() {
                    self.last_tick = Some(std::time::Instant::now());
                }
                // Black box: the per-iteration residual trail is what a
                // postmortem replays when the attempt never converges.
                probe::flight::record(probe::flight::FlightKind::Iter {
                    iteration: iteration as u64,
                    residual: rnorm,
                });
                if self.stagnation_window > 0 {
                    // Progress = a strictly better (finite) residual. The
                    // test uses only the rank-agreed rnorm, so every rank
                    // reaches the same stall count.
                    if rnorm.is_finite() && rnorm < self.best_rnorm * (1.0 - 1e-12) {
                        self.best_rnorm = rnorm;
                        self.stalled = 0;
                    } else {
                        self.stalled += 1;
                    }
                }
            }
            if self.keep_history {
                self.history.push(rnorm);
            }
            if let Some(m) = self.cb.as_deref_mut() {
                let collectives = self.comm.allreduce_count() - self.allreduce0;
                m.on_iteration(iteration, rnorm, collectives);
            }
        }
        if rnorm <= self.atol {
            return Some(ConvergedReason::AbsoluteTolerance);
        }
        if rnorm <= self.rtol_target {
            return Some(ConvergedReason::RelativeTolerance);
        }
        if !rnorm.is_finite() {
            // NaN/Inf screen on the reduced residual: corruption anywhere
            // (halo payloads, local products) propagates through the sum
            // reduction, so this trips identically on every rank.
            probe::incr(probe::Counter::GuardTrips);
            return Some(ConvergedReason::Diverged);
        }
        if rnorm > self.dtol_target {
            return Some(ConvergedReason::Diverged);
        }
        if self.timed_out {
            probe::incr(probe::Counter::GuardTrips);
            return Some(ConvergedReason::TimedOut);
        }
        if self.stagnation_window > 0 && self.stalled >= self.stagnation_window {
            probe::incr(probe::Counter::GuardTrips);
            return Some(ConvergedReason::Stagnated);
        }
        if iteration >= self.maxits {
            return Some(ConvergedReason::MaxIterations);
        }
        None
    }

    pub(crate) fn finish(
        mut self,
        reason: ConvergedReason,
        iterations: usize,
        r0: f64,
        rfinal: f64,
    ) -> KspResult {
        let result = KspResult {
            reason,
            iterations,
            initial_residual: r0,
            final_residual: rfinal,
            history: std::mem::take(&mut self.history),
            cond_estimate: None,
        };
        // Every solve path funnels through finish, so this is the single
        // verdict-transition event the flight recorder sees.
        probe::flight::record(probe::flight::FlightKind::Verdict {
            verdict: reason.name(),
            iteration: iterations as u64,
        });
        if let Some(m) = self.cb.as_deref_mut() {
            m.on_finish(iterations, rfinal, result.converged());
        }
        result
    }
}

/// True residual norm ‖b − A·x‖₂ (collective).
pub(crate) fn true_residual_norm(
    comm: &Communicator,
    op: &dyn LinearOperator,
    b: &DistVector,
    x: &DistVector,
) -> KspOutcome<f64> {
    let mut ax = DistVector::zeros(op.partition().clone(), comm.rank());
    op.apply(comm, x, &mut ax)?;
    let mut r = b.clone();
    r.axpy(-1.0, &ax)?;
    Ok(r.norm2(comm)?)
}

/// A configured solver context — RKSP's `KSP`.
#[derive(Debug, Clone)]
pub struct Ksp {
    config: KspConfig,
}

impl Ksp {
    /// Create from a configuration.
    pub fn new(config: KspConfig) -> KspOutcome<Self> {
        config.validate()?;
        Ok(Ksp { config })
    }

    /// Create from a string option database.
    pub fn from_options(opts: &Options) -> KspOutcome<Self> {
        Ok(Ksp { config: KspConfig::from_options(opts)? })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &KspConfig {
        &self.config
    }

    /// Build the configured preconditioner for `op` (exposed so callers
    /// can reuse a preconditioner across solves — paper §5.2b/d).
    pub fn make_pc(&self, op: &dyn LinearOperator) -> KspOutcome<Box<dyn Preconditioner>> {
        make_preconditioner(self.config.pc_type, op)
    }

    /// Solve A·x = b starting from the current content of `x`, using a
    /// freshly built preconditioner.
    pub fn solve(
        &self,
        comm: &Communicator,
        op: &dyn LinearOperator,
        b: &DistVector,
        x: &mut DistVector,
    ) -> KspOutcome<KspResult> {
        let pc = self.make_pc(op)?;
        self.dispatch(comm, op, pc.as_ref(), b, x, None)
    }

    /// Solve with a caller-provided (possibly reused) preconditioner.
    pub fn solve_with_pc(
        &self,
        comm: &Communicator,
        op: &dyn LinearOperator,
        pc: &dyn Preconditioner,
        b: &DistVector,
        x: &mut DistVector,
    ) -> KspOutcome<KspResult> {
        self.dispatch(comm, op, pc, b, x, None)
    }

    /// Solve with a [`probe::SolveMonitor`] receiving the residual stream,
    /// per-solve collective counts and completion callback as the solve
    /// runs. The result's legacy `history` Vec is left empty: the monitor
    /// receives the identical data, so retaining both would allocate twice.
    pub fn solve_monitored(
        &self,
        comm: &Communicator,
        op: &dyn LinearOperator,
        b: &DistVector,
        x: &mut DistVector,
        mon: &mut dyn probe::SolveMonitor,
    ) -> KspOutcome<KspResult> {
        let pc = self.make_pc(op)?;
        self.dispatch(comm, op, pc.as_ref(), b, x, Some(mon))
    }

    /// [`Self::solve_monitored`] with a caller-provided preconditioner.
    pub fn solve_with_pc_monitored(
        &self,
        comm: &Communicator,
        op: &dyn LinearOperator,
        pc: &dyn Preconditioner,
        b: &DistVector,
        x: &mut DistVector,
        mon: &mut dyn probe::SolveMonitor,
    ) -> KspOutcome<KspResult> {
        self.dispatch(comm, op, pc, b, x, Some(mon))
    }

    /// Solve `k` systems sharing the operator — `A·x_q = b_q` for the
    /// columns stored contiguously in `bs`/`xs` (column `q` at
    /// `[q·n_local .. (q+1)·n_local]`) — with a freshly built
    /// preconditioner. See [`Self::solve_batch_with_pc`].
    pub fn solve_batch(
        &self,
        comm: &Communicator,
        op: &dyn LinearOperator,
        bs: &[f64],
        xs: &mut [f64],
        k: usize,
    ) -> KspOutcome<Vec<KspResult>> {
        let pc = self.make_pc(op)?;
        self.solve_batch_with_pc(comm, op, pc.as_ref(), bs, xs, k)
    }

    /// Batched multi-RHS solve with a caller-provided preconditioner.
    ///
    /// CG (with fused reductions) routes to the block-CG driver and
    /// GMRES/FGMRES to pseudo-block GMRES: `k` lockstep solves sharing
    /// one fused multi-vector SpMV per operator application and batching
    /// all per-column dot products into single collectives. Every other
    /// method — and the unfused schedules — falls back to `k` sequential
    /// single-RHS solves. In both cases column `q`'s result is
    /// bit-identical to a standalone solve of that column.
    pub fn solve_batch_with_pc(
        &self,
        comm: &Communicator,
        op: &dyn LinearOperator,
        pc: &dyn Preconditioner,
        bs: &[f64],
        xs: &mut [f64],
        k: usize,
    ) -> KspOutcome<Vec<KspResult>> {
        let _trace = probe::trace::solve_guard();
        let _span = probe::span!("ksp_solve");
        let cfg = &self.config;
        probe::add(probe::Counter::RhsBatched, k as u64);
        {
            use probe::model::{register, KernelModel, TimeBase, WorkUnit};
            let n = op.partition().local_rows(comm.rank()) as u64;
            register(
                "allreduce",
                KernelModel {
                    span: "allreduce",
                    flops: 0,
                    bytes: 1,
                    unit: WorkUnit::Counter(probe::Counter::ReducedBytes),
                    time: TimeBase::Total,
                    nrhs: 1,
                },
            );
            match cfg.ksp_type {
                // Same per-column-iteration vector-op cost as single CG
                // (KspIterations counts each column's iterations); nrhs
                // marks the batch width for ledger attribution.
                KspType::Cg => register(
                    "krylov_vec_ops",
                    KernelModel {
                        span: "ksp_solve",
                        flops: 12 * n,
                        bytes: 120 * n,
                        unit: WorkUnit::Counter(probe::Counter::KspIterations),
                        time: TimeBase::SelfTime,
                        nrhs: k as u64,
                    },
                ),
                KspType::Gmres | KspType::Fgmres => {
                    let proj = (cfg.restart as u64).div_ceil(2);
                    register(
                        "gram_schmidt",
                        KernelModel {
                            span: "gram_schmidt",
                            flops: 4 * n * proj,
                            bytes: 40 * n * proj,
                            unit: WorkUnit::SpanCalls,
                            time: TimeBase::Total,
                            nrhs: k as u64,
                        },
                    );
                }
                _ => {}
            }
        }
        match cfg.ksp_type {
            KspType::Cg if cfg.fused_reductions => {
                block::block_cg(comm, op, pc, bs, xs, k, cfg)
            }
            KspType::Gmres if cfg.fused_reductions => {
                block::pseudo_block_gmres(comm, op, pc, bs, xs, k, cfg, false)
            }
            KspType::Fgmres if cfg.fused_reductions => {
                block::pseudo_block_gmres(comm, op, pc, bs, xs, k, cfg, true)
            }
            _ => {
                // Sequential fallback: k independent single-RHS solves
                // (the batched entry still applies — callers get one call
                // site and uniform accounting either way).
                let part = op.partition().clone();
                let n = part.local_rows(comm.rank());
                if k == 0 {
                    return Err(KspError::BadConfig("batched solve needs k >= 1".into()));
                }
                if bs.len() != k * n || xs.len() != k * n {
                    return Err(KspError::Nonconforming(format!(
                        "batched solve expects k*n_local = {} values per side, got b: {}, x: {}",
                        k * n,
                        bs.len(),
                        xs.len()
                    )));
                }
                let mut out = Vec::with_capacity(k);
                for c in 0..k {
                    let b = DistVector::from_local(
                        part.clone(),
                        comm.rank(),
                        bs[c * n..(c + 1) * n].to_vec(),
                    )
                    .map_err(KspError::Sparse)?;
                    let mut x = DistVector::from_local(
                        part.clone(),
                        comm.rank(),
                        xs[c * n..(c + 1) * n].to_vec(),
                    )
                    .map_err(KspError::Sparse)?;
                    let res = match cfg.ksp_type {
                        KspType::Cg => cg::solve(comm, op, pc, &b, &mut x, cfg, None),
                        KspType::BiCgStab => {
                            bicgstab::solve(comm, op, pc, &b, &mut x, cfg, None)
                        }
                        KspType::Gmres => {
                            gmres::solve(comm, op, pc, &b, &mut x, cfg, false, None)
                        }
                        KspType::Fgmres => {
                            gmres::solve(comm, op, pc, &b, &mut x, cfg, true, None)
                        }
                        KspType::Cgs => cgs::solve(comm, op, pc, &b, &mut x, cfg, None),
                        KspType::Tfqmr => tfqmr::solve(comm, op, pc, &b, &mut x, cfg, None),
                        KspType::Richardson => {
                            richardson::solve(comm, op, pc, &b, &mut x, cfg, None)
                        }
                        KspType::Chebyshev => {
                            chebyshev::solve(comm, op, pc, &b, &mut x, cfg, None)
                        }
                    }?;
                    xs[c * n..(c + 1) * n].copy_from_slice(x.local());
                    out.push(res);
                }
                Ok(out)
            }
        }
    }

    fn dispatch(
        &self,
        comm: &Communicator,
        op: &dyn LinearOperator,
        pc: &dyn Preconditioner,
        b: &DistVector,
        x: &mut DistVector,
        cb: Option<&mut dyn probe::SolveMonitor>,
    ) -> KspOutcome<KspResult> {
        // Open a causal trace for this solve (inert unless tracing is
        // armed) before the span so the span lands inside the trace.
        let _trace = probe::trace::solve_guard();
        let _span = probe::span!("ksp_solve");
        let cfg = &self.config;
        // Work models for the solver-owned kernels, from the config and
        // the operator's partition. The collective payload model joins
        // with the ReducedBytes counter (message sizes vary per call);
        // the CG vector-op model rides the ksp_solve *self* time — the
        // matvec/sptrsv/allreduce children carry their own models.
        {
            use probe::model::{register, KernelModel, TimeBase, WorkUnit};
            let n = op.partition().local_rows(comm.rank()) as u64;
            register(
                "allreduce",
                KernelModel {
                    span: "allreduce",
                    flops: 0,
                    bytes: 1,
                    unit: WorkUnit::Counter(probe::Counter::ReducedBytes),
                    time: TimeBase::Total,
                    nrhs: 1,
                },
            );
            match cfg.ksp_type {
                // Per CG iteration: 3 axpy-shaped updates (2 flops, 3
                // streams each) and 3 dot-shaped reductions (2 flops, 2
                // streams each) over the local length.
                KspType::Cg => register(
                    "krylov_vec_ops",
                    KernelModel {
                        span: "ksp_solve",
                        flops: 12 * n,
                        bytes: 120 * n,
                        unit: WorkUnit::Counter(probe::Counter::KspIterations),
                        time: TimeBase::SelfTime,
                        nrhs: 1,
                    },
                ),
                // Per inner GMRES iteration, averaged over a restart
                // cycle of depth m: (m+1)/2 projections, each one dot
                // plus one axpy.
                KspType::Gmres | KspType::Fgmres => {
                    let proj = (cfg.restart as u64).div_ceil(2);
                    register(
                        "gram_schmidt",
                        KernelModel {
                            span: "gram_schmidt",
                            flops: 4 * n * proj,
                            bytes: 40 * n * proj,
                            unit: WorkUnit::SpanCalls,
                            time: TimeBase::Total,
                            nrhs: 1,
                        },
                    );
                }
                _ => {}
            }
        }
        match cfg.ksp_type {
            KspType::Cg => cg::solve(comm, op, pc, b, x, cfg, cb),
            KspType::BiCgStab => bicgstab::solve(comm, op, pc, b, x, cfg, cb),
            KspType::Gmres => gmres::solve(comm, op, pc, b, x, cfg, false, cb),
            KspType::Fgmres => gmres::solve(comm, op, pc, b, x, cfg, true, cb),
            KspType::Cgs => cgs::solve(comm, op, pc, b, x, cfg, cb),
            KspType::Tfqmr => tfqmr::solve(comm, op, pc, b, x, cfg, cb),
            KspType::Richardson => richardson::solve(comm, op, pc, b, x, cfg, cb),
            KspType::Chebyshev => chebyshev::solve(comm, op, pc, b, x, cfg, cb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatOperator;
    use rcomm::Universe;
    use rsparse::{generate, BlockRowPartition, DistCsrMatrix};

    fn solve_problem(
        ksp_type: KspType,
        pc_type: PcType,
        a: &rsparse::CsrMatrix,
        ranks: usize,
    ) -> (bool, usize, f64) {
        let n = a.rows();
        let x_true = generate::random_vector(n, 17);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(ranks, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
            let mut dx = DistVector::zeros(part, comm.rank());
            let ksp = Ksp::new(KspConfig {
                ksp_type,
                pc_type,
                rtol: 1e-10,
                maxits: 2000,
                ..KspConfig::default()
            })
            .unwrap();
            let res = ksp.solve(comm, &op, &db, &mut dx).unwrap();
            let full = dx.allgather_full(comm).unwrap();
            (res, full)
        });
        let (res, full) = &out[0];
        // All ranks must agree on the result metadata.
        for (r, _) in &out {
            assert_eq!(r.iterations, res.iterations);
            assert_eq!(r.reason, res.reason);
        }
        let err = full
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
        (res.converged(), res.iterations, err)
    }

    #[test]
    fn every_method_solves_spd_poisson_serial() {
        let a = generate::laplacian_2d(8);
        for ksp in [
            KspType::Cg,
            KspType::BiCgStab,
            KspType::Gmres,
            KspType::Fgmres,
            KspType::Cgs,
            KspType::Tfqmr,
            KspType::Chebyshev,
        ] {
            let (ok, its, err) = solve_problem(ksp, PcType::Jacobi, &a, 1);
            assert!(ok, "{ksp:?} did not converge");
            assert!(err < 1e-6, "{ksp:?}: err = {err}, its = {its}");
        }
    }

    #[test]
    fn richardson_solves_with_strong_pc() {
        // Richardson needs an effective preconditioner; ILU(0) qualifies.
        let a = generate::laplacian_2d(6);
        let (ok, _, err) = solve_problem(KspType::Richardson, PcType::Ilu0, &a, 1);
        assert!(ok);
        assert!(err < 1e-6, "err = {err}");
    }

    #[test]
    fn nonsymmetric_methods_solve_convection_diffusion() {
        let (a, _) = rmesh::paper_problem(10).assemble_global();
        for ksp in [KspType::BiCgStab, KspType::Gmres, KspType::Fgmres, KspType::Tfqmr] {
            let (ok, its, err) = solve_problem(ksp, PcType::Ilu0, &a, 1);
            assert!(ok, "{ksp:?}");
            assert!(err < 1e-6, "{ksp:?}: err = {err}, its = {its}");
        }
    }

    #[test]
    fn parallel_solves_match_serial_for_all_methods() {
        let a = generate::laplacian_2d(7);
        for ksp in [KspType::Cg, KspType::BiCgStab, KspType::Gmres] {
            let (ok1, _, err1) = solve_problem(ksp, PcType::Jacobi, &a, 1);
            let (ok4, _, err4) = solve_problem(ksp, PcType::Jacobi, &a, 4);
            assert!(ok1 && ok4, "{ksp:?}");
            assert!(err1 < 1e-6 && err4 < 1e-6, "{ksp:?}: {err1} {err4}");
        }
    }

    #[test]
    fn block_jacobi_pcs_work_in_parallel() {
        let a = generate::laplacian_2d(8);
        for pc in [PcType::Ilu0, PcType::Ic0, PcType::Ssor { omega: 1.0 }] {
            let (ok, its, err) = solve_problem(KspType::Gmres, pc, &a, 3);
            assert!(ok, "{pc:?}");
            assert!(err < 1e-6, "{pc:?}: err = {err}, its = {its}");
        }
    }

    #[test]
    fn gmres_restart_still_converges() {
        let (a, _) = rmesh::paper_problem(9).assemble_global();
        let n = a.rows();
        let x_true = generate::random_vector(n, 3);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(1, |comm| {
            let part = BlockRowPartition::even(n, 1);
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::from_global(part.clone(), 0, &b).unwrap();
            let mut dx = DistVector::zeros(part, 0);
            let ksp = Ksp::new(KspConfig {
                ksp_type: KspType::Gmres,
                pc_type: PcType::None,
                restart: 5,
                rtol: 1e-9,
                maxits: 5000,
                ..KspConfig::default()
            })
            .unwrap();
            let r = ksp.solve(comm, &op, &db, &mut dx).unwrap();
            (r.converged(), r.iterations)
        });
        assert!(out[0].0, "restarted GMRES(5) must still converge");
        assert!(out[0].1 > 5, "must have needed at least one restart cycle");
    }

    #[test]
    fn zero_rhs_returns_zero_solution_immediately() {
        let a = generate::laplacian_2d(4);
        let out = Universe::run(1, |comm| {
            let part = BlockRowPartition::even(16, 1);
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::zeros(part.clone(), 0);
            let mut dx = DistVector::zeros(part, 0);
            let ksp = Ksp::new(KspConfig::default()).unwrap();
            let r = ksp.solve(comm, &op, &db, &mut dx).unwrap();
            (r.converged(), r.iterations, dx.local().to_vec())
        });
        let (ok, its, x) = &out[0];
        assert!(ok);
        assert_eq!(*its, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn maxits_is_reported_when_hit() {
        let a = generate::laplacian_2d(10);
        let n = 100;
        let b = vec![1.0; n];
        let out = Universe::run(1, |comm| {
            let part = BlockRowPartition::even(n, 1);
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::from_global(part.clone(), 0, &b).unwrap();
            let mut dx = DistVector::zeros(part, 0);
            let ksp = Ksp::new(KspConfig {
                ksp_type: KspType::Cg,
                pc_type: PcType::None,
                rtol: 1e-14,
                maxits: 3,
                ..KspConfig::default()
            })
            .unwrap();
            ksp.solve(comm, &op, &db, &mut dx).unwrap()
        });
        assert_eq!(out[0].reason, ConvergedReason::MaxIterations);
        assert_eq!(out[0].iterations, 3);
        assert!(!out[0].converged());
    }

    #[test]
    fn history_is_monotone_for_gmres() {
        let a = generate::laplacian_2d(6);
        let n = 36;
        let b = vec![1.0; n];
        let out = Universe::run(1, |comm| {
            let part = BlockRowPartition::even(n, 1);
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::from_global(part.clone(), 0, &b).unwrap();
            let mut dx = DistVector::zeros(part, 0);
            let ksp = Ksp::new(KspConfig {
                ksp_type: KspType::Gmres,
                pc_type: PcType::None,
                restart: 50,
                ..KspConfig::default()
            })
            .unwrap();
            ksp.solve(comm, &op, &db, &mut dx).unwrap()
        });
        let h = &out[0].history;
        assert!(h.len() >= 2);
        for w in h.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12), "GMRES residual must not increase: {h:?}");
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(Ksp::new(KspConfig { rtol: -1.0, ..KspConfig::default() }).is_err());
        assert!(Ksp::new(KspConfig { restart: 0, ..KspConfig::default() }).is_err());
        assert!(Ksp::new(KspConfig { maxits: 0, ..KspConfig::default() }).is_err());
        assert!(KspType::parse("nope").is_err());
    }

    #[test]
    fn from_options_builds_configured_solver() {
        let mut o = Options::new();
        o.set("ksp_type", "cg");
        o.set("pc_type", "jacobi");
        o.set("ksp_rtol", "1e-5");
        o.set("maxits", "123");
        o.set("restart", "7");
        let ksp = Ksp::from_options(&o).unwrap();
        assert_eq!(ksp.config().ksp_type, KspType::Cg);
        assert_eq!(ksp.config().pc_type, PcType::Jacobi);
        assert_eq!(ksp.config().rtol, 1e-5);
        assert_eq!(ksp.config().maxits, 123);
        assert_eq!(ksp.config().restart, 7);

        let mut bad = Options::new();
        bad.set("ksp_type", "unobtainium");
        assert!(Ksp::from_options(&bad).is_err());
    }

    #[test]
    fn from_options_parses_guard_keys() {
        let mut o = Options::new();
        o.set("ksp_max_seconds", "2.5");
        o.set("ksp_stagnation_window", "12");
        let ksp = Ksp::from_options(&o).unwrap();
        assert_eq!(ksp.config().max_seconds, Some(2.5));
        assert_eq!(ksp.config().stagnation_window, 12);

        let mut bad = Options::new();
        bad.set("ksp_max_seconds", "-1");
        assert!(Ksp::from_options(&bad).is_err());
    }

    #[test]
    fn stagnation_is_reported_rank_consistently() {
        // Unpreconditioned CG on a stiff problem with a 1-iteration stall
        // window: the residual is not strictly monotone, so the stall
        // trips long before maxits — and identically on every rank.
        let a = generate::laplacian_2d(10);
        let n = 100;
        let b = vec![1.0; n];
        for ranks in [1usize, 3] {
            let out = Universe::run(ranks, |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                let op = MatOperator::new(da);
                let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
                let mut dx = DistVector::zeros(part, comm.rank());
                let ksp = Ksp::new(KspConfig {
                    ksp_type: KspType::Cg,
                    pc_type: PcType::None,
                    rtol: 1e-30,
                    atol: 1e-300,
                    maxits: 100_000,
                    stagnation_window: 1,
                    ..KspConfig::default()
                })
                .unwrap();
                ksp.solve(comm, &op, &db, &mut dx).unwrap()
            });
            for r in &out {
                assert_eq!(r.reason, out[0].reason, "ranks disagree");
                assert_eq!(r.iterations, out[0].iterations, "ranks disagree");
            }
            assert_eq!(out[0].reason, ConvergedReason::Stagnated);
            assert!(out[0].iterations < 100_000);
        }
    }

    #[test]
    fn wall_clock_budget_times_out_rank_consistently() {
        // An impossible tolerance with a tiny time budget: every rank must
        // stop with TimedOut on the same iteration (the verdict rides the
        // fused reductions).
        let a = generate::laplacian_2d(10);
        let n = 100;
        let b = vec![1.0; n];
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
            let mut dx = DistVector::zeros(part, comm.rank());
            let ksp = Ksp::new(KspConfig {
                // Richardson with a negligible step makes essentially no
                // progress per iteration, so only the clock can stop it.
                ksp_type: KspType::Richardson,
                pc_type: PcType::None,
                richardson_scale: 1e-18,
                rtol: 1e-12,
                dtol: 1e300,
                maxits: 100_000_000,
                max_seconds: Some(0.05),
                ..KspConfig::default()
            })
            .unwrap();
            ksp.solve(comm, &op, &db, &mut dx).unwrap()
        });
        for r in &out {
            assert_eq!(r.reason, out[0].reason, "ranks disagree");
            assert_eq!(r.iterations, out[0].iterations, "ranks disagree");
        }
        assert_eq!(out[0].reason, ConvergedReason::TimedOut);
    }

    /// The batched drivers' core contract: every column of a
    /// `solve_batch` is bit-identical — iterate bits, iteration count and
    /// verdict — to a standalone single-RHS solve of that column, for the
    /// block-CG and pseudo-block GMRES/FGMRES paths, serial and
    /// multi-rank, at several batch widths (k = 1 exercises the block
    /// driver against the plain driver directly).
    #[test]
    fn batched_solves_match_single_solves_bitwise() {
        let a = generate::laplacian_2d(6);
        let n = a.rows();
        let cases = [
            (KspType::Cg, PcType::Jacobi),
            (KspType::Gmres, PcType::Ilu0),
            (KspType::Fgmres, PcType::Jacobi),
        ];
        for (ksp_type, pc_type) in cases {
            for ranks in [1usize, 3] {
                for k in [1usize, 2, 4] {
                    let bs_global: Vec<Vec<f64>> = (0..k)
                        .map(|q| {
                            let xt = generate::random_vector(n, 11 + q as u64);
                            a.matvec(&xt).unwrap()
                        })
                        .collect();
                    let ok = Universe::run(ranks, |comm| {
                        let part = BlockRowPartition::even(n, comm.size());
                        let da =
                            DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                        let op = MatOperator::new(da);
                        let nl = part.local_rows(comm.rank());
                        let mut bs_flat = Vec::with_capacity(k * nl);
                        for bg in &bs_global {
                            let db = DistVector::from_global(
                                part.clone(),
                                comm.rank(),
                                bg,
                            )
                            .unwrap();
                            bs_flat.extend_from_slice(db.local());
                        }
                        let ksp = Ksp::new(KspConfig {
                            ksp_type,
                            pc_type,
                            rtol: 1e-10,
                            maxits: 2000,
                            ..KspConfig::default()
                        })
                        .unwrap();
                        let pc = ksp.make_pc(&op).unwrap();
                        let mut xs_flat = vec![0.0f64; k * nl];
                        let batch = ksp
                            .solve_batch_with_pc(
                                comm,
                                &op,
                                pc.as_ref(),
                                &bs_flat,
                                &mut xs_flat,
                                k,
                            )
                            .unwrap();
                        for (q, bg) in bs_global.iter().enumerate() {
                            let db = DistVector::from_global(
                                part.clone(),
                                comm.rank(),
                                bg,
                            )
                            .unwrap();
                            let mut dx = DistVector::zeros(part.clone(), comm.rank());
                            let single = ksp
                                .solve_with_pc(comm, &op, pc.as_ref(), &db, &mut dx)
                                .unwrap();
                            assert!(
                                single.converged(),
                                "{ksp_type:?}/{ranks}r/k{k} col {q} single did not converge"
                            );
                            assert_eq!(
                                batch[q].reason, single.reason,
                                "{ksp_type:?}/{ranks}r/k{k} col {q} verdict"
                            );
                            assert_eq!(
                                batch[q].iterations, single.iterations,
                                "{ksp_type:?}/{ranks}r/k{k} col {q} iterations"
                            );
                            for (i, (got, want)) in xs_flat[q * nl..(q + 1) * nl]
                                .iter()
                                .zip(dx.local())
                                .enumerate()
                            {
                                assert_eq!(
                                    got.to_bits(),
                                    want.to_bits(),
                                    "{ksp_type:?}/{ranks}r/k{k} col {q} local row {i}: \
                                     {got:e} vs {want:e}"
                                );
                            }
                        }
                        true
                    });
                    assert!(ok.into_iter().all(|v| v));
                }
            }
        }
    }
}
