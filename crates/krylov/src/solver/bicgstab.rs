//! BiCGStab (van der Vorst) with right preconditioning — the workhorse for
//! the paper's nonsymmetric convection–diffusion systems.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{ConvergedReason, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    cb: Option<&mut dyn probe::SolveMonitor>,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();

    let bnorm = b.norm2(comm)?;
    let mut r = b.clone();
    let mut t = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut t)?;
    r.axpy(-1.0, &t)?;
    let r0_norm = r.norm2(comm)?;
    let mut mon = Monitor::new(comm, cfg, bnorm, r0_norm, cb);
    if let Some(reason) = mon.check(0, r0_norm) {
        return Ok(mon.finish(reason, 0, r0_norm, r0_norm));
    }

    // Shadow residual r̂ = r₀ (fixed).
    let r_hat = r.clone();
    let mut p = r.clone();
    let mut v = DistVector::zeros(part.clone(), rank);
    let mut p_hat = DistVector::zeros(part.clone(), rank);
    let mut s_hat = DistVector::zeros(part, rank);
    let mut rho = r_hat.dot(&r, comm)?;

    let mut iterations = 0usize;
    let mut rnorm = r0_norm;
    let reason = loop {
        iterations += 1;
        // p̂ = M⁻¹·p ; v = A·p̂.
        pc.apply(comm, &p, &mut p_hat)?;
        op.apply(comm, &p_hat, &mut v)?;
        let rhv = r_hat.dot(&v, comm)?;
        if rhv == 0.0 || !rhv.is_finite() {
            break ConvergedReason::Breakdown;
        }
        let alpha = rho / rhv;
        // s = r − α·v  (reuse r as s).
        r.axpy(-alpha, &v)?;
        let snorm = mon.guarded_norm2(&r)?;
        if let Some(reason) = mon.check(iterations, snorm) {
            // Half-step convergence: x += α·p̂.
            x.axpy(alpha, &p_hat)?;
            rnorm = snorm;
            break reason;
        }
        // ŝ = M⁻¹·s ; t = A·ŝ.
        pc.apply(comm, &r, &mut s_hat)?;
        op.apply(comm, &s_hat, &mut t)?;
        let tt = t.dot(&t, comm)?;
        if tt == 0.0 {
            break ConvergedReason::Breakdown;
        }
        let omega = t.dot(&r, comm)? / tt;
        if omega == 0.0 || !omega.is_finite() {
            break ConvergedReason::Breakdown;
        }
        // x += α·p̂ + ω·ŝ ; r = s − ω·t.
        x.axpy(alpha, &p_hat)?;
        x.axpy(omega, &s_hat)?;
        r.axpy(-omega, &t)?;
        rnorm = mon.guarded_norm2(&r)?;
        if let Some(reason) = mon.check(iterations, rnorm) {
            break reason;
        }
        let rho_new = r_hat.dot(&r, comm)?;
        if rho == 0.0 {
            break ConvergedReason::Breakdown;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + β·(p − ω·v).
        for ((pi, ri), vi) in p.local_mut().iter_mut().zip(r.local()).zip(v.local()) {
            *pi = ri + beta * (*pi - omega * vi);
        }
    };
    Ok(mon.finish(reason, iterations, r0_norm, rnorm))
}
