//! Chebyshev semi-iteration. Needs bounds (λmin, λmax) on the spectrum of
//! the preconditioned operator M⁻¹A; if the caller does not provide them,
//! λmax is estimated with a few power-method steps (deterministic start
//! vector, identical on every rank) and λmin is set to λmax/30 — the same
//! pragmatic heuristic PETSc applies when Chebyshev runs as a smoother.

use rcomm::Communicator;
use rsparse::DistVector;

use crate::operator::LinearOperator;
use crate::pc::Preconditioner;
use crate::result::{KspError, KspOutcome, KspResult};
use crate::solver::{KspConfig, Monitor};

/// Power-method estimate of the largest eigenvalue of M⁻¹A.
pub(crate) fn estimate_lambda_max(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    steps: usize,
) -> KspOutcome<f64> {
    let part = op.partition().clone();
    let rank = comm.rank();
    // Deterministic, rank-consistent start vector based on global indices.
    let start = part.start_row(rank);
    let mut v = DistVector::from_local(
        part.clone(),
        rank,
        (0..part.local_rows(rank))
            .map(|i| 1.0 + 0.5 * (((start + i) as f64) * 0.7).sin())
            .collect(),
    )?;
    let n = v.norm2(comm)?;
    if n == 0.0 {
        return Err(KspError::BadConfig("empty operator".into()));
    }
    rsparse::dense::scale(1.0 / n, v.local_mut());
    let mut av = DistVector::zeros(part.clone(), rank);
    let mut mav = DistVector::zeros(part, rank);
    let mut lambda = 1.0f64;
    for _ in 0..steps {
        op.apply(comm, &v, &mut av)?;
        pc.apply(comm, &av, &mut mav)?;
        lambda = mav.norm2(comm)?;
        if lambda == 0.0 || !lambda.is_finite() {
            return Err(KspError::BadConfig("power method broke down".into()));
        }
        v.local_mut().copy_from_slice(mav.local());
        rsparse::dense::scale(1.0 / lambda, v.local_mut());
    }
    Ok(lambda)
}

pub(crate) fn solve(
    comm: &Communicator,
    op: &dyn LinearOperator,
    pc: &dyn Preconditioner,
    b: &DistVector,
    x: &mut DistVector,
    cfg: &KspConfig,
    cb: Option<&mut dyn probe::SolveMonitor>,
) -> KspOutcome<KspResult> {
    cfg.validate()?;
    let part = op.partition().clone();
    let rank = comm.rank();

    let (lmin, lmax) = match cfg.cheby_bounds {
        Some((lo, hi)) => (lo, hi),
        None => {
            let hi = estimate_lambda_max(comm, op, pc, 20)?;
            // The power method approaches λmax from below (slowly when the
            // top of the spectrum is clustered, as for Laplacians), and
            // eigenvalues *above* lmax make the Chebyshev polynomial blow
            // up — so pad generously. A too-small lmin or too-large lmax
            // only slows convergence; the reverse prevents it.
            (hi / 50.0, hi * 1.2)
        }
    };
    if !(lmin > 0.0 && lmax > lmin) {
        return Err(KspError::BadConfig(format!(
            "Chebyshev needs 0 < lmin < lmax, got ({lmin}, {lmax})"
        )));
    }

    let bnorm = b.norm2(comm)?;
    let mut ax = DistVector::zeros(part.clone(), rank);
    op.apply(comm, x, &mut ax)?;
    let mut r = b.clone();
    r.axpy(-1.0, &ax)?;
    let r0 = r.norm2(comm)?;
    let mut mon = Monitor::new(comm, cfg, bnorm, r0, cb);
    if let Some(reason) = mon.check(0, r0) {
        return Ok(mon.finish(reason, 0, r0, r0));
    }

    // Standard three-term Chebyshev recurrence on the interval
    // [lmin, lmax] (Saad, Iterative Methods, alg. 12.1).
    let theta = 0.5 * (lmax + lmin);
    let delta = 0.5 * (lmax - lmin);
    let sigma1 = theta / delta;
    let mut rho = 1.0 / sigma1;
    let mut z = DistVector::zeros(part.clone(), rank);
    pc.apply(comm, &r, &mut z)?;
    let mut d = z.clone();
    rsparse::dense::scale(1.0 / theta, d.local_mut());

    let mut iterations = 0usize;
    let mut rnorm;
    let reason = loop {
        iterations += 1;
        x.axpy(1.0, &d)?;
        op.apply(comm, x, &mut ax)?;
        r.local_mut().copy_from_slice(b.local());
        r.axpy(-1.0, &ax)?;
        rnorm = mon.guarded_norm2(&r)?;
        if let Some(reason) = mon.check(iterations, rnorm) {
            break reason;
        }
        pc.apply(comm, &r, &mut z)?;
        let rho_new = 1.0 / (2.0 * sigma1 - rho);
        // d ← ρ_new·ρ·d + (2·ρ_new/δ)·z.
        let a1 = rho_new * rho;
        let a2 = 2.0 * rho_new / delta;
        for (di, zi) in d.local_mut().iter_mut().zip(z.local()) {
            *di = a1 * *di + a2 * zi;
        }
        rho = rho_new;
    };
    Ok(mon.finish(reason, iterations, r0, rnorm))
}
