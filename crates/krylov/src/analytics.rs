//! Convergence analytics derived from Krylov recurrence coefficients.
//!
//! CG's scalars are a Lanczos process in disguise: the step sizes `αᵢ`
//! and direction updates `βᵢ` assemble the symmetric tridiagonal matrix
//!
//! ```text
//!   T[0,0]   = 1/α₀
//!   T[i,i]   = 1/αᵢ + βᵢ₋₁/αᵢ₋₁          (i ≥ 1)
//!   T[i,i-1] = √βᵢ₋₁ / αᵢ₋₁
//! ```
//!
//! whose extreme eigenvalues converge (from the inside) to the extreme
//! eigenvalues of the preconditioned operator M⁻¹A. The ratio is the
//! condition-number estimate `κ̂` the solve ledger reports, and the
//! classical CG bound turns `κ̂` into an iteration estimate for the
//! *unpreconditioned* problem — the denominator of the ledger's
//! "preconditioner quality" figure.

/// Eigenvalue count of the symmetric tridiagonal `(diag, offdiag)` that
/// is strictly less than `x`, by the Sturm-sequence recurrence.
fn sturm_count(diag: &[f64], offdiag: &[f64], x: f64) -> usize {
    let mut count = 0usize;
    let mut d = 1.0f64;
    for (i, &a) in diag.iter().enumerate() {
        let off2 = if i == 0 { 0.0 } else { offdiag[i - 1] * offdiag[i - 1] };
        d = a - x - off2 / d;
        if d == 0.0 {
            // Nudge off the singularity; the standard safeguard.
            d = f64::MIN_POSITIVE;
        }
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// Bisect for the eigenvalue boundary where the Sturm count first
/// reaches `target` (1 → smallest eigenvalue, n → largest).
fn bisect(diag: &[f64], offdiag: &[f64], target: usize, mut lo: f64, mut hi: f64) -> f64 {
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if sturm_count(diag, offdiag, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Extreme eigenvalues `(λmin, λmax)` of a symmetric tridiagonal matrix
/// by Sturm-sequence bisection inside the Gershgorin interval. `None`
/// for an empty matrix or non-finite entries.
pub fn tridiag_extreme_eigenvalues(diag: &[f64], offdiag: &[f64]) -> Option<(f64, f64)> {
    let n = diag.len();
    if n == 0 || offdiag.len() + 1 != n {
        return None;
    }
    if diag.iter().chain(offdiag).any(|v| !v.is_finite()) {
        return None;
    }
    // Gershgorin bounds, slightly inflated so the bisection brackets.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let mut radius = 0.0;
        if i > 0 {
            radius += offdiag[i - 1].abs();
        }
        if i + 1 < n {
            radius += offdiag[i].abs();
        }
        lo = lo.min(diag[i] - radius);
        hi = hi.max(diag[i] + radius);
    }
    let pad = 1e-12 * (1.0 + hi.abs().max(lo.abs()));
    let (lo, hi) = (lo - pad, hi + pad);
    let lmin = bisect(diag, offdiag, 1, lo, hi);
    let lmax = bisect(diag, offdiag, n, lo, hi);
    Some((lmin, lmax))
}

/// Build the Lanczos tridiagonal from CG's `αᵢ` and `βᵢ` sequences and
/// return the condition-number estimate `λmax/λmin` of the
/// preconditioned operator. `betas` must be one shorter than `alphas`
/// (no β is produced on the final iteration). `None` when the sequences
/// are empty, inconsistent, non-positive where positivity is required
/// (SPD breakdown), or when λmin is not safely positive.
pub fn cond_estimate_from_cg(alphas: &[f64], betas: &[f64]) -> Option<f64> {
    let n = alphas.len();
    if n == 0 || betas.len() + 1 < n {
        return None;
    }
    let betas = &betas[..n - 1];
    if alphas.iter().any(|&a| a <= 0.0 || !a.is_finite())
        || betas.iter().any(|&b| b < 0.0 || !b.is_finite())
    {
        return None;
    }
    let mut diag = Vec::with_capacity(n);
    let mut offdiag = Vec::with_capacity(n.saturating_sub(1));
    diag.push(1.0 / alphas[0]);
    for i in 1..n {
        diag.push(1.0 / alphas[i] + betas[i - 1] / alphas[i - 1]);
        offdiag.push(betas[i - 1].sqrt() / alphas[i - 1]);
    }
    let (lmin, lmax) = tridiag_extreme_eigenvalues(&diag, &offdiag)?;
    (lmin > 1e-300 && lmax.is_finite()).then(|| lmax / lmin)
}

/// Classical CG iteration estimate for relative tolerance `rtol` on an
/// SPD system of condition number `cond`:
/// `⌈½·√cond·ln(2/rtol)⌉`, floored at one iteration. `None` when either
/// input is out of domain.
pub fn unpreconditioned_iterations(cond: f64, rtol: f64) -> Option<u64> {
    if cond < 1.0 || !cond.is_finite() || !rtol.is_finite() || rtol <= 0.0 || rtol >= 1.0 {
        return None;
    }
    let iters = 0.5 * cond.sqrt() * (2.0 / rtol).ln();
    Some((iters.ceil() as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sturm_bisection_matches_laplacian_spectrum() {
        // tridiag(-1, 2, -1) of order n has eigenvalues
        // 2 - 2·cos(kπ/(n+1)), k = 1..n.
        let n = 25usize;
        let diag = vec![2.0; n];
        let offdiag = vec![-1.0; n - 1];
        let (lmin, lmax) = tridiag_extreme_eigenvalues(&diag, &offdiag).unwrap();
        let analytic = |k: usize| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!((lmin - analytic(1)).abs() < 1e-9, "lmin {lmin}");
        assert!((lmax - analytic(n)).abs() < 1e-9, "lmax {lmax}");
    }

    #[test]
    fn identity_operator_estimates_condition_one() {
        // CG on the identity converges in one step with α₀ = 1: the
        // Lanczos matrix is [1] and κ̂ = 1.
        let cond = cond_estimate_from_cg(&[1.0], &[]).unwrap();
        assert!((cond - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sequences_yield_none() {
        assert_eq!(cond_estimate_from_cg(&[], &[]), None);
        assert_eq!(cond_estimate_from_cg(&[1.0, 1.0], &[]), None);
        assert_eq!(cond_estimate_from_cg(&[-1.0], &[]), None);
        assert_eq!(cond_estimate_from_cg(&[1.0, f64::NAN], &[0.5]), None);
    }

    #[test]
    fn iteration_bound_is_monotone_in_condition() {
        let a = unpreconditioned_iterations(10.0, 1e-8).unwrap();
        let b = unpreconditioned_iterations(1000.0, 1e-8).unwrap();
        assert!(b > a);
        assert_eq!(unpreconditioned_iterations(0.5, 1e-8), None);
        assert_eq!(unpreconditioned_iterations(10.0, 0.0), None);
        assert_eq!(unpreconditioned_iterations(f64::INFINITY, 1e-8), None);
    }
}
