//! Reconciliation of the causal critical-path pass against the span
//! table: per-rank halo / reduce / compute totals computed from the
//! merged cross-rank trace must agree (±1%) with the per-rank span
//! totals that feed `probe::render_wait_attribution` — the trace's
//! `Phase`/`Collective` events are emitted from the same span closes
//! with the same clock reads, so disagreement means the two pipelines
//! drifted apart.
//!
//! Lives in its own binary: arming the process-wide trace switch and
//! reading the whole recorder registry must not race other tests.

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

const RANKS: usize = 4;

/// |a-b| within 1% of the larger magnitude (or 1ns absolute for zeros).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-2 * a.abs().max(b.abs()).max(1e-9)
}

#[test]
fn critpath_totals_reconcile_with_the_wait_attribution_table() {
    probe::reset();
    // Probe mode stays Off: spans must pass through on the strength of
    // the armed trace alone (the RSPARSE_TRACE path).
    probe::trace::set_armed(true);

    let n_side = 20usize;
    let n = n_side * n_side;
    let a = generate::laplacian_2d(n_side);
    let b = vec![1.0; n];
    let results = Universe::run(RANKS, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
        let cfg = KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::Jacobi,
            rtol: 1e-10,
            maxits: 500,
            ..KspConfig::default()
        };
        let ksp = Ksp::new(cfg).unwrap();
        let mut x = DistVector::zeros(part, comm.rank());
        ksp.solve(comm, &op, &db, &mut x).unwrap()
    });
    probe::trace::set_armed(false);
    for r in &results {
        assert!(r.converged(), "CG must converge: {:?}", r.reason);
    }

    let reports = probe::aggregate();
    let cp = probe::critpath::analyze_latest()
        .expect("an armed 4-rank solve must leave a mergeable trace");
    assert_eq!(cp.ranks.len(), RANKS, "one totals row per rank");
    assert!(cp.end_to_end_s > 0.0);
    assert!(!cp.segments.is_empty(), "the walk must cover the solve");

    // The reconciliation: trace-derived per-rank totals vs the span
    // table the wait-attribution sink prints.
    for rt in &cp.ranks {
        let rep = reports
            .iter()
            .find(|r| r.rank == Some(rt.rank))
            .expect("every traced rank aggregates a report");
        let span_total = |name: &str| {
            rep.spans.iter().find(|s| s.name == name).map(|s| s.total_s).unwrap_or(0.0)
        };
        let halo = span_total("halo_post") + span_total("halo_drain");
        let reduce = span_total("allreduce");
        let compute = span_total("spmv_interior") + span_total("spmv_boundary");
        assert!(halo > 0.0, "rank {}: 4-rank CG exchanges halos", rt.rank);
        assert!(reduce > 0.0, "rank {}: CG issues allreduces", rt.rank);
        assert!(compute > 0.0, "rank {}: CG computes SpMVs", rt.rank);
        assert!(
            close(rt.halo_wait_s, halo),
            "rank {}: halo {} (trace) vs {} (spans)",
            rt.rank, rt.halo_wait_s, halo
        );
        assert!(
            close(rt.reduce_s, reduce),
            "rank {}: reduce {} (trace) vs {} (spans)",
            rt.rank, rt.reduce_s, reduce
        );
        assert!(
            close(rt.compute_s, compute),
            "rank {}: compute {} (trace) vs {} (spans)",
            rt.rank, rt.compute_s, compute
        );
    }

    // The walk's covered time can never exceed the end-to-end window.
    assert!(cp.covered_s() <= cp.end_to_end_s * 1.001);

    // Render and JSON views carry the reconciled numbers.
    let text = probe::critpath::render_latest();
    assert!(text.contains("critical path"), "render:\n{text}");
    assert!(text.contains("wait attribution"), "render:\n{text}");
    let json = probe::critpath::latest_json();
    assert!(json.contains("\"end_to_end_s\""), "json: {json}");
    assert!(json.contains("\"per_rank\""), "json: {json}");

    // Histograms filled alongside: per-iteration latency and collective
    // latency were sampled during the armed solve even with probe Off.
    for rep in reports.iter().filter(|r| r.rank.is_some()) {
        assert!(
            rep.hist(probe::hist::Hist::IterTime).count > 0,
            "rank {:?}: iteration histogram sampled",
            rep.rank
        );
        assert!(
            rep.hist(probe::hist::Hist::Collective).count > 0,
            "rank {:?}: collective histogram sampled",
            rep.rank
        );
    }

    probe::reset();
}
