//! The streaming `SolveMonitor` path must deliver exactly the data the
//! legacy `keep_history` Vec recorded — and suppress that Vec when a
//! monitor is attached, so history is never allocated twice.

use probe::{ResidualHistory, SolveMonitor};
use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

fn run_solver(
    ksp_type: KspType,
    p: usize,
) -> Vec<(rkrylov::KspResult, rkrylov::KspResult, ResidualHistory)> {
    let n = 36;
    let a = generate::laplacian_2d(6);
    let b = vec![1.0; n];
    Universe::run(p, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
        let cfg = KspConfig {
            ksp_type,
            pc_type: PcType::Jacobi,
            rtol: 1e-8,
            maxits: 500,
            ..KspConfig::default()
        };
        let ksp = Ksp::new(cfg).unwrap();

        let mut x1 = DistVector::zeros(part.clone(), comm.rank());
        let legacy = ksp.solve(comm, &op, &db, &mut x1).unwrap();

        let mut x2 = DistVector::zeros(part, comm.rank());
        let mut mon = ResidualHistory::new();
        let monitored = ksp.solve_monitored(comm, &op, &db, &mut x2, &mut mon).unwrap();

        (legacy, monitored, mon)
    })
}

#[test]
fn monitored_stream_matches_legacy_history() {
    for ksp_type in [KspType::Cg, KspType::Gmres, KspType::BiCgStab] {
        for p in [1, 4] {
            for (legacy, monitored, mon) in run_solver(ksp_type, p) {
                assert_eq!(
                    mon.history, legacy.history,
                    "{ksp_type:?} at {p} ranks: monitor must see the same residual stream"
                );
                assert_eq!(mon.iterations, legacy.iterations);
                assert_eq!(mon.final_residual, legacy.final_residual);
                assert_eq!(mon.converged, legacy.converged());
                // The monitored result keeps no duplicate Vec.
                assert!(
                    monitored.history.is_empty(),
                    "{ksp_type:?}: legacy history must be off when a monitor is attached"
                );
                assert_eq!(monitored.iterations, legacy.iterations);
                assert_eq!(monitored.reason, legacy.reason);
            }
        }
    }
}

#[test]
fn per_iteration_collective_counts_are_nondecreasing_and_solve_scoped() {
    let out = run_solver(KspType::Cg, 2);
    for (_, _, mon) in out {
        assert!(!mon.collectives.is_empty());
        // Counts are cumulative within the solve: nondecreasing, starting
        // from this solve's own collectives (not the communicator's
        // lifetime total, which already includes the legacy solve).
        for w in mon.collectives.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let per_iter = mon.collectives[0];
        assert!(
            (1..=4).contains(&per_iter),
            "first iteration should need a handful of allreduces, got {per_iter}"
        );
    }
}

#[test]
fn on_finish_reports_nonconverged_solves_too() {
    #[derive(Default)]
    struct Last {
        finished: Option<(usize, bool)>,
    }
    impl SolveMonitor for Last {
        fn on_finish(&mut self, iterations: usize, _r: f64, converged: bool) {
            self.finished = Some((iterations, converged));
        }
    }

    let n = 100;
    let a = generate::laplacian_2d(10);
    let b = vec![1.0; n];
    let out = Universe::run(1, |comm| {
        let part = BlockRowPartition::even(n, 1);
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), 0, &b).unwrap();
        let mut dx = DistVector::zeros(part, 0);
        let ksp = Ksp::new(KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::None,
            rtol: 1e-14,
            maxits: 3,
            ..KspConfig::default()
        })
        .unwrap();
        let mut mon = Last::default();
        let res = ksp.solve_monitored(comm, &op, &db, &mut dx, &mut mon).unwrap();
        (res.iterations, mon.finished)
    });
    let (iterations, finished) = out[0];
    assert_eq!(iterations, 3);
    assert_eq!(finished, Some((3, false)));
}
