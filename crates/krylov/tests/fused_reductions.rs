//! Fused-reduction equivalence tests: on the paper's 5-point problem, the
//! fused CG schedule (‖r‖² and r·z batched into one `allreduce_vec`) must
//! reproduce the unfused residual history bit for bit at a strictly lower
//! collective count, and fused (classical-Gram–Schmidt) GMRES must match
//! unfused (modified-Gram–Schmidt) GMRES to tight tolerance with the same
//! iteration count.

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

/// Solve the 2-D 5-point Laplacian at `p` ranks and return every rank's
/// `(KspResult, allreduce calls made during the solve)`.
fn solve_counted(
    ksp_type: KspType,
    fused: bool,
    p: usize,
    m: usize,
) -> Vec<(rkrylov::KspResult, u64)> {
    let a = generate::laplacian_2d(m);
    let n = a.rows();
    let x_true = generate::random_vector(n, 23);
    let b = a.matvec(&x_true).unwrap();
    Universe::run(p, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let ksp = Ksp::new(KspConfig {
            ksp_type,
            pc_type: PcType::Jacobi,
            rtol: 1e-10,
            maxits: 2000,
            fused_reductions: fused,
            ..KspConfig::default()
        })
        .unwrap();
        let before = comm.allreduce_count();
        let res = ksp.solve(comm, &op, &db, &mut dx).unwrap();
        (res, comm.allreduce_count() - before)
    })
}

#[test]
fn fused_cg_history_is_bit_identical_to_unfused() {
    for p in [1usize, 4] {
        let fused = solve_counted(KspType::Cg, true, p, 10);
        let unfused = solve_counted(KspType::Cg, false, p, 10);
        let (rf, _) = &fused[0];
        let (ru, _) = &unfused[0];
        assert!(rf.converged() && ru.converged(), "p = {p}");
        assert_eq!(rf.iterations, ru.iterations, "p = {p}");
        // The fused allreduce_vec reduces each component over the same
        // rank-ordered tree as the standalone scalar allreduce, so the
        // residual norms must agree exactly, not just approximately.
        assert_eq!(rf.history, ru.history, "p = {p}");
        assert_eq!(rf.final_residual.to_bits(), ru.final_residual.to_bits());
    }
}

#[test]
fn fused_cg_makes_at_most_two_allreduces_per_iteration() {
    let out = solve_counted(KspType::Cg, true, 4, 10);
    for (res, count) in &out {
        assert!(res.converged());
        // Setup costs three reductions (‖b‖, ‖r₀‖, r·z); each iteration
        // costs p·q plus the fused pair — 2 per iteration, down from 3.
        let per_iter = (*count as f64 - 3.0) / res.iterations as f64;
        assert!(
            per_iter <= 2.0,
            "fused CG must spend ≤ 2 allreduces/iteration, measured {per_iter}"
        );
    }
    let unfused = solve_counted(KspType::Cg, false, 4, 10);
    assert!(
        out[0].1 < unfused[0].1,
        "fusing must lower the collective count ({} vs {})",
        out[0].1,
        unfused[0].1
    );
}

#[test]
fn fused_gmres_matches_unfused_convergence() {
    for p in [1usize, 3] {
        let fused = solve_counted(KspType::Gmres, true, p, 10);
        let unfused = solve_counted(KspType::Gmres, false, p, 10);
        let (rf, cf) = &fused[0];
        let (ru, cu) = &unfused[0];
        assert!(rf.converged() && ru.converged(), "p = {p}");
        // Classical vs modified Gram–Schmidt differ only in roundoff on
        // this well-conditioned problem: same iteration count, histories
        // equal to tight tolerance.
        assert_eq!(rf.iterations, ru.iterations, "p = {p}");
        assert_eq!(rf.history.len(), ru.history.len());
        for (hf, hu) in rf.history.iter().zip(&ru.history) {
            assert!(
                (hf - hu).abs() <= 1e-8 * (1.0 + hu.abs()),
                "p = {p}: fused {hf} vs unfused {hu}"
            );
        }
        // Batching the Arnoldi projection dots must cut the collective
        // count (j+2 per inner iteration down to 2).
        assert!(cf < cu, "p = {p}: fused {cf} vs unfused {cu} allreduces");
    }
}

#[test]
fn fgmres_supports_fused_reductions_too() {
    let fused = solve_counted(KspType::Fgmres, true, 3, 8);
    let unfused = solve_counted(KspType::Fgmres, false, 3, 8);
    assert!(fused[0].0.converged() && unfused[0].0.converged());
    assert_eq!(fused[0].0.iterations, unfused[0].0.iterations);
    assert!(fused[0].1 < unfused[0].1);
}

#[test]
fn fused_reductions_knob_parses_from_options() {
    let mut o = rkrylov::Options::new();
    o.set("ksp_type", "cg");
    o.set("ksp_fused_reductions", "off");
    let ksp = Ksp::from_options(&o).unwrap();
    assert!(!ksp.config().fused_reductions);
    o.set("ksp_fused_reductions", "true");
    assert!(Ksp::from_options(&o).unwrap().config().fused_reductions);
    o.set("ksp_fused_reductions", "maybe");
    assert!(Ksp::from_options(&o).is_err());
}
