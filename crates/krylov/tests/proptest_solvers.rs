//! Property-based tests on the RKSP package: for random well-conditioned
//! systems, every solver/preconditioner combination must recover the
//! manufactured solution, and the residual it reports must be honest.

use proptest::prelude::*;
use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

fn solve(
    a: &rsparse::CsrMatrix,
    b: &[f64],
    ksp_type: KspType,
    pc_type: PcType,
    p: usize,
) -> (rkrylov::KspResult, Vec<f64>) {
    let n = a.rows();
    let out = Universe::run(p, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let ksp = Ksp::new(KspConfig {
            ksp_type,
            pc_type,
            rtol: 1e-11,
            maxits: 5000,
            ..KspConfig::default()
        })
        .unwrap();
        let res = ksp.solve(comm, &op, &db, &mut dx).unwrap();
        (res, dx.allgather_full(comm).unwrap())
    });
    out.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn nonsymmetric_solvers_recover_random_solutions(
        seed in 0u64..10_000,
        p in 1usize..4,
        ksp_idx in 0usize..4,
    ) {
        let ksp_type = [KspType::BiCgStab, KspType::Gmres, KspType::Fgmres, KspType::Tfqmr]
            [ksp_idx];
        let n = 30;
        let a = generate::random_diag_dominant(n, 4, seed);
        let x_true = generate::random_vector(n, seed ^ 0xabcd);
        let b = a.matvec(&x_true).unwrap();
        let (res, x) = solve(&a, &b, ksp_type, PcType::Ilu0, p);
        prop_assert!(res.converged(), "{ksp_type:?} p={p}: {:?}", res.reason);
        for (g, e) in x.iter().zip(&x_true) {
            prop_assert!((g - e).abs() < 1e-6, "{ksp_type:?}");
        }
        // Reported residual must match a recomputed one to within slack.
        let r = rsparse::ops::residual(&a, &x, &b).unwrap();
        let true_norm = rsparse::dense::norm2(&r);
        prop_assert!(
            (res.final_residual - true_norm).abs() < 1e-6 * (1.0 + true_norm),
            "reported {} vs recomputed {}",
            res.final_residual,
            true_norm
        );
    }

    #[test]
    fn cg_matches_direct_solution_on_spd(
        seed in 0u64..10_000,
        p in 1usize..4,
    ) {
        let n = 25;
        let a = generate::random_spd(n, 3, seed);
        let x_true = generate::random_vector(n, seed ^ 0x77);
        let b = a.matvec(&x_true).unwrap();
        let (res, x) = solve(&a, &b, KspType::Cg, PcType::Ic0, p);
        prop_assert!(res.converged());
        let reference = a.to_dense().solve(&b).unwrap();
        for (g, e) in x.iter().zip(&reference) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn initial_guess_is_respected(
        seed in 0u64..10_000,
    ) {
        // Starting from the exact solution must converge in 0 iterations.
        let n = 20;
        let a = generate::random_diag_dominant(n, 3, seed);
        let x_true = generate::random_vector(n, seed ^ 0x3141);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(1, |comm| {
            let part = BlockRowPartition::even(n, 1);
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::from_global(part.clone(), 0, &b).unwrap();
            let mut dx = DistVector::from_global(part, 0, &x_true).unwrap();
            let ksp = Ksp::new(KspConfig {
                ksp_type: KspType::Gmres,
                pc_type: PcType::None,
                rtol: 1e-8,
                ..KspConfig::default()
            })
            .unwrap();
            ksp.solve(comm, &op, &db, &mut dx).unwrap()
        });
        prop_assert!(out[0].converged());
        prop_assert_eq!(out[0].iterations, 0);
    }

    #[test]
    fn iteration_counts_are_rank_invariant_with_jacobi(
        seed in 0u64..10_000,
    ) {
        // Point Jacobi does not depend on the partition, so parallel runs
        // must take exactly the same iterations as serial ones.
        let n = 28;
        let a = generate::random_diag_dominant(n, 3, seed);
        let b = generate::random_vector(n, seed ^ 0x5555);
        let (r1, _) = solve(&a, &b, KspType::BiCgStab, PcType::Jacobi, 1);
        let (r3, _) = solve(&a, &b, KspType::BiCgStab, PcType::Jacobi, 3);
        prop_assert!(r1.converged() && r3.converged());
        prop_assert_eq!(r1.iterations, r3.iterations);
    }
}
