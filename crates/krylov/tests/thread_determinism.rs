//! End-to-end thread-determinism test: a CG + ILU(0) solve large enough
//! to engage the level-scheduled triangular sweeps must reproduce the
//! serial residual history **bit for bit** when the rank-local thread
//! count changes — the contract that makes `RSPARSE_THREADS` a pure
//! performance knob.

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

/// Solve the m×m 5-point Laplacian with CG + ILU(0) on one rank and
/// return (result, scheduled-solve count observed on the rank thread).
fn solve_cg_ilu(m: usize) -> (rkrylov::KspResult, u64) {
    let a = generate::laplacian_2d(m);
    let n = a.rows();
    let x_true = generate::random_vector(n, 41);
    let b = a.matvec(&x_true).unwrap();
    let out = Universe::run(1, move |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let ksp = Ksp::new(KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::Ilu0,
            rtol: 1e-8,
            maxits: 60,
            ..KspConfig::default()
        })
        .unwrap();
        let before = probe::get(probe::Counter::SptrsvScheduledSolves);
        let res = ksp.solve(comm, &op, &db, &mut dx).unwrap();
        (res, probe::get(probe::Counter::SptrsvScheduledSolves) - before)
    });
    out.into_iter().next().unwrap()
}

/// Both thread counts solve in one test body: the thread count is
/// process-global, so interleaving with another test that sets it would
/// race. 80×80 gives n = 6400 rows over 159 levels — deep enough to pass
/// the worthwhile heuristic at 4 threads.
#[test]
fn cg_ilu0_history_is_bit_identical_across_thread_counts() {
    rsparse::threads::set_threads(1);
    let (serial, sched_serial) = solve_cg_ilu(80);
    rsparse::threads::set_threads(4);
    let (threaded, sched_threaded) = solve_cg_ilu(80);
    rsparse::threads::set_threads(1);

    assert_eq!(
        sched_serial, 0,
        "threads = 1 must never take the scheduled path"
    );
    assert!(
        sched_threaded > 0,
        "threads = 4 on n = 6400 must engage the level-scheduled sweeps"
    );
    assert!(serial.history.len() > 5, "solve should iterate: {serial:?}");
    assert_eq!(serial.iterations, threaded.iterations);
    assert_eq!(serial.history.len(), threaded.history.len());
    for (i, (s, t)) in serial.history.iter().zip(&threaded.history).enumerate() {
        assert_eq!(
            s.to_bits(),
            t.to_bits(),
            "residual history diverged at iteration {i}: {s} vs {t}"
        );
    }
    assert_eq!(
        serial.final_residual.to_bits(),
        threaded.final_residual.to_bits()
    );
}
