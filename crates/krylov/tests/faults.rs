//! Fault-injection behaviour of the Krylov solvers.
//!
//! These tests arm the process-global `rcomm` fault plan, so they live in
//! their own binary (cargo runs test binaries one after another) and
//! serialise against each other through `FAULT_LOCK`.

use std::sync::Mutex;

use rkrylov::{ConvergedReason, Ksp, KspConfig, KspType, MatOperator, PcType};
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

/// Serialises tests that arm/disarm the global fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn solve_cg(ranks: usize, n_side: usize, cfg_patch: impl Fn(&mut KspConfig) + Sync) -> Vec<rkrylov::KspResult> {
    let a = generate::laplacian_2d(n_side);
    let n = n_side * n_side;
    let b = vec![1.0; n];
    Universe::run(ranks, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let mut cfg = KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::None,
            rtol: 1e-12,
            maxits: 500,
            ..KspConfig::default()
        };
        cfg_patch(&mut cfg);
        let ksp = Ksp::new(cfg).unwrap();
        ksp.solve(comm, &op, &db, &mut dx).unwrap()
    })
}

#[test]
fn corrupted_reduction_is_flagged_as_divergence_everywhere() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A fault plan poisoning rank 1's allreduce contribution: the NaN
    // propagates through the sum, so every rank sees a non-finite
    // residual and stops with Diverged identically. Call 2 on rank 1 is
    // the scalar ‖r₀‖ reduction (call 1 is ‖b‖).
    let plan =
        rcomm::FaultPlan::parse("op=allreduce,rank=1,call=2,kind=corrupt;seed=7").unwrap();
    rcomm::fault::arm(plan);
    let out = solve_cg(3, 8, |_| {});
    rcomm::fault::disarm();
    for r in &out {
        assert_eq!(r.reason, out[0].reason, "ranks disagree");
        assert_eq!(r.iterations, out[0].iterations, "ranks disagree");
    }
    assert_eq!(out[0].reason, ConvergedReason::Diverged);
    assert!(!out[0].final_residual.is_finite());
}

#[test]
fn injected_collective_error_surfaces_as_typed_comm_error() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan =
        rcomm::FaultPlan::parse("op=allreduce,rank=0,call=2,kind=error").unwrap();
    rcomm::fault::arm(plan);
    let a = generate::laplacian_2d(6);
    let n = 36;
    let b = vec![1.0; n];
    let out = Universe::run(1, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let ksp = Ksp::new(KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::None,
            ..KspConfig::default()
        })
        .unwrap();
        ksp.solve(comm, &op, &db, &mut dx)
    });
    rcomm::fault::disarm();
    let err = out[0].as_ref().unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "expected an injected-fault error, got: {err}"
    );
}

#[test]
fn no_plan_armed_means_no_interference() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rcomm::fault::disarm();
    let out = solve_cg(2, 8, |_| {});
    assert!(out[0].converged());
}
