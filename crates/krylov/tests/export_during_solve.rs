//! Concurrent Prometheus scrapes against a live solve.
//!
//! The exporter answers every request with a fresh registry snapshot, so
//! two clients hitting it mid-`Universe::run` must each get a complete,
//! internally consistent page: a 200 with the exposition content type,
//! `# HELP` metadata before every `# TYPE`, and cumulative histogram
//! buckets that never decrease — even while all four rank threads are
//! mutating the counters under the scrape.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to the exporter");
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    response
}

/// Every `# TYPE <family> <kind>` line must be preceded by a
/// `# HELP <family> ...` line, and every sample line's family must have
/// been declared.
fn assert_metadata_complete(body: &str) {
    let mut last_help: Option<&str> = None;
    let mut declared: Vec<&str> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().expect("HELP names a family");
            last_help = Some(family);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split_whitespace().next().expect("TYPE names a family");
            assert_eq!(
                last_help,
                Some(family),
                "TYPE for {family} not directly preceded by its HELP"
            );
            declared.push(family);
        } else if !line.is_empty() {
            let name = line
                .split(['{', ' '])
                .next()
                .expect("sample line starts with a metric name");
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                declared.contains(&family) || declared.contains(&name),
                "sample {name} has no declared family"
            );
        }
    }
    assert!(!declared.is_empty(), "page declared no metric families");
}

/// Histogram buckets are cumulative: within one (family, rank) series the
/// counts must be non-decreasing in `le` order and end at `+Inf`.
fn assert_buckets_monotone(body: &str) {
    let mut series: std::collections::BTreeMap<String, (u64, bool)> =
        std::collections::BTreeMap::new();
    let mut histogram_seen = false;
    for line in body.lines() {
        let Some((name_labels, value)) = line.rsplit_once(' ') else { continue };
        let Some((name, labels)) = name_labels.split_once('{') else { continue };
        let Some(family) = name.strip_suffix("_bucket") else { continue };
        histogram_seen = true;
        let rank = labels
            .split(',')
            .find(|l| l.starts_with("rank="))
            .expect("bucket carries a rank label");
        let key = format!("{family}/{rank}");
        let cum: u64 = value.parse().expect("bucket count is an integer");
        let terminal = labels.contains("le=\"+Inf\"");
        let entry = series.entry(key.clone()).or_insert((0, false));
        assert!(
            cum >= entry.0,
            "{key}: cumulative bucket decreased {} -> {cum}",
            entry.0
        );
        assert!(!entry.1, "{key}: bucket after the +Inf edge");
        *entry = (cum, terminal);
    }
    assert!(histogram_seen, "no histogram buckets in the page");
    for (key, (_, closed)) in &series {
        assert!(closed, "{key}: series did not end at le=\"+Inf\"");
    }
}

#[test]
fn concurrent_scrapes_mid_solve_are_consistent() {
    probe::set_mode(probe::ProbeMode::Summary);
    let server = probe::export::serve("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let solve_done = Arc::new(AtomicBool::new(false));
    let done = Arc::clone(&solve_done);
    let solver = std::thread::spawn(move || {
        let n_side = 72usize;
        let a = generate::laplacian_2d(n_side);
        let n = n_side * n_side;
        let b = vec![1.0; n];
        let res = Universe::run(4, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let op = MatOperator::new(da);
            let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
            // Fixed work, no early exit: the solve must outlive the
            // scrapes below on any machine.
            let ksp = Ksp::new(KspConfig {
                ksp_type: KspType::Cg,
                pc_type: PcType::Jacobi,
                rtol: 0.0,
                atol: 0.0,
                maxits: 600,
                keep_history: false,
                ..KspConfig::default()
            })
            .unwrap();
            let mut x = DistVector::zeros(part, comm.rank());
            ksp.solve(comm, &op, &db, &mut x).unwrap().iterations
        });
        done.store(true, Ordering::SeqCst);
        res[0]
    });

    // Wait for the solve to be demonstrably in flight: iterations are
    // counted once per CG loop, so a page showing the counter proves the
    // rank threads are live inside `Universe::run`.
    let mut warm = String::new();
    for _ in 0..600 {
        warm = scrape(addr);
        if warm.contains("rsparse_ksp_iterations_total") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        warm.contains("rsparse_ksp_iterations_total"),
        "solve never became visible to the exporter"
    );
    assert!(
        !solve_done.load(Ordering::SeqCst),
        "workload finished before the concurrent scrapes could run"
    );

    // Two raw clients scraping at the same moment, mid-solve.
    let h1 = std::thread::spawn(move || scrape(addr));
    let h2 = std::thread::spawn(move || scrape(addr));
    let page1 = h1.join().expect("scraper 1");
    let page2 = h2.join().expect("scraper 2");

    let iterations = solver.join().expect("solve thread");
    assert_eq!(iterations, 600, "fixed-work solve ran to maxits");
    server.stop();

    for (who, page) in [("scrape 1", &page1), ("scrape 2", &page2)] {
        assert!(
            page.starts_with("HTTP/1.0 200 OK"),
            "{who}: expected 200, got:\n{page}"
        );
        assert!(
            page.contains("text/plain; version=0.0.4"),
            "{who}: exposition content type missing"
        );
        let body = page.split("\r\n\r\n").nth(1).expect("header/body split");
        assert_metadata_complete(body);
        assert_buckets_monotone(body);
        assert!(
            body.contains("rsparse_span_seconds_total"),
            "{who}: span family missing mid-solve"
        );
    }
}
