//! Property-based tests: every collective must equal its serial definition
//! for arbitrary rank counts and payloads.

use proptest::collection::vec;
use proptest::prelude::*;
use rcomm::{sum, Universe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_equals_serial_sum(
        p in 1usize..9,
        vals in vec(-1.0e6f64..1.0e6, 9),
    ) {
        let vals = vals[..p].to_vec();
        let expect: f64 = vals.iter().sum();
        let out = Universe::run(p, |c| {
            c.allreduce(vals[c.rank()], sum).unwrap()
        });
        for v in out {
            // The tree order is fixed, so all ranks agree bit-for-bit...
            prop_assert_eq!(v, out_first(&vals, p));
            // ...and match a left-to-right serial sum up to roundoff.
            prop_assert!((v - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
        }

        fn out_first(vals: &[f64], p: usize) -> f64 {
            // Reference: the same binomial combination order used by the
            // runtime (rank-ordered pairwise tree).
            let mut slots: Vec<Option<f64>> = vals[..p].iter().copied().map(Some).collect();
            let mut mask = 1usize;
            while mask < p {
                let mut i = 0;
                while i < p {
                    if i & mask == 0 && i | mask < p {
                        let rhs = slots[i | mask].take().unwrap();
                        let lhs = slots[i].take().unwrap();
                        slots[i] = Some(lhs + rhs);
                    }
                    i += mask << 1;
                }
                mask <<= 1;
            }
            slots[0].unwrap()
        }
    }

    #[test]
    fn gatherv_concatenates_in_rank_order(
        p in 1usize..7,
        lens in vec(0usize..5, 7),
        root_sel in 0usize..7,
    ) {
        let root = root_sel % p;
        let lens = lens[..p].to_vec();
        let out = Universe::run(p, |c| {
            let mine: Vec<u64> = (0..lens[c.rank()] as u64)
                .map(|i| c.rank() as u64 * 1000 + i)
                .collect();
            c.gatherv(root, &mine).unwrap()
        });
        let expect: Vec<u64> = (0..p)
            .flat_map(|r| (0..lens[r] as u64).map(move |i| r as u64 * 1000 + i))
            .collect();
        prop_assert_eq!(out[root].clone(), Some(expect));
        for (r, v) in out.iter().enumerate() {
            if r != root {
                prop_assert_eq!(v.clone(), None);
            }
        }
    }

    #[test]
    fn scatter_then_gather_roundtrips(
        p in 1usize..7,
        chunk_len in 1usize..6,
    ) {
        let out = Universe::run(p, |c| {
            let chunks = c.is_root().then(|| {
                (0..p).map(|r| (0..chunk_len).map(|i| (r * 10 + i) as i64).collect()).collect()
            });
            let mine = c.scatter(0, chunks).unwrap();
            c.gatherv(0, &mine).unwrap()
        });
        let expect: Vec<i64> = (0..p)
            .flat_map(|r| (0..chunk_len).map(move |i| (r * 10 + i) as i64))
            .collect();
        prop_assert_eq!(out[0].clone(), Some(expect));
    }

    #[test]
    fn alltoall_is_a_transpose(p in 1usize..7) {
        let out = Universe::run(p, |c| {
            let chunks: Vec<Vec<(usize, usize)>> =
                (0..p).map(|dest| vec![(c.rank(), dest)]).collect();
            c.alltoall(chunks).unwrap()
        });
        for (me, rows) in out.into_iter().enumerate() {
            for (src, row) in rows.into_iter().enumerate() {
                prop_assert_eq!(row, vec![(src, me)]);
            }
        }
    }

    #[test]
    fn scan_matches_serial_prefixes(
        p in 1usize..8,
        vals in vec(-1000i64..1000, 8),
    ) {
        let vals = vals[..p].to_vec();
        let out = Universe::run(p, |c| c.scan(vals[c.rank()], sum).unwrap());
        let mut acc = 0i64;
        for (r, v) in out.into_iter().enumerate() {
            acc += vals[r];
            prop_assert_eq!(v, acc);
        }
    }

    #[test]
    fn bcast_delivers_arbitrary_payloads(
        p in 1usize..8,
        payload in vec(any::<u32>(), 0..20),
        root_sel in 0usize..8,
    ) {
        let root = root_sel % p;
        let out = Universe::run(p, |c| {
            let v = if c.rank() == root { payload.clone() } else { vec![] };
            c.bcast(root, v).unwrap()
        });
        for v in out {
            prop_assert_eq!(v, payload.clone());
        }
    }
}
