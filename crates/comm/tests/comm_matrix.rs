//! Property: the rank×rank communication matrix is *exact* — its
//! sender-side rows reconcile, message for message and byte for byte,
//! with the per-rank `SendsPosted`/`BytesSent` counters, and (once all
//! traffic drains) its columns with the receivers'
//! `RecvsCompleted`/`BytesReceived`. The matrix is built from the same
//! always-on accounting the counters use, so any drift between the two
//! is a bookkeeping bug, not noise.

use probe::Counter;
use proptest::collection::vec;
use proptest::prelude::*;
use rcomm::Universe;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 1–8 ranks, each sending a random number of f64 messages to its
    /// ring neighbours (right, and optionally two to the right), then
    /// draining every matching receive before snapshotting its report.
    #[test]
    fn matrix_rows_and_columns_match_the_counters(
        p in 1usize..9,
        counts in vec(0usize..5, 8),
        skip in vec(0usize..3, 8),
    ) {
        let counts = counts[..p].to_vec();
        let skip = skip[..p].to_vec();
        let reports = Universe::run(p, {
            let counts = counts.clone();
            let skip = skip.clone();
            move |comm| {
                let me = comm.rank();
                let right = (me + 1) % p;
                let right2 = (me + 2) % p;
                for i in 0..counts[me] {
                    comm.send(right, 10, i as f64).unwrap();
                }
                for _ in 0..skip[me] {
                    comm.send(right2, 20, 1.0f64).unwrap();
                }
                let left = (me + p - 1) % p;
                let left2 = (me + 2 * p - 2) % p;
                for _ in 0..counts[left] {
                    let _: f64 = comm.recv(left, 10).unwrap();
                }
                for _ in 0..skip[left2] {
                    let _: f64 = comm.recv(left2, 20).unwrap();
                }
                comm.barrier().unwrap();
                probe::local_report()
            }
        });

        let matrix = probe::comm_matrix(&reports);
        prop_assert_eq!(&matrix.ranks, &(0..p).collect::<Vec<_>>());

        for rep in &reports {
            let me = rep.rank.unwrap();
            let row = matrix.ranks.iter().position(|&r| r == me).unwrap();

            // Row totals (this rank as sender) == its send counters.
            let row_msgs: u64 = matrix.msgs[row].iter().sum();
            let row_bytes: u64 = matrix.bytes[row].iter().sum();
            prop_assert_eq!(row_msgs, rep.counter(Counter::SendsPosted));
            prop_assert_eq!(row_bytes, rep.counter(Counter::BytesSent));

            // The per-peer receive map == its receive counters.
            let recv_msgs: u64 = rep.peer_recvs.values().map(|s| s.msgs).sum();
            let recv_bytes: u64 = rep.peer_recvs.values().map(|s| s.bytes).sum();
            prop_assert_eq!(recv_msgs, rep.counter(Counter::RecvsCompleted));
            prop_assert_eq!(recv_bytes, rep.counter(Counter::BytesReceived));

            // Every send was drained, so this rank's *column* (everyone
            // else's sends to it) equals its receive counters too.
            let col_msgs: u64 = matrix.msgs.iter().map(|r| r[row]).sum();
            let col_bytes: u64 = matrix.bytes.iter().map(|r| r[row]).sum();
            prop_assert_eq!(col_msgs, rep.counter(Counter::RecvsCompleted));
            prop_assert_eq!(col_bytes, rep.counter(Counter::BytesReceived));

            // And the exact payload arithmetic: f64 messages are 8 bytes.
            prop_assert_eq!(row_msgs, (counts[me] + skip[me]) as u64);
            prop_assert_eq!(row_bytes, 8 * row_msgs);
        }
    }
}
