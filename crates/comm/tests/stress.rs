//! Stress and composition tests for the message-passing runtime: nested
//! communicator hierarchies, mixed user/collective traffic, and the
//! SPMD patterns the solver stack leans on.

use rcomm::{sum, CommError, Universe, ANY_SOURCE, ANY_TAG};

/// Every test calls this first so whichever test runs first caches a
/// short deadlock timeout for the whole process (the runtime reads the
/// env var once).
fn short_deadlock() {
    std::env::set_var("RCOMM_DEADLOCK_TIMEOUT_SECS", "5");
}

#[test]
fn nested_splits_form_a_consistent_hierarchy() {
    short_deadlock();
    // World of 8 → rows of 4 → pairs of 2, like a 2-D process grid.
    let out = Universe::run(8, |c| {
        let row = c.split((c.rank() / 4) as u64, c.rank() as i64).unwrap();
        let pair = row.split((row.rank() / 2) as u64, row.rank() as i64).unwrap();
        let world_sum = c.allreduce(c.rank(), |a, b| a + b).unwrap();
        let row_sum = row.allreduce(c.rank(), |a, b| a + b).unwrap();
        let pair_sum = pair.allreduce(c.rank(), |a, b| a + b).unwrap();
        (world_sum, row_sum, pair_sum, row.size(), pair.size())
    });
    for (r, (ws, rs, ps, rsize, psize)) in out.into_iter().enumerate() {
        assert_eq!(ws, 28);
        assert_eq!(rsize, 4);
        assert_eq!(psize, 2);
        let row_base = (r / 4) * 4;
        assert_eq!(rs, row_base * 4 + 6, "rank {r}");
        let pair_base = (r / 2) * 2;
        assert_eq!(ps, pair_base * 2 + 1, "rank {r}");
    }
}

#[test]
fn user_traffic_and_collectives_interleave_safely() {
    short_deadlock();
    // Point-to-point messages posted *before* a collective must still be
    // matchable *after* it — contexts keep the streams separate.
    let out = Universe::run(4, |c| {
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        c.send(next, 42, c.rank()).unwrap();
        // A pile of collectives in between.
        let s = c.allreduce(1usize, |a, b| a + b).unwrap();
        c.barrier().unwrap();
        let g = c.allgather(c.rank()).unwrap();
        // Now receive the old message.
        let got: usize = c.recv(prev, 42).unwrap();
        (s, g.len(), got)
    });
    for (r, (s, glen, got)) in out.into_iter().enumerate() {
        assert_eq!(s, 4);
        assert_eq!(glen, 4);
        assert_eq!(got, (r + 3) % 4);
    }
}

#[test]
fn many_small_collectives_do_not_cross_talk() {
    short_deadlock();
    // Back-to-back allreduces with distinct values must deliver in order.
    let out = Universe::run(5, |c| {
        let mut sums = Vec::new();
        for round in 0..50usize {
            sums.push(c.allreduce(round * (c.rank() + 1), |a, b| a + b).unwrap());
        }
        sums
    });
    // Σ_r round·(r+1) = round·15 for 5 ranks.
    for v in out {
        for (round, s) in v.into_iter().enumerate() {
            assert_eq!(s, round * 15);
        }
    }
}

#[test]
fn wildcard_receives_drain_mixed_senders() {
    short_deadlock();
    let out = Universe::run(6, |c| {
        if c.rank() == 0 {
            let mut total = 0usize;
            let mut from = vec![0usize; c.size()];
            for _ in 0..(c.size() - 1) * 10 {
                let (v, st) = c.recv_any::<usize>(ANY_SOURCE, ANY_TAG).unwrap();
                total += v;
                from[st.source] += 1;
            }
            assert!(from[1..].iter().all(|&n| n == 10));
            total
        } else {
            for i in 0..10usize {
                c.send(0, i as i32, c.rank() * 100 + i).unwrap();
            }
            0
        }
    });
    let expect: usize = (1..6).map(|r| (0..10).map(|i| r * 100 + i).sum::<usize>()).sum();
    assert_eq!(out[0], expect);
}

#[test]
fn scan_chains_compose_with_gather() {
    short_deadlock();
    // Prefix sums used to build a partition, then verified by a gather —
    // the exact pattern LisiState::build_partition uses.
    let out = Universe::run(4, |c| {
        let my_rows = (c.rank() + 1) * 3;
        let before = c.exscan(my_rows, sum).unwrap().unwrap_or(0);
        let all: Vec<(usize, usize)> = c.allgather((before, my_rows)).unwrap();
        all
    });
    for v in out {
        assert_eq!(v, vec![(0, 3), (3, 6), (9, 9), (18, 12)]);
    }
}

#[test]
fn deadlock_detection_fires_instead_of_hanging() {
    short_deadlock();
    // A receive with no matching send must error out, not hang.
    let out = Universe::run(2, |c| {
        if c.rank() == 0 {
            matches!(
                c.recv::<u8>(1, 999),
                Err(CommError::DeadlockSuspected { .. })
            )
        } else {
            true
        }
    });
    assert_eq!(out, vec![true, true]);
}

#[test]
fn large_payloads_survive_the_tree_algorithms() {
    short_deadlock();
    let out = Universe::run(5, |c| {
        let big: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        let payload = if c.rank() == 2 { big.clone() } else { vec![] };
        let got = c.bcast(2, payload).unwrap();
        let sum = c.allreduce_vec(&got[..100], rcomm::sum).unwrap();
        (got.len(), sum[7])
    });
    for (len, s7) in out {
        assert_eq!(len, 20_000);
        assert_eq!(s7, 35.0); // 7 × 5 ranks
    }
}
