//! Elastic-cohort behaviour: `kind=kill` fault rules, rank-consistent
//! `RankLost` verdicts, and `Communicator::shrink`.
//!
//! These tests arm the process-global fault plan and mutate the
//! process-global cohort registry, so they live in their own binary and
//! serialise against each other through `LOCK`.

use std::sync::Mutex;

use rcomm::{CommError, Universe};

/// Serialises tests that kill ranks or arm the global fault plan.
static LOCK: Mutex<()> = Mutex::new(());

#[test]
fn killed_rank_yields_rank_consistent_verdict_in_collectives() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = rcomm::FaultPlan::parse("op=allreduce,rank=1,call=1,kind=kill").unwrap();
    rcomm::fault::arm(plan);
    let out = Universe::run(3, |c| c.allreduce(1u64, |a, b| a + b));
    rcomm::fault::disarm();
    // Every rank — the victim and both survivors — reaches the *same*
    // verdict naming the same world rank, instead of a deadlock timeout.
    for (rank, r) in out.iter().enumerate() {
        assert_eq!(r, &Err(CommError::RankLost(1)), "rank {rank} saw {r:?}");
    }
}

#[test]
fn killed_rank_fails_point_to_point_on_both_sides() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = rcomm::FaultPlan::parse("op=send,rank=0,tag=7,kind=kill").unwrap();
    rcomm::fault::arm(plan);
    let out = Universe::run(2, |c| {
        if c.rank() == 0 {
            let first = c.send(1, 7, 1u8);
            // The rank is dead for good: every later call fails identically.
            let later = c.send(1, 0, 2u8);
            (first, later)
        } else {
            (c.recv::<u8>(0, 7).map(|_| ()), Ok(()))
        }
    });
    rcomm::fault::disarm();
    assert_eq!(out[0].0, Err(CommError::RankLost(0)));
    assert_eq!(out[0].1, Err(CommError::RankLost(0)));
    assert_eq!(out[1].0, Err(CommError::RankLost(0)), "survivor's blocked recv notices");
}

#[test]
fn cohort_view_names_the_lost_member() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = rcomm::FaultPlan::parse("op=barrier,rank=2,call=1,kind=kill").unwrap();
    rcomm::fault::arm(plan);
    let out = Universe::run(4, |c| {
        let r = c.barrier();
        let view = c.cohort_view();
        (r.is_err(), view.alive, view.lost)
    });
    rcomm::fault::disarm();
    for (rank, (errored, alive, lost)) in out.iter().enumerate() {
        assert!(errored, "rank {rank} should fail the barrier");
        assert_eq!(alive, &vec![0, 1, 3]);
        assert_eq!(lost, &vec![2]);
    }
}

#[test]
fn shrink_produces_dense_ranks_and_working_collectives() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = Universe::run(4, |c| {
        // Survivors of a (simulated) loss of rank 2 carry on; rank 2
        // itself is refused membership. No communication happens inside
        // shrink, so the dead rank not calling it cannot hang anyone.
        let survivors = [0usize, 1, 3];
        if c.rank() == 2 {
            return (usize::MAX, 0, c.shrink(&survivors).is_err() as u64);
        }
        let sub = c.shrink(&survivors).unwrap();
        let sum = sub.allreduce(c.rank() as u64, |a, b| a + b).unwrap();
        (sub.rank(), sub.size(), sum)
    });
    assert_eq!(out[0], (0, 3, 4), "world rank 0 -> shrunken rank 0");
    assert_eq!(out[1], (1, 3, 4));
    assert_eq!(out[3], (2, 3, 4), "world rank 3 renumbered densely to 2");
    assert_eq!(out[2], (usize::MAX, 0, 1), "excluded rank gets an error");
}

#[test]
fn shrink_validates_survivor_list() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = Universe::run(2, |c| {
        if c.rank() == 0 {
            (
                c.shrink(&[]).is_err(),
                c.shrink(&[1, 0]).is_err(),     // unsorted
                c.shrink(&[0, 0]).is_err(),     // duplicate
                c.shrink(&[0, 5]).is_err(),     // out of range
            )
        } else {
            (true, true, true, true)
        }
    });
    assert_eq!(out[0], (true, true, true, true));
}

#[test]
fn shrink_traffic_is_isolated_from_parent() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = Universe::run(3, |c| {
        if c.rank() == 2 {
            return String::new();
        }
        let sub = c.shrink(&[0, 1]).unwrap();
        if c.rank() == 0 {
            // Same (dest, tag) on parent and shrunken child; the derived
            // context must keep them apart.
            c.send(1, 0, "parent").unwrap();
            sub.send(1, 0, "child").unwrap();
            String::new()
        } else {
            let on_child: &str = sub.recv(0, 0).unwrap();
            let on_parent: &str = c.recv(0, 0).unwrap();
            format!("{on_parent}/{on_child}")
        }
    });
    assert_eq!(out[1], "parent/child");
}

#[test]
fn stale_heartbeat_unblocks_a_waiting_peer() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rcomm::cohort::set_heartbeat_timeout_ms(100);
    let out = Universe::run(2, |c| {
        if c.rank() == 0 {
            // Heartbeat once (a self-send stamps it), then go silent
            // without dying cleanly.
            c.send(0, 1, 0u8).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(400));
            Ok(())
        } else {
            // Give rank 0 time to stamp its one heartbeat, then block on
            // a message that never comes: the staleness detector must
            // fail this recv long before the deadlock watchdog would.
            std::thread::sleep(std::time::Duration::from_millis(50));
            c.recv::<u8>(0, 9).map(|_| ())
        }
    });
    rcomm::cohort::set_heartbeat_timeout_ms(u64::MAX);
    assert_eq!(out[1], Err(CommError::RankLost(0)));
}
