//! Wall-clock timing helper, the `MPI_Wtime` of this runtime.

use std::time::{Duration, Instant};

/// A resettable stopwatch with accumulating segments. The probe crate's
/// `SectionTimer` supersedes it for phase timing (one construct feeds both
/// the caller and the probe report); `Stopwatch` remains for callers that
/// need pause/resume accumulation.
#[derive(Debug, Clone, Default)]
pub struct Stopwatch {
    started: Option<Instant>,
    accumulated: Duration,
}

impl Stopwatch {
    /// A stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// A stopwatch that is already running.
    pub fn started() -> Self {
        Stopwatch { started: Some(Instant::now()), accumulated: Duration::ZERO }
    }

    /// Begin (or resume) timing. Idempotent while running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stop timing and fold the segment into the accumulated total.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Total accumulated time, including the live segment if running.
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Total accumulated time in seconds, the unit the paper reports.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Reset to zero, stopped.
    pub fn reset(&mut self) {
        self.started = None;
        self.accumulated = Duration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_segments() {
        let mut sw = Stopwatch::new();
        assert_eq!(sw.elapsed(), Duration::ZERO);
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(4));
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        assert!(sw.elapsed() > first);
    }

    #[test]
    fn start_is_idempotent_and_reset_zeroes() {
        let mut sw = Stopwatch::started();
        sw.start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.seconds() > 0.0);
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn elapsed_ticks_while_running() {
        let sw = Stopwatch::started();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }
}
