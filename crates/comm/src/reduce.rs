//! Ready-made reduction combiners, mirroring the MPI predefined operations
//! (`MPI_SUM`, `MPI_PROD`, `MPI_MIN`, `MPI_MAX`, `MPI_MINLOC`, `MPI_MAXLOC`,
//! `MPI_LAND`, `MPI_LOR`).
//!
//! These are plain functions usable wherever a collective takes an
//! `Fn(&T, &T) -> T` combiner:
//!
//! ```
//! use rcomm::{sum, Universe};
//! let out = Universe::run(3, |c| c.allreduce(c.rank() as f64, sum).unwrap());
//! assert_eq!(out, vec![3.0, 3.0, 3.0]);
//! ```

use std::ops::{Add, Mul};

/// Addition (`MPI_SUM`).
pub fn sum<T: Add<Output = T> + Clone>(a: &T, b: &T) -> T {
    a.clone() + b.clone()
}

/// Multiplication (`MPI_PROD`).
pub fn prod<T: Mul<Output = T> + Clone>(a: &T, b: &T) -> T {
    a.clone() * b.clone()
}

/// Minimum (`MPI_MIN`). Uses `PartialOrd`; with NaN the other operand wins,
/// matching the IEEE `minNum` convention solvers expect.
pub fn min<T: PartialOrd + Clone>(a: &T, b: &T) -> T {
    if b < a {
        b.clone()
    } else {
        a.clone()
    }
}

/// Maximum (`MPI_MAX`).
pub fn max<T: PartialOrd + Clone>(a: &T, b: &T) -> T {
    if b > a {
        b.clone()
    } else {
        a.clone()
    }
}

/// Minimum with location (`MPI_MINLOC`): pairs `(value, index)`; ties keep
/// the lower index, which the rank-ordered reduction guarantees appears on
/// the left.
pub fn minloc<T: PartialOrd + Clone, I: Clone>(a: &(T, I), b: &(T, I)) -> (T, I) {
    if b.0 < a.0 {
        b.clone()
    } else {
        a.clone()
    }
}

/// Maximum with location (`MPI_MAXLOC`); ties keep the lower index.
pub fn maxloc<T: PartialOrd + Clone, I: Clone>(a: &(T, I), b: &(T, I)) -> (T, I) {
    if b.0 > a.0 {
        b.clone()
    } else {
        a.clone()
    }
}

/// Logical and (`MPI_LAND`).
pub fn land(a: &bool, b: &bool) -> bool {
    *a && *b
}

/// Logical or (`MPI_LOR`).
pub fn lor(a: &bool, b: &bool) -> bool {
    *a || *b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn scalar_ops() {
        assert_eq!(sum(&2, &3), 5);
        assert_eq!(prod(&2.0, &3.0), 6.0);
        assert_eq!(min(&2, &3), 2);
        assert_eq!(max(&2, &3), 3);
        assert!(land(&true, &true));
        assert!(!land(&true, &false));
        assert!(lor(&false, &true));
        assert!(!lor(&false, &false));
    }

    #[test]
    fn loc_ops_break_ties_toward_lower_index() {
        assert_eq!(minloc(&(1.0, 0usize), &(1.0, 3usize)), (1.0, 0));
        assert_eq!(maxloc(&(5.0, 1usize), &(5.0, 2usize)), (5.0, 1));
        assert_eq!(minloc(&(2.0, 0usize), &(1.0, 3usize)), (1.0, 3));
        assert_eq!(maxloc(&(2.0, 0usize), &(7.0, 3usize)), (7.0, 3));
    }

    #[test]
    fn ops_work_inside_collectives() {
        let out = Universe::run(4, |c| {
            let mx = c.allreduce((c.rank() as f64, c.rank()), maxloc).unwrap();
            let mn = c.allreduce(c.rank() as i64 + 1, min).unwrap();
            let all = c.allreduce(c.rank() != 9, land).unwrap();
            (mx, mn, all)
        });
        for v in out {
            assert_eq!(v, ((3.0, 3), 1, true));
        }
    }
}
