//! The [`Communicator`]: point-to-point messaging with MPI matching rules.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::envelope::{child_context, Context, Envelope, COLLECTIVE_BIT};
use crate::error::{CommError, CommResult};
use crate::fault::{self, FaultAction, FaultOp};
use crate::stats::{CommStats, StatsCell};
use crate::Tag;

/// Wildcard source for [`Communicator::recv_any`]-style matching.
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag.
pub const ANY_TAG: Tag = -1;

/// How long a blocking receive may wait before the runtime declares a
/// suspected deadlock. Mismatched SPMD code fails fast instead of hanging
/// the test suite. Override with `RCOMM_DEADLOCK_TIMEOUT_SECS`.
fn deadlock_timeout() -> Duration {
    static SECS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let secs = *SECS.get_or_init(|| {
        std::env::var("RCOMM_DEADLOCK_TIMEOUT_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(30)
    });
    Duration::from_secs(secs)
}

/// Completion information for a receive, mirroring `MPI_Status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvStatus {
    /// World rank of the sender.
    pub source: usize,
    /// Tag the message was sent with.
    pub tag: Tag,
}

/// Shared wiring of the universe: one mailbox sender per world rank.
pub(crate) struct Wiring {
    pub senders: Vec<Sender<Envelope>>,
}

/// Per-thread inbox. All communicators held by one rank share it, so a
/// message for a *different* communicator that arrives while we are
/// receiving is stashed in `pending` and found later by its own
/// communicator — the classic "unexpected message queue".
pub(crate) struct PostOffice {
    pub receiver: Receiver<Envelope>,
    pub pending: VecDeque<Envelope>,
}

/// A communication context shared by a group of ranks.
///
/// `Communicator` is `Send` (it can be moved into the rank's thread) but
/// deliberately not `Clone`: like an `MPI_Comm`, each rank holds exactly one
/// handle per communicator. New communicators come from [`Communicator::dup`]
/// and [`Communicator::split`].
pub struct Communicator {
    /// Rank within this communicator.
    rank: usize,
    /// Ranks in this communicator, as world ranks (index = local rank).
    members: Arc<Vec<usize>>,
    /// This communicator's user context.
    context: Context,
    /// Monotone salt so successive `split`/`dup` calls derive fresh
    /// contexts; advanced identically on every member.
    split_salt: AtomicU64,
    /// Per-communicator traffic accounting (see [`CommStats`]).
    stats: StatsCell,
    wiring: Arc<Wiring>,
    post: Arc<Mutex<PostOffice>>,
}

impl Communicator {
    pub(crate) fn new(
        rank: usize,
        members: Arc<Vec<usize>>,
        context: Context,
        wiring: Arc<Wiring>,
        post: Arc<Mutex<PostOffice>>,
    ) -> Self {
        Communicator {
            rank,
            members,
            context,
            split_salt: AtomicU64::new(1),
            stats: StatsCell::default(),
            wiring,
            post,
        }
    }

    /// Number of `allreduce`/`allreduce_vec` calls made on this
    /// communicator. A fused allreduce counts once regardless of how many
    /// scalars it carries, so tests can assert on a solver's per-iteration
    /// reduction count.
    pub fn allreduce_count(&self) -> u64 {
        self.stats.allreduce_count()
    }

    /// Snapshot this communicator's full traffic accounting: every
    /// collective flavour plus point-to-point calls and bytes. Counts are
    /// per communicator — `dup`/`split` children start from zero.
    pub fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    /// This process's rank in `0..self.size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// True on rank 0, the conventional root.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// World rank of local rank `r`.
    fn world_rank(&self, r: usize) -> CommResult<usize> {
        self.members
            .get(r)
            .copied()
            .ok_or(CommError::RankOutOfRange { rank: r, size: self.size() })
    }

    fn check_tag(tag: Tag) -> CommResult<()> {
        if tag < 0 {
            return Err(CommError::InvalidTag(tag));
        }
        Ok(())
    }

    /// This rank's world rank — the rank space fault plans address.
    #[inline]
    fn my_world_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// World rank of each member, indexed by local rank. World ranks are
    /// the space the cohort registry and fault plans address.
    pub fn world_members(&self) -> &[usize] {
        &self.members
    }

    /// Cohort gate on every communication call: stamp this rank's
    /// heartbeat and refuse to operate once the rank has been marked
    /// dead — a killed rank fails every call with the same
    /// [`CommError::RankLost`] verdict forever after.
    #[inline]
    fn cohort_gate(&self) -> CommResult<()> {
        let me = self.my_world_rank();
        crate::cohort::heartbeat(me);
        if crate::cohort::is_lost(me) {
            return Err(CommError::RankLost(me));
        }
        Ok(())
    }

    /// Snapshot this communicator's cohort health: which members are
    /// alive and which are lost (killed or heartbeat-stale). The `alive`
    /// list is exactly the survivor set [`Communicator::shrink`] expects.
    pub fn cohort_view(&self) -> crate::cohort::CohortView {
        crate::cohort::CohortView::capture(&self.members)
    }

    /// Byte/message accounting plus a flight-recorder event for one
    /// posted p2p send. The matrix row must reconcile exactly against
    /// `SendsPosted`/`BytesSent`, so every path that bumps those stats —
    /// including the fault-injected `Drop` early return — goes through
    /// here. An out-of-range `dest` (caller bug surfaced elsewhere) is
    /// attributed to the self-loop cell to keep the totals exact.
    fn note_send(&self, dest: usize, tag: Tag, bytes: u64) {
        self.stats.send(bytes);
        let peer = self.world_rank(dest).unwrap_or_else(|_| self.my_world_rank());
        probe::peer_send(peer, bytes);
        probe::flight::record(probe::flight::FlightKind::Comm {
            op: "send",
            peer: peer as i64,
            bytes,
            tag: tag as i64,
        });
    }

    /// Accounting + flight event for one completed p2p receive; `src` is
    /// the sender's local rank from the matched envelope.
    fn note_recv(&self, src: usize, tag: Tag, bytes: u64) {
        self.stats.recv(bytes);
        let peer = self.world_rank(src).unwrap_or_else(|_| self.my_world_rank());
        probe::peer_recv(peer, bytes);
        probe::flight::record(probe::flight::FlightKind::Comm {
            op: "recv",
            peer: peer as i64,
            bytes,
            tag: tag as i64,
        });
    }

    /// Flight-recorder event for a collective (no peer, no tag).
    #[inline]
    fn note_collective(&self, op: &'static str) {
        probe::flight::record(probe::flight::FlightKind::Comm { op, peer: -1, bytes: 0, tag: -1 });
    }

    /// Fault gate for receive paths. Error/delay are handled here; a
    /// `Corrupt` action is returned so the caller can poison the payload
    /// *after* it arrives.
    fn recv_fault(&self, tag: Option<Tag>) -> CommResult<Option<FaultAction>> {
        self.cohort_gate()?;
        if !fault::armed() {
            return Ok(None);
        }
        match fault::check(FaultOp::Recv, self.my_world_rank(), tag) {
            Some(FaultAction::Error { call }) => {
                Err(CommError::Injected { op: "recv", rank: self.my_world_rank(), call })
            }
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(None)
            }
            Some(FaultAction::Kill) => {
                crate::cohort::mark_dead(self.my_world_rank());
                Err(CommError::RankLost(self.my_world_rank()))
            }
            other => Ok(other),
        }
    }

    /// Fault gate for collective wrappers. Error/delay are handled here;
    /// a `Corrupt` action is returned so value-carrying collectives can
    /// poison this rank's local contribution before reducing.
    fn collective_fault(
        &self,
        op: FaultOp,
        name: &'static str,
    ) -> CommResult<Option<FaultAction>> {
        self.cohort_gate()?;
        if !fault::armed() {
            return Ok(None);
        }
        match fault::check(op, self.my_world_rank(), None) {
            Some(FaultAction::Error { call }) => {
                Err(CommError::Injected { op: name, rank: self.my_world_rank(), call })
            }
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(None)
            }
            Some(FaultAction::Kill) => {
                crate::cohort::mark_dead(self.my_world_rank());
                Err(CommError::RankLost(self.my_world_rank()))
            }
            other => Ok(other),
        }
    }

    /// Send `value` to local rank `dest` with `tag`.
    ///
    /// Sends are *eager*: the payload is moved into the destination mailbox
    /// and the call returns immediately (like a buffered MPI send). Sending
    /// to self is allowed and is matched by a later receive.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: Tag, value: T) -> CommResult<()> {
        Self::check_tag(tag)?;
        self.cohort_gate()?;
        let mut value = value;
        if fault::armed() {
            match fault::check(FaultOp::Send, self.my_world_rank(), Some(tag)) {
                Some(FaultAction::Error { call }) => {
                    return Err(CommError::Injected {
                        op: "send",
                        rank: self.my_world_rank(),
                        call,
                    });
                }
                Some(FaultAction::Drop) => {
                    // Silently discard: the receiver never sees the message.
                    self.note_send(dest, tag, std::mem::size_of::<T>() as u64);
                    return Ok(());
                }
                Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                Some(FaultAction::Corrupt { seed, call }) => {
                    let _ = fault::corrupt_payload(&mut value, seed, call);
                }
                Some(FaultAction::Truncate) => {
                    let _ = fault::truncate_payload(&mut value);
                }
                Some(FaultAction::Kill) => {
                    crate::cohort::mark_dead(self.my_world_rank());
                    return Err(CommError::RankLost(self.my_world_rank()));
                }
                None => {}
            }
        }
        // Stamp user p2p traffic with the active trace context (one
        // relaxed load when tracing is disarmed), recording the Send
        // event as a side effect.
        let stamp = if probe::trace::thread_active() {
            probe::trace::stamp_send(self.world_rank(dest)?, std::mem::size_of::<T>() as u64)
        } else {
            None
        };
        self.send_env(dest, tag, self.context, value, stamp)?;
        self.note_send(dest, tag, std::mem::size_of::<T>() as u64);
        Ok(())
    }

    pub(crate) fn send_ctx<T: Send + 'static>(
        &self,
        dest: usize,
        tag: Tag,
        context: Context,
        value: T,
    ) -> CommResult<()> {
        // Internal collective traffic travels unstamped: collectives are
        // matched across ranks by their per-trace index instead.
        self.send_env(dest, tag, context, value, None)
    }

    fn send_env<T: Send + 'static>(
        &self,
        dest: usize,
        tag: Tag,
        context: Context,
        value: T,
        stamp: Option<probe::trace::Stamp>,
    ) -> CommResult<()> {
        let world_dest = self.world_rank(dest)?;
        // Fail fast instead of filling a dead rank's mailbox; one relaxed
        // load while the cohort is intact.
        if crate::cohort::is_lost(world_dest) {
            return Err(CommError::RankLost(world_dest));
        }
        let env = Envelope {
            src: self.rank,
            tag,
            context,
            stamp,
            payload: Box::new(value),
        };
        self.wiring.senders[world_dest]
            .send(env)
            .map_err(|_| CommError::PeerGone(dest))
    }

    /// Receive a `T` from local rank `src` with tag `tag` on this
    /// communicator, blocking until a matching message arrives.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: Tag) -> CommResult<T> {
        Self::check_tag(tag)?;
        let act = self.recv_fault(Some(tag))?;
        let posted = probe::trace::recv_start();
        let (mut v, _, stamp) =
            self.recv_match_stamped::<T>(Some(src), Some(tag), self.context)?;
        if let Some(t0) = posted {
            let peer = self.world_rank(src).unwrap_or_else(|_| self.my_world_rank());
            probe::trace::recv_event(peer, stamp, std::mem::size_of::<T>() as u64, t0);
        }
        if let Some(FaultAction::Corrupt { seed, call }) = act {
            let _ = fault::corrupt_payload(&mut v, seed, call);
        }
        self.note_recv(src, tag, std::mem::size_of::<T>() as u64);
        Ok(v)
    }

    /// Receive from any source and/or any tag. Pass [`ANY_SOURCE`] /
    /// [`ANY_TAG`] (negative sentinels) for wildcards. Returns the payload
    /// together with a [`RecvStatus`] identifying the actual sender/tag.
    pub fn recv_any<T: Send + 'static>(
        &self,
        src: i32,
        tag: Tag,
    ) -> CommResult<(T, RecvStatus)> {
        let src = if src == ANY_SOURCE { None } else { Some(src as usize) };
        let tag = if tag == ANY_TAG { None } else { Some(tag) };
        let act = self.recv_fault(tag)?;
        let posted = probe::trace::recv_start();
        let (mut v, status, stamp) = self.recv_match_stamped::<T>(src, tag, self.context)?;
        if let Some(t0) = posted {
            let peer =
                self.world_rank(status.source).unwrap_or_else(|_| self.my_world_rank());
            probe::trace::recv_event(peer, stamp, std::mem::size_of::<T>() as u64, t0);
        }
        if let Some(FaultAction::Corrupt { seed, call }) = act {
            let _ = fault::corrupt_payload(&mut v, seed, call);
        }
        self.note_recv(status.source, status.tag, std::mem::size_of::<T>() as u64);
        Ok((v, status))
    }

    /// Non-blocking probe: is a matching message already available?
    pub fn iprobe(&self, src: i32, tag: Tag) -> CommResult<Option<RecvStatus>> {
        let srco = if src == ANY_SOURCE { None } else { Some(src as usize) };
        let tago = if tag == ANY_TAG { None } else { Some(tag) };
        if let Some(s) = srco {
            // Validate rank; probing a bogus source is a caller bug.
            self.world_rank(s)?;
        }
        let mut post = self.post.lock();
        // Drain everything already delivered into the pending queue so the
        // scan below sees it.
        while let Ok(env) = post.receiver.try_recv() {
            post.pending.push_back(env);
        }
        Ok(post
            .pending
            .iter()
            .find(|e| e.matches(srco, tago, self.context))
            .map(|e| RecvStatus { source: e.src, tag: e.tag }))
    }

    /// Combined send+receive, deadlock-free regardless of ordering — the
    /// workhorse of halo exchanges.
    pub fn sendrecv<T: Send + 'static, U: Send + 'static>(
        &self,
        dest: usize,
        send_tag: Tag,
        value: T,
        src: usize,
        recv_tag: Tag,
    ) -> CommResult<U> {
        self.send(dest, send_tag, value)?;
        self.recv(src, recv_tag)
    }

    /// Core matching receive. Scans the pending queue first, then pulls
    /// from the mailbox, stashing non-matching arrivals back into pending.
    pub(crate) fn recv_match<T: Send + 'static>(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
        context: Context,
    ) -> CommResult<(T, RecvStatus)> {
        self.recv_match_stamped(src, tag, context).map(|(v, s, _)| (v, s))
    }

    /// [`Self::recv_match`] variant that also surfaces the envelope's
    /// causal trace stamp (the user-facing receives feed it to
    /// `probe::trace::recv_event`).
    fn recv_match_stamped<T: Send + 'static>(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
        context: Context,
    ) -> CommResult<(T, RecvStatus, Option<probe::trace::Stamp>)> {
        if let Some(s) = src {
            self.world_rank(s)?;
        }
        let mut post = self.post.lock();
        // 1. Previously stashed messages, in arrival order (MPI's
        //    non-overtaking rule between a given pair).
        if let Some(pos) = post.pending.iter().position(|e| e.matches(src, tag, context)) {
            let env = post.pending.remove(pos).expect("position just found");
            return Self::unpack(env);
        }
        // 2. Block on the mailbox — in short slices, so a blocked rank
        //    notices a cohort member dying (kill fault, stale heartbeat)
        //    within ~10 ms and fails with the rank-consistent RankLost
        //    verdict instead of waiting out the whole deadlock timeout.
        //    Slicing costs nothing on the happy path: recv_timeout
        //    returns as soon as a message arrives, and the per-slice
        //    cohort check is one relaxed atomic load while nobody died.
        const SLICE: Duration = Duration::from_millis(10);
        let deadline = std::time::Instant::now() + deadlock_timeout();
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match post.receiver.recv_timeout(remaining.min(SLICE)) {
                Ok(env) => {
                    if env.matches(src, tag, context) {
                        return Self::unpack(env);
                    }
                    post.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(world) = crate::cohort::lost_member(&self.members) {
                        return Err(CommError::RankLost(world));
                    }
                    if remaining <= SLICE {
                        return Err(CommError::DeadlockSuspected { rank: self.rank, src, tag });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerGone(usize::MAX));
                }
            }
        }
    }

    fn unpack<T: Send + 'static>(
        env: Envelope,
    ) -> CommResult<(T, RecvStatus, Option<probe::trace::Stamp>)> {
        let status = RecvStatus { source: env.src, tag: env.tag };
        let stamp = env.stamp;
        let boxed: Box<dyn Any + Send> = env.payload;
        match boxed.downcast::<T>() {
            Ok(v) => Ok((*v, status, stamp)),
            Err(_) => Err(CommError::TypeMismatch { expected: std::any::type_name::<T>() }),
        }
    }

    /// The context used for internal collective traffic.
    #[inline]
    pub(crate) fn collective_context(&self) -> Context {
        self.context | COLLECTIVE_BIT
    }

    /// Duplicate this communicator: same group, fresh context, so traffic
    /// on the duplicate can never match traffic on the original.
    ///
    /// Collective: every member must call it.
    pub fn dup(&self) -> CommResult<Communicator> {
        let salt = self.split_salt.fetch_add(1, Ordering::Relaxed);
        let ctx = child_context(self.context, salt, u64::MAX);
        Ok(Communicator::new(
            self.rank,
            Arc::clone(&self.members),
            ctx,
            Arc::clone(&self.wiring),
            Arc::clone(&self.post),
        ))
    }

    /// Split into sub-communicators by `color`; members with equal color end
    /// up in the same child, ordered by `key` (ties broken by parent rank).
    ///
    /// Collective: every member must call it with its own color/key. Unlike
    /// MPI there is no `MPI_UNDEFINED`; use a dedicated color for ranks that
    /// should idle, and simply don't use the resulting communicator there.
    pub fn split(&self, color: u64, key: i64) -> CommResult<Communicator> {
        // Gather (color, key) from everyone so all ranks agree on the
        // resulting groups. allgather runs on the collective context.
        let triples: Vec<(u64, i64, usize)> =
            crate::collectives::allgather(self, (color, key, self.rank))?;
        let mut mine: Vec<(u64, i64, usize)> =
            triples.into_iter().filter(|(c, _, _)| *c == color).collect();
        mine.sort_by_key(|&(_, k, r)| (k, r));
        let my_new_rank = mine
            .iter()
            .position(|&(_, _, r)| r == self.rank)
            .expect("own rank must appear in its color group");
        let members: Vec<usize> = mine
            .iter()
            .map(|&(_, _, r)| self.members[r])
            .collect();
        let salt = self.split_salt.fetch_add(1, Ordering::Relaxed);
        let ctx = child_context(self.context, salt, color);
        Ok(Communicator::new(
            my_new_rank,
            Arc::new(members),
            ctx,
            Arc::clone(&self.wiring),
            Arc::clone(&self.post),
        ))
    }

    /// Shrink this communicator to `survivors` (local ranks, ascending,
    /// must include the calling rank): the elastic-recovery primitive.
    /// The result has dense ranks `0..survivors.len()` in survivor order.
    ///
    /// Unlike [`Communicator::split`], shrink performs **no communication**
    /// — the lost rank cannot participate in an agreement protocol, and
    /// every survivor already holds the same rank-consistent verdict
    /// ([`CommError::RankLost`]) plus the same member list. The child
    /// context is derived by hashing the survivor *world*-rank list, so
    /// all survivors compute an identical context without exchanging a
    /// message, and it cannot collide with contexts minted by `dup`/`split`
    /// (those advance `split_salt`, which attempt-retry loops may have
    /// advanced differently on different ranks — exactly why it is *not*
    /// used here).
    pub fn shrink(&self, survivors: &[usize]) -> CommResult<Communicator> {
        if survivors.is_empty() || survivors.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CommError::BadCounts { expected: self.size(), got: survivors.len() });
        }
        if let Some(&bad) = survivors.iter().find(|&&r| r >= self.size()) {
            return Err(CommError::RankOutOfRange { rank: bad, size: self.size() });
        }
        let my_new_rank = survivors
            .iter()
            .position(|&r| r == self.rank)
            .ok_or(CommError::RankLost(self.my_world_rank()))?;
        let members: Vec<usize> = survivors.iter().map(|&r| self.members[r]).collect();
        // SplitMix64-style fold over the survivor world ranks: every
        // survivor derives the same salt from the same list, locally.
        let salt = members
            .iter()
            .fold(0x9e37_79b9_7f4a_7c15_u64, |acc, &w| {
                let mut z = acc ^ (w as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 30)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            });
        let ctx = child_context(self.context, salt, members.len() as u64);
        probe::incr(probe::Counter::CohortShrinks);
        Ok(Communicator::new(
            my_new_rank,
            Arc::new(members),
            ctx,
            Arc::clone(&self.wiring),
            Arc::clone(&self.post),
        ))
    }

    // -- Collectives: thin forwarding wrappers so call sites read like MPI. -

    /// Synchronize all ranks (dissemination barrier).
    pub fn barrier(&self) -> CommResult<()> {
        self.stats.barrier();
        self.note_collective("barrier");
        self.collective_fault(FaultOp::Barrier, "barrier")?;
        crate::collectives::barrier(self)
    }

    /// Broadcast `value` from `root` to every rank; returns the value on
    /// all ranks.
    pub fn bcast<T: Send + Clone + 'static>(&self, root: usize, value: T) -> CommResult<T> {
        self.stats.bcast();
        self.note_collective("bcast");
        let mut value = value;
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Bcast, "bcast")?
        {
            let _ = fault::corrupt_payload(&mut value, seed, call);
        }
        crate::collectives::bcast(self, root, value)
    }

    /// Reduce everyone's contribution onto `root` with the associative
    /// combiner `op`; non-root ranks receive `None`.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> CommResult<Option<T>>
    where
        T: Send + Clone + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.stats.reduce();
        self.note_collective("reduce");
        let mut value = value;
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Reduce, "reduce")?
        {
            let _ = fault::corrupt_payload(&mut value, seed, call);
        }
        crate::collectives::reduce(self, root, value, op)
    }

    /// Reduce and redistribute: every rank receives the combined value.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> CommResult<T>
    where
        T: Send + Clone + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.stats.allreduce();
        self.note_collective("allreduce");
        probe::add(probe::Counter::ReducedBytes, std::mem::size_of::<T>() as u64);
        // Reduction time is wait-attributed: under the probe it shows up
        // as the "allreduce" span (time blocked riding the reduction),
        // and the same interval feeds the collective latency histogram.
        let _lat = probe::hist::HistTimer::start(probe::hist::Hist::Collective);
        let _wait = probe::span!("allreduce");
        let mut value = value;
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Allreduce, "allreduce")?
        {
            // Poison this rank's *contribution*, not the reduced result:
            // the NaN then reaches every rank through the reduction, so
            // all ranks observe the same corrupted value and guard
            // verdicts stay rank-consistent.
            let _ = fault::corrupt_payload(&mut value, seed, call);
        }
        crate::collectives::allreduce(self, value, op)
    }

    /// Element-wise all-reduce over equal-length slices.
    pub fn allreduce_vec<T, F>(&self, values: &[T], op: F) -> CommResult<Vec<T>>
    where
        T: Send + Clone + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.stats.allreduce();
        self.note_collective("allreduce");
        probe::add(
            probe::Counter::ReducedBytes,
            std::mem::size_of_val(values) as u64,
        );
        let _lat = probe::hist::HistTimer::start(probe::hist::Hist::Collective);
        let _wait = probe::span!("allreduce");
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Allreduce, "allreduce")?
        {
            let mut poisoned = values.to_vec();
            let _ = fault::corrupt_slice(&mut poisoned, seed, call);
            return crate::collectives::allreduce_vec(self, &poisoned, op);
        }
        crate::collectives::allreduce_vec(self, values, op)
    }

    /// Batched element-wise all-reduce: the segments are concatenated,
    /// reduced in **one** collective, and split back — `k` columns'
    /// reductions for a single collective latency (the k-wide reduction
    /// of the batched Krylov drivers). Element `i` of segment `s`
    /// reduces over exactly the rank-ordered tree
    /// `allreduce_vec(segments[s])[i]` would use, so batching never
    /// changes a result bit.
    pub fn allreduce_batch<T, F>(&self, segments: &[&[T]], op: F) -> CommResult<Vec<Vec<T>>>
    where
        T: Send + Clone + 'static,
        F: Fn(&T, &T) -> T,
    {
        let flat: Vec<T> = segments.iter().flat_map(|s| s.iter().cloned()).collect();
        let reduced = self.allreduce_vec(&flat, op)?;
        let mut out = Vec::with_capacity(segments.len());
        let mut off = 0;
        for s in segments {
            out.push(reduced[off..off + s.len()].to_vec());
            off += s.len();
        }
        Ok(out)
    }

    /// Gather one value per rank onto `root` (rank order); `None` elsewhere.
    pub fn gather<T: Send + Clone + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> CommResult<Option<Vec<T>>> {
        self.stats.gather();
        self.note_collective("gather");
        let mut value = value;
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Gather, "gather")?
        {
            let _ = fault::corrupt_payload(&mut value, seed, call);
        }
        crate::collectives::gather(self, root, value)
    }

    /// Gather variable-length slices onto `root`, concatenated in rank
    /// order.
    pub fn gatherv<T: Send + Clone + 'static>(
        &self,
        root: usize,
        values: &[T],
    ) -> CommResult<Option<Vec<T>>> {
        self.stats.gather();
        self.note_collective("gatherv");
        self.collective_fault(FaultOp::Gather, "gatherv")?;
        crate::collectives::gatherv(self, root, values)
    }

    /// Gather one value per rank onto **all** ranks.
    pub fn allgather<T: Send + Clone + 'static>(&self, value: T) -> CommResult<Vec<T>> {
        self.stats.allgather();
        self.note_collective("allgather");
        let mut value = value;
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Allgather, "allgather")?
        {
            let _ = fault::corrupt_payload(&mut value, seed, call);
        }
        crate::collectives::allgather(self, value)
    }

    /// Gather variable-length slices onto all ranks, concatenated in rank
    /// order.
    pub fn allgatherv<T: Send + Clone + 'static>(&self, values: &[T]) -> CommResult<Vec<T>> {
        self.stats.allgather();
        self.note_collective("allgatherv");
        self.collective_fault(FaultOp::Allgather, "allgatherv")?;
        crate::collectives::allgatherv(self, values)
    }

    /// Scatter `chunks[i]` from `root` to rank `i`.
    pub fn scatter<T: Send + Clone + 'static>(
        &self,
        root: usize,
        chunks: Option<Vec<Vec<T>>>,
    ) -> CommResult<Vec<T>> {
        self.stats.scatter();
        self.note_collective("scatter");
        self.collective_fault(FaultOp::Scatter, "scatter")?;
        crate::collectives::scatter(self, root, chunks)
    }

    /// Personalized all-to-all exchange: `chunks[i]` goes to rank `i`; the
    /// result's `i`-th entry came from rank `i`.
    pub fn alltoall<T: Send + Clone + 'static>(
        &self,
        chunks: Vec<Vec<T>>,
    ) -> CommResult<Vec<Vec<T>>> {
        self.stats.alltoall();
        self.note_collective("alltoall");
        self.collective_fault(FaultOp::Alltoall, "alltoall")?;
        crate::collectives::alltoall(self, chunks)
    }

    /// Inclusive prefix scan: rank `r` receives `op(v_0, …, v_r)`.
    pub fn scan<T, F>(&self, value: T, op: F) -> CommResult<T>
    where
        T: Send + Clone + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.stats.scan();
        self.note_collective("scan");
        let mut value = value;
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Scan, "scan")?
        {
            let _ = fault::corrupt_payload(&mut value, seed, call);
        }
        crate::collectives::scan(self, value, op)
    }

    /// Exclusive prefix scan: rank 0 receives `None`, rank `r > 0` receives
    /// `op(v_0, …, v_{r-1})`.
    pub fn exscan<T, F>(&self, value: T, op: F) -> CommResult<Option<T>>
    where
        T: Send + Clone + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.stats.scan();
        self.note_collective("exscan");
        let mut value = value;
        if let Some(FaultAction::Corrupt { seed, call }) =
            self.collective_fault(FaultOp::Scan, "exscan")?
        {
            let _ = fault::corrupt_payload(&mut value, seed, call);
        }
        crate::collectives::exscan(self, value, op)
    }
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .field("context", &self.context)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CommError, Universe, ANY_SOURCE, ANY_TAG};

    #[test]
    fn rank_and_size_are_consistent() {
        let out = Universe::run(3, |c| (c.rank(), c.size(), c.is_root()));
        assert_eq!(out, vec![(0, 3, true), (1, 3, false), (2, 3, false)]);
    }

    #[test]
    fn ring_send_recv() {
        let out = Universe::run(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, c.rank()).unwrap();
            c.recv::<usize>(prev, 0).unwrap()
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn self_send_is_matched() {
        let out = Universe::run(2, |c| {
            c.send(c.rank(), 5, 42i32).unwrap();
            c.recv::<i32>(c.rank(), 5).unwrap()
        });
        assert_eq!(out, vec![42, 42]);
    }

    #[test]
    fn tag_matching_reorders_messages() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, "first").unwrap();
                c.send(1, 2, "second").unwrap();
                String::new()
            } else {
                // Receive in the opposite order of sending.
                let b: &str = c.recv(0, 2).unwrap();
                let a: &str = c.recv(0, 1).unwrap();
                format!("{a},{b}")
            }
        });
        assert_eq!(out[1], "first,second");
    }

    #[test]
    fn fifo_between_pairs_is_preserved() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    c.send(1, 0, i as i64).unwrap();
                }
                vec![]
            } else {
                (0..100).map(|_| c.recv::<i64>(0, 0).unwrap()).collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn wildcard_receive_reports_status() {
        let out = Universe::run(3, |c| {
            if c.rank() == 0 {
                let mut seen = vec![];
                for _ in 0..2 {
                    let (v, st) = c.recv_any::<usize>(ANY_SOURCE, ANY_TAG).unwrap();
                    seen.push((v, st.source, st.tag));
                }
                seen.sort_unstable();
                seen
            } else {
                c.send(0, c.rank() as i32 * 10, c.rank()).unwrap();
                vec![]
            }
        });
        assert_eq!(out[0], vec![(1, 1, 10), (2, 2, 20)]);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, 1.5f64).unwrap();
                None
            } else {
                Some(c.recv::<i32>(0, 0).unwrap_err())
            }
        });
        assert!(matches!(out[1], Some(CommError::TypeMismatch { .. })));
    }

    #[test]
    fn negative_tag_rejected() {
        let out = Universe::run(1, |c| c.send(0, -3, 0u8).unwrap_err());
        assert_eq!(out[0], CommError::InvalidTag(-3));
    }

    #[test]
    fn rank_out_of_range_rejected() {
        let out = Universe::run(2, |c| c.send(5, 0, 0u8).unwrap_err());
        assert_eq!(out[0], CommError::RankOutOfRange { rank: 5, size: 2 });
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let out = Universe::run(2, |c| {
            let other = 1 - c.rank();
            c.sendrecv::<usize, usize>(other, 0, c.rank(), other, 0).unwrap()
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn iprobe_sees_pending_message() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 9, 7u8).unwrap();
                c.barrier().unwrap();
                true
            } else {
                c.barrier().unwrap();
                let st = c.iprobe(ANY_SOURCE, ANY_TAG).unwrap();
                let found = matches!(st, Some(s) if s.source == 0 && s.tag == 9);
                let _ = c.recv::<u8>(0, 9).unwrap();
                found && c.iprobe(0, 9).unwrap().is_none()
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn dup_isolates_traffic() {
        let out = Universe::run(2, |c| {
            let d = c.dup().unwrap();
            if c.rank() == 0 {
                // Same (dest, tag) on both communicators; contexts must keep
                // them apart.
                c.send(1, 0, "parent").unwrap();
                d.send(1, 0, "child").unwrap();
                String::new()
            } else {
                let on_child: &str = d.recv(0, 0).unwrap();
                let on_parent: &str = c.recv(0, 0).unwrap();
                format!("{on_parent}/{on_child}")
            }
        });
        assert_eq!(out[1], "parent/child");
    }

    #[test]
    fn split_forms_correct_groups() {
        let out = Universe::run(4, |c| {
            // Evens and odds, reverse-ordered by key.
            let color = (c.rank() % 2) as u64;
            let sub = c.split(color, -(c.rank() as i64)).unwrap();
            let members = sub.allgather(c.rank()).unwrap();
            (sub.rank(), sub.size(), members)
        });
        // Evens: ranks {0,2}, keys {0,-2} → order [2,0].
        assert_eq!(out[0], (1, 2, vec![2, 0]));
        assert_eq!(out[2], (0, 2, vec![2, 0]));
        // Odds: ranks {1,3}, keys {-1,-3} → order [3,1].
        assert_eq!(out[1], (1, 2, vec![3, 1]));
        assert_eq!(out[3], (0, 2, vec![3, 1]));
    }

    #[test]
    fn split_subcommunicator_collectives_work() {
        let out = Universe::run(4, |c| {
            let color = (c.rank() / 2) as u64;
            let sub = c.split(color, c.rank() as i64).unwrap();
            sub.allreduce(c.rank(), |a, b| a + b).unwrap()
        });
        assert_eq!(out, vec![1, 1, 5, 5]);
    }
}
