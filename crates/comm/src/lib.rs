//! `rcomm` — an in-process message-passing runtime modelled on MPI.
//!
//! The CCA-LISI paper runs its experiments as SPMD programs over MPI on a
//! distributed-memory cluster. This crate reproduces that substrate inside a
//! single process: [`Universe::run`] spawns one OS thread per *rank*, and the
//! ranks communicate **only** through their [`Communicator`] — typed
//! point-to-point messages with MPI matching semantics (source/tag/context,
//! wildcard receives, FIFO per pair) plus the usual collective operations
//! (barrier, broadcast, reduce, all-reduce, gather(v), scatter(v),
//! all-gather(v), all-to-all, scan) built on top of point-to-point with
//! binomial-tree and ring algorithms.
//!
//! Because all inter-rank traffic flows through this API, code written
//! against it has the same *structure* as the MPI original: block-row data
//! distribution, halo exchange, reductions inside dot products, gathers of
//! solution vectors. Only the transport differs (crossbeam channels instead
//! of a network), which is irrelevant for the paper's measurements — both
//! the CCA and the non-CCA call paths run on the identical substrate.
//!
//! # Example
//!
//! ```
//! use rcomm::Universe;
//!
//! // Sum rank ids across 4 ranks with an all-reduce.
//! let results = Universe::run(4, |comm| {
//!     comm.allreduce(comm.rank() as i64, |a, b| a + b).unwrap()
//! });
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

#![warn(missing_docs)]

mod comm;
mod envelope;
mod error;
mod reduce;
mod stats;
mod timer;
mod universe;

pub mod cohort;
pub mod collectives;
pub mod fault;

pub use cohort::CohortView;
pub use comm::{Communicator, RecvStatus, ANY_SOURCE, ANY_TAG};
pub use error::{CommError, CommResult};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultRule};
pub use stats::CommStats;
pub use reduce::{land, lor, max, maxloc, min, minloc, prod, sum};
pub use timer::Stopwatch;
pub use universe::Universe;

/// Message tag type (MPI uses `int`; only non-negative tags are valid for
/// sends, negative values are reserved for wildcards and internal use).
pub type Tag = i32;
