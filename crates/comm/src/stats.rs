//! Per-communicator traffic accounting.
//!
//! Generalizes the old single `allreduce_count()` into a full
//! [`CommStats`]: every public collective wrapper and point-to-point
//! operation bumps a relaxed atomic here, and mirrors the event into the
//! per-rank `probe` counters so traffic shows up in probe reports too.
//!
//! Counts are **per communicator**: `dup()`/`split()` children start from
//! zero, so a solver handed a duplicated communicator can be audited in
//! isolation. Byte counts are the sizes of the payload values as handed
//! to `send`/`recv` (`size_of::<T>()`); payloads that box or share their
//! storage (e.g. `Arc<Vec<f64>>` halo buffers) count at handle size — the
//! probe layer's `halo_bytes` counter carries the actual moved data.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of one communicator's operation counts, from
/// [`crate::Communicator::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point sends posted (`send`, and the send half of
    /// `sendrecv`).
    pub sends: u64,
    /// Point-to-point receives completed (`recv`, `recv_any`, and the
    /// receive half of `sendrecv`).
    pub recvs: u64,
    /// Payload bytes handed to point-to-point sends.
    pub bytes_sent: u64,
    /// Payload bytes delivered by point-to-point receives.
    pub bytes_received: u64,
    /// `barrier()` calls.
    pub barriers: u64,
    /// `bcast()` calls.
    pub bcasts: u64,
    /// Rooted `reduce()` calls.
    pub reduces: u64,
    /// `allreduce()`/`allreduce_vec()` calls.
    pub allreduces: u64,
    /// `gather()`/`gatherv()` calls.
    pub gathers: u64,
    /// `allgather()`/`allgatherv()` calls.
    pub allgathers: u64,
    /// `scatter()` calls.
    pub scatters: u64,
    /// `alltoall()` calls.
    pub alltoalls: u64,
    /// `scan()`/`exscan()` calls.
    pub scans: u64,
}

impl CommStats {
    /// Total collective operations of any flavour.
    pub fn collective_calls(&self) -> u64 {
        self.barriers
            + self.bcasts
            + self.reduces
            + self.allreduces
            + self.gathers
            + self.allgathers
            + self.scatters
            + self.alltoalls
            + self.scans
    }

    /// Total point-to-point operations (sends + receives).
    pub fn point_to_point_calls(&self) -> u64 {
        self.sends + self.recvs
    }
}

/// The live counters behind [`CommStats`]. One per communicator.
#[derive(Default)]
pub(crate) struct StatsCell {
    sends: AtomicU64,
    recvs: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    barriers: AtomicU64,
    bcasts: AtomicU64,
    reduces: AtomicU64,
    allreduces: AtomicU64,
    gathers: AtomicU64,
    allgathers: AtomicU64,
    scatters: AtomicU64,
    alltoalls: AtomicU64,
    scans: AtomicU64,
}

macro_rules! bump {
    ($fn_name:ident, $field:ident, $probe:ident) => {
        #[inline]
        pub(crate) fn $fn_name(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
            probe::incr(probe::Counter::$probe);
        }
    };
}

impl StatsCell {
    bump!(barrier, barriers, Barriers);
    bump!(bcast, bcasts, Bcasts);
    bump!(reduce, reduces, Reduces);
    bump!(allreduce, allreduces, Allreduces);
    bump!(gather, gathers, Gathers);
    bump!(allgather, allgathers, Allgathers);
    bump!(scatter, scatters, Scatters);
    bump!(alltoall, alltoalls, Alltoalls);
    bump!(scan, scans, Scans);

    #[inline]
    pub(crate) fn send(&self, bytes: u64) {
        self.sends.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        probe::incr(probe::Counter::SendsPosted);
        probe::add(probe::Counter::BytesSent, bytes);
    }

    #[inline]
    pub(crate) fn recv(&self, bytes: u64) {
        self.recvs.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        probe::incr(probe::Counter::RecvsCompleted);
        probe::add(probe::Counter::BytesReceived, bytes);
    }

    pub(crate) fn allreduce_count(&self) -> u64 {
        self.allreduces.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            sends: self.sends.load(Ordering::Relaxed),
            recvs: self.recvs.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            bcasts: self.bcasts.load(Ordering::Relaxed),
            reduces: self.reduces.load(Ordering::Relaxed),
            allreduces: self.allreduces.load(Ordering::Relaxed),
            gathers: self.gathers.load(Ordering::Relaxed),
            allgathers: self.allgathers.load(Ordering::Relaxed),
            scatters: self.scatters.load(Ordering::Relaxed),
            alltoalls: self.alltoalls.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    /// A scripted 4-rank exchange with exact expected counts per rank:
    /// one ring send/recv of a `[f64; 4]` (32 bytes each way), a broadcast,
    /// a scatter, a gather, a barrier and an allreduce.
    #[test]
    fn scripted_four_rank_exchange_counts_exactly() {
        let stats = Universe::run(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let payload = [c.rank() as f64; 4];
            c.send(next, 0, payload).unwrap();
            let got: [f64; 4] = c.recv(prev, 0).unwrap();
            assert_eq!(got, [prev as f64; 4]);

            let b = c.bcast(0, 17u64).unwrap();
            assert_eq!(b, 17);

            let chunks = if c.is_root() {
                Some((0..4).map(|r| vec![r as f64, -(r as f64)]).collect())
            } else {
                None
            };
            let mine = c.scatter(0, chunks).unwrap();
            assert_eq!(mine, vec![c.rank() as f64, -(c.rank() as f64)]);

            let gathered = c.gather(0, c.rank()).unwrap();
            if c.is_root() {
                assert_eq!(gathered, Some(vec![0, 1, 2, 3]));
            }

            c.barrier().unwrap();
            let total = c.allreduce(1u64, |a, b| a + b).unwrap();
            assert_eq!(total, 4);

            c.stats()
        });

        for (rank, s) in stats.iter().enumerate() {
            assert_eq!(s.sends, 1, "rank {rank} sends");
            assert_eq!(s.recvs, 1, "rank {rank} recvs");
            assert_eq!(s.bytes_sent, 32, "rank {rank} bytes_sent");
            assert_eq!(s.bytes_received, 32, "rank {rank} bytes_received");
            assert_eq!(s.bcasts, 1, "rank {rank} bcasts");
            assert_eq!(s.scatters, 1, "rank {rank} scatters");
            assert_eq!(s.gathers, 1, "rank {rank} gathers");
            assert_eq!(s.barriers, 1, "rank {rank} barriers");
            assert_eq!(s.allreduces, 1, "rank {rank} allreduces");
            assert_eq!(s.reduces, 0);
            assert_eq!(s.allgathers, 0);
            assert_eq!(s.alltoalls, 0);
            assert_eq!(s.scans, 0);
            assert_eq!(s.collective_calls(), 5, "rank {rank} collectives");
            assert_eq!(s.point_to_point_calls(), 2, "rank {rank} p2p");
        }
    }

    #[test]
    fn dup_and_split_children_start_from_zero() {
        let out = Universe::run(2, |c| {
            c.allreduce(0u32, |a, b| a + b).unwrap();
            let d = c.dup().unwrap();
            let child_before = d.stats();
            d.barrier().unwrap();
            (c.stats(), child_before, d.stats())
        });
        for (parent, child_before, child_after) in out {
            assert_eq!(parent.allreduces, 1);
            // The dup's allgather-free construction leaves the child clean.
            assert_eq!(child_before, Default::default());
            assert_eq!(child_after.barriers, 1);
            // Child traffic never leaks into the parent.
            assert_eq!(parent.barriers, 0);
        }
    }

    #[test]
    fn sendrecv_counts_both_halves() {
        let out = Universe::run(2, |c| {
            let other = 1 - c.rank();
            let _: u64 = c.sendrecv(other, 3, c.rank() as u64, other, 3).unwrap();
            c.stats()
        });
        for s in out {
            assert_eq!(s.sends, 1);
            assert_eq!(s.recvs, 1);
            assert_eq!(s.bytes_sent, 8);
            assert_eq!(s.bytes_received, 8);
        }
    }
}
