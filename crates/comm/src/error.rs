//! Error type shared by all communication operations.

use std::fmt;

/// Result alias for communication operations.
pub type CommResult<T> = Result<T, CommError>;

/// Errors raised by the message-passing runtime.
///
/// Every condition that MPI would report through an error code (or, in
/// practice, an abort) is surfaced as a typed error so that tests can inject
/// and observe failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A destination or source rank was outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// A received payload could not be downcast to the requested type.
    ///
    /// MPI leaves datatype mismatches undefined; this runtime detects them.
    TypeMismatch {
        /// Type name the receiver asked for.
        expected: &'static str,
    },
    /// A negative (reserved) tag was passed to a send operation.
    InvalidTag(crate::Tag),
    /// A blocking receive waited longer than the deadlock-detection
    /// timeout. This almost always indicates mismatched send/recv pairs or
    /// collectives executed in different orders on different ranks.
    DeadlockSuspected {
        /// The rank that timed out.
        rank: usize,
        /// Source the receive was matching (`None` = any source).
        src: Option<usize>,
        /// Tag the receive was matching (`None` = any tag).
        tag: Option<crate::Tag>,
    },
    /// The peer's mailbox was closed (its thread exited or panicked).
    PeerGone(usize),
    /// A `v`-variant collective was called with a counts slice whose length
    /// differs from the communicator size.
    BadCounts {
        /// Expected number of entries (communicator size).
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// A buffer passed to a collective had an unexpected length.
    BadBuffer {
        /// What the operation expected.
        expected: usize,
        /// What it got.
        got: usize,
    },
    /// A cohort member (world rank) stopped servicing communication — it
    /// was killed by a `kind=kill` fault rule or its heartbeat went
    /// stale. Unlike [`CommError::DeadlockSuspected`], every survivor
    /// reaches this verdict with the *same* rank, so a recovery layer can
    /// shrink the communicator around the loss
    /// ([`crate::Communicator::shrink`]) instead of aborting.
    RankLost(usize),
    /// A deterministic fault-injection rule fired on this operation.
    /// Only produced while a [`crate::fault::FaultPlan`] is armed.
    Injected {
        /// Operation name (`"send"`, `"recv"`, `"allreduce"`, …).
        op: &'static str,
        /// World rank the fault fired on.
        rank: usize,
        /// The rule's matching-call count when it fired.
        call: u64,
    },
}

impl CommError {
    /// Whether the failure is plausibly transient — retrying the whole
    /// operation may succeed (injected faults, suspected deadlocks from a
    /// peer that aborted, vanished peers) — as opposed to a structural
    /// caller bug (bad rank, negative tag, type mismatch) that will fail
    /// identically every time. Recovery layers use this to decide between
    /// backoff-and-retry and moving on to a fallback.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CommError::Injected { .. }
                | CommError::DeadlockSuspected { .. }
                | CommError::PeerGone(_)
                | CommError::RankLost(_)
        )
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::TypeMismatch { expected } => {
                write!(f, "received message payload is not of type {expected}")
            }
            CommError::InvalidTag(t) => write!(f, "tag {t} is negative/reserved"),
            CommError::DeadlockSuspected { rank, src, tag } => write!(
                f,
                "rank {rank} blocked too long in recv(src={src:?}, tag={tag:?}); suspected deadlock"
            ),
            CommError::PeerGone(r) => write!(f, "peer rank {r} is gone (thread exited)"),
            CommError::RankLost(r) => {
                write!(f, "rank {r} lost from cohort (stopped servicing communication)")
            }
            CommError::BadCounts { expected, got } => {
                write!(f, "counts slice has {got} entries, expected {expected}")
            }
            CommError::BadBuffer { expected, got } => {
                write!(f, "buffer has length {got}, expected {expected}")
            }
            CommError::Injected { op, rank, call } => {
                write!(f, "injected fault: {op} on rank {rank} at call {call}")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = CommError::RankOutOfRange { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(e.to_string().contains("size 4"));

        let e = CommError::TypeMismatch { expected: "f64" };
        assert!(e.to_string().contains("f64"));

        let e = CommError::DeadlockSuspected { rank: 2, src: Some(1), tag: Some(7) };
        assert!(e.to_string().contains("rank 2"));

        let e = CommError::BadCounts { expected: 4, got: 3 };
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CommError::PeerGone(1), CommError::PeerGone(1));
        assert_ne!(CommError::PeerGone(1), CommError::PeerGone(2));
    }

    #[test]
    fn transient_classification() {
        assert!(CommError::Injected { op: "send", rank: 2, call: 3 }.is_transient());
        assert!(CommError::PeerGone(1).is_transient());
        assert!(CommError::RankLost(2).is_transient());
        assert!(CommError::RankLost(2).to_string().contains("rank 2 lost from cohort"));
        assert!(CommError::DeadlockSuspected { rank: 0, src: None, tag: None }.is_transient());
        assert!(!CommError::InvalidTag(-1).is_transient());
        assert!(!CommError::RankOutOfRange { rank: 9, size: 4 }.is_transient());
        assert!(!CommError::TypeMismatch { expected: "f64" }.is_transient());
        let e = CommError::Injected { op: "allreduce", rank: 1, call: 5 };
        assert!(e.to_string().contains("injected fault"));
        assert!(e.to_string().contains("allreduce"));
    }
}
