//! Internal wire format: a typed payload with MPI-style matching metadata.

use std::any::Any;

use crate::Tag;

/// Communication context. Each communicator owns a distinct context so that
/// traffic on split/duplicated communicators — and internal collective
/// traffic — can never be confused with user point-to-point messages, the
/// same role MPI's hidden "context id" plays.
pub(crate) type Context = u64;

/// The world communicator's user context.
pub(crate) const WORLD_CONTEXT: Context = 0x5157_4f52_4c44; // "QWORLD"

/// Bit flipped to derive a communicator's *collective* context from its
/// user context.
pub(crate) const COLLECTIVE_BIT: Context = 1 << 63;

/// One in-flight message.
pub(crate) struct Envelope {
    /// World rank of the sender.
    pub src: usize,
    /// User- or collective-level tag.
    pub tag: Tag,
    /// Context id of the communicator the message was sent on.
    pub context: Context,
    /// Causal trace stamp (trace id, sending span, per-sender sequence);
    /// `None` unless the sender had an active trace (see `probe::trace`).
    pub stamp: Option<probe::trace::Stamp>,
    /// The payload. `Box<dyn Any>` lets a single mailbox carry every message
    /// type; the receiver downcasts and reports a typed error on mismatch.
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    /// Does this envelope match a receive posted for `(src, tag)` on
    /// communicator context `context`? `None` acts as the MPI wildcard.
    pub fn matches(&self, src: Option<usize>, tag: Option<Tag>, context: Context) -> bool {
        self.context == context
            && src.is_none_or(|s| s == self.src)
            && tag.is_none_or(|t| t == self.tag)
    }
}

/// Derive a child context deterministically on every member of a collective
/// split, without any extra communication: all members pass identical
/// `(parent, salt, color)` and therefore compute identical child contexts.
pub(crate) fn child_context(parent: Context, salt: u64, color: u64) -> Context {
    // SplitMix64 finalizer — good avalanche, collisions vanishingly unlikely
    // for the handful of communicators a solver stack creates.
    let mut z = parent
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(color.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) & !COLLECTIVE_BIT
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: Tag, context: Context) -> Envelope {
        Envelope { src, tag, context, stamp: None, payload: Box::new(0u8) }
    }

    #[test]
    fn matching_respects_all_three_keys() {
        let e = env(2, 7, WORLD_CONTEXT);
        assert!(e.matches(Some(2), Some(7), WORLD_CONTEXT));
        assert!(e.matches(None, Some(7), WORLD_CONTEXT));
        assert!(e.matches(Some(2), None, WORLD_CONTEXT));
        assert!(e.matches(None, None, WORLD_CONTEXT));
        assert!(!e.matches(Some(1), Some(7), WORLD_CONTEXT));
        assert!(!e.matches(Some(2), Some(8), WORLD_CONTEXT));
        assert!(!e.matches(Some(2), Some(7), WORLD_CONTEXT ^ 1));
    }

    #[test]
    fn child_contexts_are_deterministic_and_distinct() {
        let a = child_context(WORLD_CONTEXT, 1, 0);
        let b = child_context(WORLD_CONTEXT, 1, 0);
        assert_eq!(a, b, "same inputs must agree across ranks");

        let c = child_context(WORLD_CONTEXT, 1, 1);
        let d = child_context(WORLD_CONTEXT, 2, 0);
        assert_ne!(a, c, "different colors get different contexts");
        assert_ne!(a, d, "different salts get different contexts");
        assert_eq!(a & COLLECTIVE_BIT, 0, "collective bit must stay clear");
    }
}
