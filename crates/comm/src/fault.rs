//! Deterministic fault injection for the message-passing runtime.
//!
//! A [`FaultPlan`] is a seeded, rank-addressable schedule of faults: "on
//! world rank 2, make the 3rd `allreduce` corrupt its local contribution",
//! or "drop the 1st halo send (tag 7001) on rank 0". Plans are armed
//! process-wide — programmatically via [`arm`] / [`disarm`], or from the
//! `RSPARSE_FAULTS` environment variable, which [`crate::Universe::run`]
//! reads once per process.
//!
//! # Spec grammar
//!
//! `RSPARSE_FAULTS` (and [`FaultPlan::parse`]) accept semicolon-separated
//! clauses. Each clause is either a standalone `seed=N` (sets the plan
//! seed used to pick which element of a payload gets poisoned) or a rule
//! of comma-separated `key=value` pairs:
//!
//! | key        | values                                                       | default |
//! |------------|--------------------------------------------------------------|---------|
//! | `op`       | `send` `recv` `barrier` `bcast` `reduce` `allreduce` `gather` `allgather` `scatter` `alltoall` `scan` | required |
//! | `kind`     | `error` `drop` `delay` `corrupt` `truncate` `kill`           | required |
//! | `rank`     | world rank, or `*` for any rank                              | `*`     |
//! | `call`     | 1-based count of *matching* calls at which the rule fires    | `1`     |
//! | `tag`      | restrict a p2p rule to one message tag                       | any     |
//! | `delay_ms` | sleep duration for `kind=delay`                              | `100`   |
//!
//! Example: `op=allreduce,rank=2,call=5,kind=corrupt;seed=42`.
//!
//! # Semantics
//!
//! * `error` — the operation returns [`crate::CommError::Injected`] instead of
//!   executing (the message, if any, is not sent).
//! * `drop` — a send silently discards its payload; the receiver never
//!   sees the message (send-only).
//! * `delay` — the operation sleeps `delay_ms` first, then proceeds.
//! * `corrupt` — silent data corruption: one seeded element of an `f64`
//!   payload (scalar, `Vec<f64>`, or `Arc<Vec<f64>>`) becomes NaN. On a
//!   send the outgoing message is poisoned; on a receive the delivered
//!   value; on a value-carrying collective the rank's *local
//!   contribution*, so the NaN propagates to every rank through the
//!   reduction — exactly the failure the solver guards must agree on.
//! * `truncate` — a send's `Vec<f64>`/`Arc<Vec<f64>>` payload loses its
//!   last element, so the receiver's length checks trip (send-only).
//! * `kill` — the rank permanently stops servicing communication: the
//!   matching call and every later communication call on that rank fail
//!   with [`crate::CommError::RankLost`], and the rank is marked dead in
//!   the process-wide [`crate::cohort`] registry. Survivors blocked on
//!   the dead rank observe the registry and fail their own calls with
//!   the same rank-consistent `RankLost` verdict instead of waiting out
//!   the deadlock watchdog — the trigger for
//!   `Communicator::shrink`-based elastic recovery. Valid on any op.
//!
//! Each rule fires **once** (a one-shot fuse): a fault that breaks solve
//! attempt 1 does not re-fire on the fallback attempt. Rules count their
//! own matching calls; with `rank=*` the count is shared across ranks and
//! therefore scheduling-dependent — pin `rank=` for determinism.
//!
//! Every fired fault bumps [`probe::Counter::FaultsInjected`]. When no
//! plan is armed the whole machinery costs one relaxed atomic load per
//! communication call.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::Tag;

/// Which communication operation a rule targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive (plain or wildcard).
    Recv,
    /// `barrier()`.
    Barrier,
    /// `bcast()`.
    Bcast,
    /// Rooted `reduce()`.
    Reduce,
    /// `allreduce()` / `allreduce_vec()`.
    Allreduce,
    /// `gather()` / `gatherv()`.
    Gather,
    /// `allgather()` / `allgatherv()`.
    Allgather,
    /// `scatter()`.
    Scatter,
    /// `alltoall()`.
    Alltoall,
    /// `scan()` / `exscan()`.
    Scan,
}

impl FaultOp {
    /// The spec-grammar spelling of this op.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Send => "send",
            FaultOp::Recv => "recv",
            FaultOp::Barrier => "barrier",
            FaultOp::Bcast => "bcast",
            FaultOp::Reduce => "reduce",
            FaultOp::Allreduce => "allreduce",
            FaultOp::Gather => "gather",
            FaultOp::Allgather => "allgather",
            FaultOp::Scatter => "scatter",
            FaultOp::Alltoall => "alltoall",
            FaultOp::Scan => "scan",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "send" => FaultOp::Send,
            "recv" => FaultOp::Recv,
            "barrier" => FaultOp::Barrier,
            "bcast" => FaultOp::Bcast,
            "reduce" => FaultOp::Reduce,
            "allreduce" => FaultOp::Allreduce,
            "gather" => FaultOp::Gather,
            "allgather" => FaultOp::Allgather,
            "scatter" => FaultOp::Scatter,
            "alltoall" => FaultOp::Alltoall,
            "scan" => FaultOp::Scan,
            other => return Err(format!("unknown fault op '{other}'")),
        })
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with [`crate::CommError::Injected`].
    Error,
    /// Silently discard a send's payload (send-only).
    Drop,
    /// Sleep for the given milliseconds, then proceed.
    Delay(u64),
    /// Poison one seeded `f64` element of the payload with NaN.
    Corrupt,
    /// Shorten a send's `Vec<f64>` payload by one element (send-only).
    Truncate,
    /// Permanently stop this rank from servicing communication: mark it
    /// dead in the cohort registry and fail this and every later call
    /// with [`crate::CommError::RankLost`].
    Kill,
}

impl FaultKind {
    /// The spec-grammar spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Drop => "drop",
            FaultKind::Delay(_) => "delay",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Truncate => "truncate",
            FaultKind::Kill => "kill",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Operation the rule matches.
    pub op: FaultOp,
    /// World rank the rule matches (`None` = any rank).
    pub rank: Option<usize>,
    /// 1-based count of matching calls at which the rule fires.
    pub call: u64,
    /// Message tag filter for p2p rules (`None` = any tag).
    pub tag: Option<Tag>,
    /// The fault to apply.
    pub kind: FaultKind,
}

/// A seeded schedule of faults; see the module docs for the spec grammar.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The rules, matched in order; each fires at most once.
    pub rules: Vec<FaultRule>,
    /// Seed for the deterministic choice of which payload element a
    /// `corrupt` rule poisons.
    pub seed: u64,
}

impl FaultRule {
    /// Render the rule back into the spec grammar (one clause), so a
    /// postmortem can quote exactly what `scripts/fault_matrix.sh` armed.
    pub fn spec(&self) -> String {
        let mut out = format!("op={},kind={}", self.op.name(), self.kind.name());
        if let FaultKind::Delay(ms) = self.kind {
            out.push_str(&format!(",delay_ms={ms}"));
        }
        if let Some(r) = self.rank {
            out.push_str(&format!(",rank={r}"));
        }
        out.push_str(&format!(",call={}", self.call));
        if let Some(t) = self.tag {
            out.push_str(&format!(",tag={t}"));
        }
        out
    }
}

impl FaultPlan {
    /// Render the plan back into the spec grammar (clauses joined with
    /// `;`, seed last).
    pub fn spec(&self) -> String {
        let mut clauses: Vec<String> = self.rules.iter().map(FaultRule::spec).collect();
        if self.seed != 0 {
            clauses.push(format!("seed={}", self.seed));
        }
        clauses.join(";")
    }

    /// Parse the `RSPARSE_FAULTS` spec grammar.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed '{seed}'"))?;
                continue;
            }
            let mut op = None;
            let mut kind_name: Option<&str> = None;
            let mut rank = None;
            let mut call = 1u64;
            let mut tag = None;
            let mut delay_ms = 100u64;
            for pair in clause.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got '{pair}'"))?;
                let (k, v) = (k.trim(), v.trim());
                match k {
                    "op" => op = Some(FaultOp::parse(v)?),
                    "kind" => kind_name = Some(v),
                    "rank" => {
                        rank = if v == "*" {
                            None
                        } else {
                            Some(v.parse().map_err(|_| format!("bad rank '{v}'"))?)
                        }
                    }
                    "call" => call = v.parse().map_err(|_| format!("bad call '{v}'"))?,
                    "tag" => tag = Some(v.parse().map_err(|_| format!("bad tag '{v}'"))?),
                    "delay_ms" => {
                        delay_ms = v.parse().map_err(|_| format!("bad delay_ms '{v}'"))?
                    }
                    other => return Err(format!("unknown fault key '{other}'")),
                }
            }
            let op = op.ok_or_else(|| format!("rule '{clause}' is missing op="))?;
            let kind = match kind_name.ok_or_else(|| format!("rule '{clause}' is missing kind="))? {
                "error" => FaultKind::Error,
                "drop" => FaultKind::Drop,
                "delay" => FaultKind::Delay(delay_ms),
                "corrupt" => FaultKind::Corrupt,
                "truncate" => FaultKind::Truncate,
                "kill" => FaultKind::Kill,
                other => return Err(format!("unknown fault kind '{other}'")),
            };
            if call == 0 {
                return Err("call counts are 1-based; call=0 never fires".into());
            }
            if matches!(kind, FaultKind::Drop | FaultKind::Truncate) && op != FaultOp::Send {
                return Err(format!("kind={kind:?} is only meaningful for op=send"));
            }
            plan.rules.push(FaultRule { op, rank, call, tag, kind });
        }
        Ok(plan)
    }
}

/// Resolved action for a fired rule, handed to the communicator hooks.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultAction {
    /// Return [`crate::CommError::Injected`].
    Error {
        /// Matching-call count at which the rule fired.
        call: u64,
    },
    /// Discard the send.
    Drop,
    /// Sleep this many milliseconds, then proceed.
    Delay(u64),
    /// Poison the payload (seed/call pick the element).
    Corrupt { seed: u64, call: u64 },
    /// Shorten the payload by one element.
    Truncate,
    /// Mark the rank dead and fail with [`crate::CommError::RankLost`].
    Kill,
}

struct Armed {
    plan: FaultPlan,
    /// Per-rule matching-call counters.
    hits: Vec<AtomicU64>,
    /// Per-rule one-shot fuses.
    fired: Vec<AtomicBool>,
}

static ARMED_FLAG: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Arc<Armed>>> = Mutex::new(None);

/// Is a fault plan currently armed? One relaxed atomic load — the entire
/// cost of the fault machinery on the no-faults path.
#[inline]
pub fn armed() -> bool {
    ARMED_FLAG.load(Ordering::Relaxed)
}

/// Arm `plan` process-wide. Replaces any previously armed plan; rule
/// counters and fuses start fresh.
pub fn arm(plan: FaultPlan) {
    let n = plan.rules.len();
    let armed = Arc::new(Armed {
        plan,
        hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
        fired: (0..n).map(|_| AtomicBool::new(false)).collect(),
    });
    *STATE.lock().unwrap() = Some(armed);
    ARMED_FLAG.store(true, Ordering::Release);
}

/// Disarm fault injection; subsequent communication runs fault-free.
pub fn disarm() {
    ARMED_FLAG.store(false, Ordering::Release);
    *STATE.lock().unwrap() = None;
}

/// The currently armed plan, if any (a clone; arming is unaffected).
/// Postmortem writers use this to record what was scheduled.
pub fn active_plan() -> Option<FaultPlan> {
    STATE.lock().unwrap().as_ref().map(|a| a.plan.clone())
}

/// Indices (into the armed plan's `rules`) of rules whose one-shot fuse
/// has burned — i.e. faults that actually fired. Empty when no plan is
/// armed.
pub fn fired_rule_ids() -> Vec<usize> {
    match STATE.lock().unwrap().as_ref() {
        Some(a) => a
            .fired
            .iter()
            .enumerate()
            .filter(|(_, f)| f.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .collect(),
        None => Vec::new(),
    }
}

/// Arm from the `RSPARSE_FAULTS` environment variable, at most once per
/// process. Called by [`crate::Universe::run`]; a malformed spec is
/// reported on stderr and ignored rather than poisoning every launch.
pub(crate) fn arm_from_env_once() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if let Ok(spec) = std::env::var("RSPARSE_FAULTS") {
            if spec.trim().is_empty() {
                return;
            }
            match FaultPlan::parse(&spec) {
                Ok(plan) => arm(plan),
                Err(e) => eprintln!("rcomm: ignoring malformed RSPARSE_FAULTS: {e}"),
            }
        }
    });
}

/// Consult the armed plan for `(op, world_rank, tag)`. Advances matching
/// rules' call counters and fires at most one rule.
pub(crate) fn check(op: FaultOp, world_rank: usize, tag: Option<Tag>) -> Option<FaultAction> {
    let armed = STATE.lock().unwrap().clone()?;
    for (i, rule) in armed.plan.rules.iter().enumerate() {
        if rule.op != op {
            continue;
        }
        if let Some(r) = rule.rank {
            if r != world_rank {
                continue;
            }
        }
        if let (Some(t), Some(seen)) = (rule.tag, tag) {
            if t != seen {
                continue;
            }
        } else if rule.tag.is_some() && tag.is_none() {
            continue;
        }
        let n = armed.hits[i].fetch_add(1, Ordering::Relaxed) + 1;
        if n != rule.call || armed.fired[i].swap(true, Ordering::Relaxed) {
            continue;
        }
        probe::incr(probe::Counter::FaultsInjected);
        probe::flight::record(probe::flight::FlightKind::Fault {
            rule: i as u32,
            op: rule.op.name(),
            kind: rule.kind.name(),
        });
        // Mix the rule index into the seed so two corrupt rules poison
        // independent elements.
        let seed = splitmix64(armed.plan.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        return Some(match rule.kind {
            FaultKind::Error => FaultAction::Error { call: n },
            FaultKind::Drop => FaultAction::Drop,
            FaultKind::Delay(ms) => FaultAction::Delay(ms),
            FaultKind::Corrupt => FaultAction::Corrupt { seed, call: n },
            FaultKind::Truncate => FaultAction::Truncate,
            FaultKind::Kill => FaultAction::Kill,
        });
    }
    None
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn poison_slice(v: &mut [f64], seed: u64, call: u64) -> bool {
    if v.is_empty() {
        return false;
    }
    let idx = (splitmix64(seed ^ call) % v.len() as u64) as usize;
    v[idx] = f64::NAN;
    true
}

/// Poison one seeded element of an `f64`-bearing payload (scalar,
/// `Vec<f64>`, or `Arc<Vec<f64>>`). Returns whether anything changed;
/// payloads of other types pass through untouched.
pub(crate) fn corrupt_payload<T: std::any::Any>(value: &mut T, seed: u64, call: u64) -> bool {
    let any = value as &mut dyn std::any::Any;
    if let Some(x) = any.downcast_mut::<f64>() {
        *x = f64::NAN;
        return true;
    }
    if let Some(v) = any.downcast_mut::<Vec<f64>>() {
        return poison_slice(v, seed, call);
    }
    if let Some(a) = any.downcast_mut::<Arc<Vec<f64>>>() {
        let inner: &mut Vec<f64> = Arc::make_mut(a);
        return poison_slice(inner, seed, call);
    }
    false
}

/// Poison one seeded element of a typed slice (used by `allreduce_vec`'s
/// local contribution). Only `f64` elements are corruptible.
pub(crate) fn corrupt_slice<T: std::any::Any>(vals: &mut [T], seed: u64, call: u64) -> bool {
    if vals.is_empty() {
        return false;
    }
    let idx = (splitmix64(seed ^ call) % vals.len() as u64) as usize;
    if let Some(x) = (&mut vals[idx] as &mut dyn std::any::Any).downcast_mut::<f64>() {
        *x = f64::NAN;
        return true;
    }
    false
}

/// Drop the last element of a `Vec<f64>`/`Arc<Vec<f64>>` payload. Returns
/// whether anything changed.
pub(crate) fn truncate_payload<T: std::any::Any>(value: &mut T) -> bool {
    let any = value as &mut dyn std::any::Any;
    if let Some(v) = any.downcast_mut::<Vec<f64>>() {
        return v.pop().is_some();
    }
    if let Some(a) = any.downcast_mut::<Arc<Vec<f64>>>() {
        return Arc::make_mut(a).pop().is_some();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let p = FaultPlan::parse(
            "op=send,rank=2,call=3,tag=7001,kind=drop; op=allreduce,kind=corrupt; seed=42",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(
            p.rules[0],
            FaultRule {
                op: FaultOp::Send,
                rank: Some(2),
                call: 3,
                tag: Some(7001),
                kind: FaultKind::Drop,
            }
        );
        assert_eq!(p.rules[1].rank, None);
        assert_eq!(p.rules[1].call, 1);
        assert_eq!(p.rules[1].kind, FaultKind::Corrupt);
    }

    #[test]
    fn grammar_rejects_nonsense() {
        assert!(FaultPlan::parse("kind=error").is_err(), "missing op");
        assert!(FaultPlan::parse("op=send").is_err(), "missing kind");
        assert!(FaultPlan::parse("op=warp,kind=error").is_err());
        assert!(FaultPlan::parse("op=send,kind=vaporize").is_err());
        assert!(FaultPlan::parse("op=send,kind=error,call=0").is_err());
        assert!(FaultPlan::parse("op=recv,kind=drop").is_err(), "drop is send-only");
        assert!(FaultPlan::parse("op=allreduce,kind=truncate").is_err());
        assert!(FaultPlan::parse("op=send,kind=error,rank=x").is_err());
        assert!(FaultPlan::parse("gibberish").is_err());
    }

    #[test]
    fn kill_is_valid_on_any_op() {
        for spec in [
            "op=allreduce,rank=2,call=4,kind=kill",
            "op=send,rank=1,tag=7001,kind=kill",
            "op=alltoall,rank=1,call=1,kind=kill",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.rules[0].kind, FaultKind::Kill);
            let reparsed = FaultPlan::parse(&plan.spec()).unwrap();
            assert_eq!(plan, reparsed, "kill spec '{spec}' must round-trip");
        }
    }

    #[test]
    fn spec_rendering_round_trips_through_the_parser() {
        for spec in [
            "op=allreduce,rank=2,call=2,kind=corrupt;seed=11",
            "op=send,rank=1,tag=7001,call=1,kind=truncate",
            "op=recv,rank=2,tag=7001,call=1,kind=delay,delay_ms=50",
            "op=send,rank=2,call=3,tag=7001,kind=drop;op=allreduce,kind=corrupt;seed=42",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            let rendered = plan.spec();
            let reparsed = FaultPlan::parse(&rendered).unwrap();
            assert_eq!(plan, reparsed, "spec '{spec}' -> '{rendered}' did not round-trip");
        }
    }

    #[test]
    fn fired_rules_are_reported_by_id() {
        // Process-global state: use a plan no other test arms, and
        // restore disarmed state at the end.
        let plan =
            FaultPlan::parse("op=scan,rank=77,kind=error;op=barrier,rank=78,kind=error").unwrap();
        arm(plan.clone());
        assert_eq!(active_plan().as_ref(), Some(&plan));
        assert!(fired_rule_ids().is_empty());
        // Fire only the second rule.
        assert!(check(FaultOp::Barrier, 78, None).is_some());
        assert_eq!(fired_rule_ids(), vec![1]);
        disarm();
        assert!(active_plan().is_none());
        assert!(fired_rule_ids().is_empty());
    }

    #[test]
    fn empty_spec_is_an_empty_plan() {
        let p = FaultPlan::parse("").unwrap();
        assert!(p.rules.is_empty());
        let p = FaultPlan::parse(" ; ;seed=7; ").unwrap();
        assert!(p.rules.is_empty());
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn corruption_is_deterministic_and_typed() {
        let mut v = vec![1.0f64; 8];
        assert!(corrupt_payload(&mut v, 1, 1));
        let mut w = vec![1.0f64; 8];
        assert!(corrupt_payload(&mut w, 1, 1));
        let nan_at = |s: &[f64]| s.iter().position(|x| x.is_nan());
        assert_eq!(nan_at(&v), nan_at(&w), "same seed, same element");

        let mut s = 3.5f64;
        assert!(corrupt_payload(&mut s, 1, 1));
        assert!(s.is_nan());

        let mut a = Arc::new(vec![1.0f64; 4]);
        assert!(corrupt_payload(&mut a, 9, 9));
        assert!(a.iter().any(|x| x.is_nan()));

        let mut other = 5i64;
        assert!(!corrupt_payload(&mut other, 1, 1), "non-f64 payloads pass through");

        let mut t = vec![1.0f64; 3];
        assert!(truncate_payload(&mut t));
        assert_eq!(t.len(), 2);
        assert!(!truncate_payload(&mut 7u32));
    }
}
