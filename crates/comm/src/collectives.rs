//! Collective operations built on point-to-point messaging.
//!
//! All collectives run on the communicator's hidden *collective context*, so
//! they can never match user point-to-point traffic. Algorithms are the
//! textbook ones MPI implementations use for small/medium messages:
//! binomial trees for rooted operations (broadcast, reduce, gather,
//! scatter), recursive doubling for the barrier (dissemination), a ring for
//! all-gather, and tree-reduce + tree-broadcast for all-reduce. Each rank
//! must call every collective in the same order — violations surface as
//! [`CommError::DeadlockSuspected`].

use crate::comm::Communicator;
use crate::error::{CommError, CommResult};
use crate::Tag;

// Distinct tag per collective kind; combined with the collective context
// and MPI's same-order rule this is enough to keep operations separate.
const TAG_BARRIER: Tag = 1;
const TAG_BCAST: Tag = 2;
const TAG_REDUCE: Tag = 3;
const TAG_GATHER: Tag = 4;
const TAG_SCATTER: Tag = 5;
const TAG_ALLGATHER: Tag = 6;
const TAG_ALLTOALL: Tag = 7;
const TAG_SCAN: Tag = 8;

/// Relative rank helper: rotate so `root` is 0, which lets every rooted
/// binomial-tree algorithm assume root = 0.
#[inline]
fn rel(rank: usize, root: usize, size: usize) -> usize {
    (rank + size - root) % size
}

#[inline]
fn unrel(rel: usize, root: usize, size: usize) -> usize {
    (rel + root) % size
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds, each rank sends to
/// `(rank + 2^k) mod p` and receives from `(rank − 2^k) mod p`.
pub fn barrier(comm: &Communicator) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    let ctx = comm.collective_context();
    let mut k = 1usize;
    let mut round: Tag = 0;
    while k < p {
        let to = (me + k) % p;
        let from = (me + p - k) % p;
        comm.send_ctx(to, TAG_BARRIER + round * 16, ctx, ())?;
        let ((), _) = comm.recv_match::<()>(Some(from), Some(TAG_BARRIER + round * 16), ctx)?;
        k <<= 1;
        round += 1;
    }
    Ok(())
}

/// Binomial-tree broadcast from `root` (the classic MPICH schedule: a
/// non-root receives from the rank obtained by clearing its lowest set
/// virtual-rank bit, then forwards to `vrank + m` for each `m` below that
/// bit).
pub fn bcast<T: Send + Clone + 'static>(
    comm: &Communicator,
    root: usize,
    value: T,
) -> CommResult<T> {
    let p = comm.size();
    if root >= p {
        return Err(CommError::RankOutOfRange { rank: root, size: p });
    }
    if p == 1 {
        return Ok(value);
    }
    let ctx = comm.collective_context();
    let vrank = rel(comm.rank(), root, p);

    let mut mask = 1usize;
    let val;
    if vrank == 0 {
        val = value;
        while mask < p {
            mask <<= 1;
        }
    } else {
        // Walk up to our lowest set bit; the parent differs in exactly it.
        while vrank & mask == 0 {
            mask <<= 1;
        }
        let parent = unrel(vrank ^ mask, root, p);
        let (v, _) = comm.recv_match::<T>(Some(parent), Some(TAG_BCAST), ctx)?;
        val = v;
    }
    mask >>= 1;
    while mask > 0 {
        let child = vrank + mask;
        if child < p {
            comm.send_ctx(unrel(child, root, p), TAG_BCAST, ctx, val.clone())?;
        }
        mask >>= 1;
    }
    Ok(val)
}

/// Binomial-tree reduce onto `root`. `op` must be associative; it is applied
/// in an order that keeps operands in rank order (`op(lower, higher)`), so
/// non-commutative but associative combiners (e.g. string concatenation)
/// give the rank-ordered result.
pub fn reduce<T, F>(comm: &Communicator, root: usize, value: T, op: F) -> CommResult<Option<T>>
where
    T: Send + Clone + 'static,
    F: Fn(&T, &T) -> T,
{
    let p = comm.size();
    if root >= p {
        return Err(CommError::RankOutOfRange { rank: root, size: p });
    }
    if p == 1 {
        return Ok(Some(value));
    }
    let ctx = comm.collective_context();
    let vrank = rel(comm.rank(), root, p);

    let mut acc = value;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            // Send accumulated value to partner below and exit.
            let parent = unrel(vrank & !mask, root, p);
            comm.send_ctx(parent, TAG_REDUCE, ctx, acc)?;
            return Ok(None);
        }
        let child = vrank | mask;
        if child < p {
            let (rhs, _) = comm.recv_match::<T>(Some(unrel(child, root, p)), Some(TAG_REDUCE), ctx)?;
            // Child's virtual rank is higher, so it goes on the right.
            acc = op(&acc, &rhs);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// All-reduce = reduce to rank 0 + broadcast. Keeps operand order, so the
/// result is *identical on every rank* — important for iterative solvers,
/// whose convergence tests must agree bit-for-bit across ranks.
pub fn allreduce<T, F>(comm: &Communicator, value: T, op: F) -> CommResult<T>
where
    T: Send + Clone + 'static,
    F: Fn(&T, &T) -> T,
{
    let partial = reduce(comm, 0, value, op)?;
    match partial {
        Some(v) => bcast(comm, 0, v),
        None => {
            // Non-root: participate in the broadcast with a placeholder by
            // receiving. bcast's non-root path ignores the passed value, but
            // we still need *a* T — receive directly instead.
            bcast_recv_only(comm, 0)
        }
    }
}

/// Non-root half of a broadcast for callers that have no placeholder value.
/// Must mirror [`bcast`]'s schedule exactly.
fn bcast_recv_only<T: Send + Clone + 'static>(
    comm: &Communicator,
    root: usize,
) -> CommResult<T> {
    let p = comm.size();
    let ctx = comm.collective_context();
    let vrank = rel(comm.rank(), root, p);
    debug_assert!(vrank != 0, "root must call bcast, not bcast_recv_only");
    let mut mask = 1usize;
    while vrank & mask == 0 {
        mask <<= 1;
    }
    let parent = unrel(vrank ^ mask, root, p);
    let (val, _) = comm.recv_match::<T>(Some(parent), Some(TAG_BCAST), ctx)?;
    mask >>= 1;
    while mask > 0 {
        let child = vrank + mask;
        if child < p {
            comm.send_ctx(unrel(child, root, p), TAG_BCAST, ctx, val.clone())?;
        }
        mask >>= 1;
    }
    Ok(val)
}

/// Element-wise all-reduce over equal-length slices (e.g. several dot
/// products fused into one collective, as solvers do to save latency).
pub fn allreduce_vec<T, F>(comm: &Communicator, values: &[T], op: F) -> CommResult<Vec<T>>
where
    T: Send + Clone + 'static,
    F: Fn(&T, &T) -> T,
{
    let n = values.len();
    let combined = allreduce(comm, values.to_vec(), |a, b| {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(x, y)| op(x, y)).collect::<Vec<T>>()
    })?;
    if combined.len() != n {
        return Err(CommError::BadBuffer { expected: n, got: combined.len() });
    }
    Ok(combined)
}

/// Gather one value per rank onto `root`, in rank order.
pub fn gather<T: Send + Clone + 'static>(
    comm: &Communicator,
    root: usize,
    value: T,
) -> CommResult<Option<Vec<T>>> {
    gatherv(comm, root, std::slice::from_ref(&value))
}

/// Gather variable-length slices onto `root`, concatenated in rank order.
/// (Flat point-to-point fan-in; fine at in-process scale and simplest to
/// keep segment boundaries exact.)
pub fn gatherv<T: Send + Clone + 'static>(
    comm: &Communicator,
    root: usize,
    values: &[T],
) -> CommResult<Option<Vec<T>>> {
    let p = comm.size();
    if root >= p {
        return Err(CommError::RankOutOfRange { rank: root, size: p });
    }
    let ctx = comm.collective_context();
    if comm.rank() == root {
        let mut out: Vec<T> = Vec::new();
        for r in 0..p {
            if r == root {
                out.extend_from_slice(values);
            } else {
                let (chunk, _) = comm.recv_match::<Vec<T>>(Some(r), Some(TAG_GATHER), ctx)?;
                out.extend(chunk);
            }
        }
        Ok(Some(out))
    } else {
        comm.send_ctx(root, TAG_GATHER, ctx, values.to_vec())?;
        Ok(None)
    }
}

/// Gather one value per rank onto all ranks (ring all-gather).
pub fn allgather<T: Send + Clone + 'static>(comm: &Communicator, value: T) -> CommResult<Vec<T>> {
    let p = comm.size();
    let me = comm.rank();
    let ctx = comm.collective_context();
    let mut slots: Vec<Option<T>> = (0..p).map(|_| None).collect();
    slots[me] = Some(value);
    // Ring: in step s, send the piece originating at (me - s) to the right
    // neighbour and receive the piece originating at (me - s - 1) from the
    // left neighbour.
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for s in 0..p.saturating_sub(1) {
        let send_origin = (me + p - s) % p;
        let recv_origin = (me + p - s - 1) % p;
        let piece = slots[send_origin].clone().expect("piece must have arrived");
        comm.send_ctx(right, TAG_ALLGATHER, ctx, piece)?;
        let (got, _) = comm.recv_match::<T>(Some(left), Some(TAG_ALLGATHER), ctx)?;
        slots[recv_origin] = Some(got);
    }
    Ok(slots.into_iter().map(|o| o.expect("all pieces collected")).collect())
}

/// All-gather of variable-length slices, concatenated in rank order.
pub fn allgatherv<T: Send + Clone + 'static>(
    comm: &Communicator,
    values: &[T],
) -> CommResult<Vec<T>> {
    let chunks: Vec<Vec<T>> = allgather(comm, values.to_vec())?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Scatter `chunks[i]` from `root` to rank `i`. Only the root supplies
/// chunks; other ranks pass `None`.
pub fn scatter<T: Send + Clone + 'static>(
    comm: &Communicator,
    root: usize,
    chunks: Option<Vec<Vec<T>>>,
) -> CommResult<Vec<T>> {
    let p = comm.size();
    if root >= p {
        return Err(CommError::RankOutOfRange { rank: root, size: p });
    }
    let ctx = comm.collective_context();
    if comm.rank() == root {
        let chunks = chunks.ok_or(CommError::BadCounts { expected: p, got: 0 })?;
        if chunks.len() != p {
            return Err(CommError::BadCounts { expected: p, got: chunks.len() });
        }
        let mut own = None;
        for (r, chunk) in chunks.into_iter().enumerate() {
            if r == root {
                own = Some(chunk);
            } else {
                comm.send_ctx(r, TAG_SCATTER, ctx, chunk)?;
            }
        }
        Ok(own.expect("root chunk present"))
    } else {
        let (chunk, _) = comm.recv_match::<Vec<T>>(Some(root), Some(TAG_SCATTER), ctx)?;
        Ok(chunk)
    }
}

/// Personalized all-to-all: `chunks[i]` goes to rank `i`; entry `i` of the
/// result came from rank `i`.
pub fn alltoall<T: Send + Clone + 'static>(
    comm: &Communicator,
    mut chunks: Vec<Vec<T>>,
) -> CommResult<Vec<Vec<T>>> {
    let p = comm.size();
    let me = comm.rank();
    if chunks.len() != p {
        return Err(CommError::BadCounts { expected: p, got: chunks.len() });
    }
    let ctx = comm.collective_context();
    let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
    // Pairwise exchange schedule: in step s, exchange with me ^ s when p is
    // a power of two; otherwise fall back to a shifted ring, which is
    // correct for any p.
    for s in 0..p {
        let partner = (me + s) % p;
        let from = (me + p - s) % p;
        let to_send = std::mem::take(&mut chunks[partner]);
        if partner == me {
            out[me] = Some(to_send);
            continue;
        }
        comm.send_ctx(partner, TAG_ALLTOALL, ctx, to_send)?;
        let (got, _) = comm.recv_match::<Vec<T>>(Some(from), Some(TAG_ALLTOALL), ctx)?;
        out[from] = Some(got);
    }
    Ok(out.into_iter().map(|o| o.expect("all chunks exchanged")).collect())
}

/// Inclusive prefix scan (linear chain: rank r receives the prefix from
/// r−1, combines, forwards to r+1 — latency O(p), fine at thread scale).
pub fn scan<T, F>(comm: &Communicator, value: T, op: F) -> CommResult<T>
where
    T: Send + Clone + 'static,
    F: Fn(&T, &T) -> T,
{
    let p = comm.size();
    let me = comm.rank();
    let ctx = comm.collective_context();
    let acc = if me == 0 {
        value
    } else {
        let (prefix, _) = comm.recv_match::<T>(Some(me - 1), Some(TAG_SCAN), ctx)?;
        op(&prefix, &value)
    };
    if me + 1 < p {
        comm.send_ctx(me + 1, TAG_SCAN, ctx, acc.clone())?;
    }
    Ok(acc)
}

/// Exclusive prefix scan; rank 0 gets `None`.
pub fn exscan<T, F>(comm: &Communicator, value: T, op: F) -> CommResult<Option<T>>
where
    T: Send + Clone + 'static,
    F: Fn(&T, &T) -> T,
{
    let p = comm.size();
    let me = comm.rank();
    let ctx = comm.collective_context();
    let before: Option<T> = if me == 0 {
        None
    } else {
        let (prefix, _) = comm.recv_match::<T>(Some(me - 1), Some(TAG_SCAN), ctx)?;
        Some(prefix)
    };
    if me + 1 < p {
        let forward = match &before {
            Some(b) => op(b, &value),
            None => value,
        };
        comm.send_ctx(me + 1, TAG_SCAN, ctx, forward)?;
    }
    Ok(before)
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    /// Every collective is exercised at several rank counts, including
    /// non-powers of two, since the tree algorithms special-case those.
    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8];

    #[test]
    fn barrier_completes_at_all_sizes() {
        for &p in SIZES {
            let out = Universe::run(p, |c| {
                for _ in 0..3 {
                    c.barrier().unwrap();
                }
                true
            });
            assert_eq!(out.len(), p);
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for &p in SIZES {
            for root in 0..p {
                let out = Universe::run(p, move |c| {
                    let v = if c.rank() == root { vec![root, 99] } else { vec![] };
                    c.bcast(root, v).unwrap()
                });
                for r in out {
                    assert_eq!(r, vec![root, 99]);
                }
            }
        }
    }

    #[test]
    fn reduce_sums_to_each_root() {
        for &p in SIZES {
            for root in 0..p {
                let out = Universe::run(p, move |c| {
                    c.reduce(root, c.rank() as i64 + 1, |a, b| a + b).unwrap()
                });
                let expect: i64 = (1..=p as i64).sum();
                for (r, v) in out.into_iter().enumerate() {
                    if r == root {
                        assert_eq!(v, Some(expect));
                    } else {
                        assert_eq!(v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_keeps_rank_order_for_noncommutative_ops() {
        for &p in SIZES {
            let out = Universe::run(p, |c| {
                c.reduce(0, c.rank().to_string(), |a, b| format!("{a}{b}")).unwrap()
            });
            let expect: String = (0..p).map(|r| r.to_string()).collect();
            assert_eq!(out[0], Some(expect));
        }
    }

    #[test]
    fn allreduce_agrees_on_all_ranks() {
        for &p in SIZES {
            let out = Universe::run(p, |c| c.allreduce(c.rank() as f64, |a, b| a + b).unwrap());
            let expect: f64 = (0..p).map(|r| r as f64).sum();
            for v in out {
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn allreduce_vec_is_elementwise() {
        let out = Universe::run(4, |c| {
            let mine = [c.rank() as f64, 1.0, -(c.rank() as f64)];
            c.allreduce_vec(&mine, |a, b| a + b).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![6.0, 4.0, -6.0]);
        }
    }

    #[test]
    fn allreduce_batch_matches_per_segment_allreduce_vec_bitwise() {
        let out = Universe::run(3, |c| {
            let a = [c.rank() as f64 * 0.1 + 0.7, 2.0];
            let b = [-(c.rank() as f64) * 1.3, 0.25, 1e-9];
            let batched = c.allreduce_batch(&[&a, &b], |x, y| x + y).unwrap();
            let sep_a = c.allreduce_vec(&a, |x, y| x + y).unwrap();
            let sep_b = c.allreduce_vec(&b, |x, y| x + y).unwrap();
            (batched, sep_a, sep_b)
        });
        for (batched, sep_a, sep_b) in out {
            assert_eq!(batched.len(), 2);
            for (g, e) in batched[0].iter().zip(&sep_a) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
            for (g, e) in batched[1].iter().zip(&sep_b) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        for &p in SIZES {
            for root in 0..p {
                let out = Universe::run(p, move |c| c.gather(root, c.rank() * 2).unwrap());
                let expect: Vec<usize> = (0..p).map(|r| r * 2).collect();
                assert_eq!(out[root], Some(expect));
            }
        }
    }

    #[test]
    fn gatherv_concatenates_ragged_segments() {
        let out = Universe::run(3, |c| {
            let mine: Vec<usize> = (0..=c.rank()).map(|i| c.rank() * 10 + i).collect();
            c.gatherv(0, &mine).unwrap()
        });
        assert_eq!(out[0], Some(vec![0, 10, 11, 20, 21, 22]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn allgather_is_rank_ordered_everywhere() {
        for &p in SIZES {
            let out = Universe::run(p, |c| c.allgather(c.rank() + 100).unwrap());
            let expect: Vec<usize> = (0..p).map(|r| r + 100).collect();
            for v in out {
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn allgatherv_concatenates_everywhere() {
        let out = Universe::run(4, |c| {
            let mine = vec![c.rank() as i32; c.rank()];
            c.allgatherv(&mine).unwrap()
        });
        let expect = vec![1, 2, 2, 3, 3, 3];
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn scatter_delivers_per_rank_chunks() {
        for &p in SIZES {
            for root in 0..p {
                let out = Universe::run(p, move |c| {
                    let chunks = if c.rank() == root {
                        Some((0..p).map(|r| vec![r as i64, r as i64 * 2]).collect())
                    } else {
                        None
                    };
                    c.scatter(root, chunks).unwrap()
                });
                for (r, v) in out.into_iter().enumerate() {
                    assert_eq!(v, vec![r as i64, r as i64 * 2]);
                }
            }
        }
    }

    #[test]
    fn alltoall_transposes_chunks() {
        for &p in SIZES {
            let out = Universe::run(p, |c| {
                let chunks: Vec<Vec<usize>> =
                    (0..p).map(|dest| vec![c.rank() * 100 + dest]).collect();
                c.alltoall(chunks).unwrap()
            });
            for (me, got) in out.into_iter().enumerate() {
                let expect: Vec<Vec<usize>> = (0..p).map(|src| vec![src * 100 + me]).collect();
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn scan_computes_inclusive_prefixes() {
        for &p in SIZES {
            let out = Universe::run(p, |c| c.scan(c.rank() as i64 + 1, |a, b| a + b).unwrap());
            for (r, v) in out.into_iter().enumerate() {
                let expect: i64 = (1..=r as i64 + 1).sum();
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn exscan_computes_exclusive_prefixes() {
        for &p in SIZES {
            let out = Universe::run(p, |c| c.exscan(c.rank() as i64 + 1, |a, b| a + b).unwrap());
            for (r, v) in out.into_iter().enumerate() {
                if r == 0 {
                    assert_eq!(v, None);
                } else {
                    let expect: i64 = (1..=r as i64).sum();
                    assert_eq!(v, Some(expect));
                }
            }
        }
    }

    #[test]
    fn collectives_compose_back_to_back() {
        // A realistic solver-iteration pattern: allreduce, then bcast, then
        // another allreduce, with no barrier between them.
        let out = Universe::run(4, |c| {
            let a = c.allreduce(1.0f64, |x, y| x + y).unwrap();
            let b = c.bcast(2, c.rank() as f64).unwrap();
            let d = c.allreduce(a * b, |x, y| x + y).unwrap();
            (a, b, d)
        });
        for v in out {
            assert_eq!(v, (4.0, 2.0, 32.0));
        }
    }
}
