//! SPMD launcher: spawn one thread per rank, wire them up, collect results.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;

use crate::comm::{Communicator, PostOffice, Wiring};
use crate::envelope::WORLD_CONTEXT;

/// The SPMD execution environment, playing the role of `mpiexec`.
///
/// [`Universe::run`] is the single entry point: it spawns `n` OS threads,
/// hands each a world [`Communicator`] of size `n`, runs the supplied
/// closure on every rank, and returns the per-rank results in rank order.
/// A panic on any rank propagates (after the other ranks either finish or
/// fail with `PeerGone`/`DeadlockSuspected`), so test failures are loud.
pub struct Universe;

impl Universe {
    /// Run `f` on `n` ranks and collect each rank's return value, indexed
    /// by rank.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or if any rank's closure panics.
    pub fn run<F, R>(n: usize, f: F) -> Vec<R>
    where
        F: Fn(&Communicator) -> R + Send + Sync,
        R: Send,
    {
        assert!(n > 0, "a universe needs at least one rank");
        // Arm the process-wide fault plan from RSPARSE_FAULTS exactly
        // once, before any rank communicates.
        crate::fault::arm_from_env_once();
        // Fresh cohort: one universe's casualties (killed ranks, stale
        // heartbeats) must not haunt the next launch.
        crate::cohort::reset(n);
        // Start the live telemetry exporter once if RSPARSE_METRICS_ADDR
        // is set, and bump the trace generation so solves in this launch
        // get trace ids distinct from earlier launches. Both happen
        // before any rank thread spawns, so every rank agrees.
        probe::export::maybe_serve_from_env();
        probe::trace::advance_generation();
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..n).map(|_| unbounded()).unzip();
        let wiring = Arc::new(Wiring { senders });
        let members: Arc<Vec<usize>> = Arc::new((0..n).collect());

        let mut comms: Vec<Communicator> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| {
                let post = Arc::new(Mutex::new(PostOffice {
                    receiver,
                    pending: VecDeque::new(),
                }));
                Communicator::new(
                    rank,
                    Arc::clone(&members),
                    WORLD_CONTEXT,
                    Arc::clone(&wiring),
                    post,
                )
            })
            .collect();

        let fref = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .drain(..)
                .map(|comm| {
                    scope.spawn(move || {
                        // Tag this thread's probe recorder so per-rank
                        // reports group correctly.
                        probe::set_rank(comm.rank());
                        let r = fref(&comm);
                        // Keep the communicator (and thus our mailbox
                        // sender handles) alive until the closure returns,
                        // so peers never observe a closed channel while
                        // still working.
                        drop(comm);
                        r
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(r) => r,
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| e.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic payload>");
                        panic!("rank {rank} panicked: {msg}")
                    }
                })
                .collect()
        })
    }

    /// Convenience: run the same closure at several rank counts, returning
    /// `(n, results)` pairs — the shape of the paper's scaling experiments
    /// (1, 2, 4, 8 processors).
    pub fn run_scaling<F, R>(counts: &[usize], f: F) -> Vec<(usize, Vec<R>)>
    where
        F: Fn(&Communicator) -> R + Send + Sync,
        R: Send,
    {
        counts.iter().map(|&n| (n, Self::run(n, &f))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_rank_ordered() {
        let out = Universe::run(8, |c| c.rank() * c.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::run(1, |c| {
            assert_eq!(c.size(), 1);
            c.allreduce(41, |a, b| a + b).unwrap() + 1
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_is_rejected() {
        let _ = Universe::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panic_propagates_with_rank_id() {
        let _ = Universe::run(2, |c| {
            if c.rank() == 1 {
                panic!("boom on purpose");
            }
        });
    }

    #[test]
    fn run_scaling_covers_each_count() {
        let out = Universe::run_scaling(&[1, 2, 4], |c| c.size());
        assert_eq!(out.len(), 3);
        for (n, rs) in out {
            assert_eq!(rs, vec![n; n]);
        }
    }

    #[test]
    fn heavy_traffic_does_not_lose_messages() {
        // Stress the unexpected-message queue: every rank sends to every
        // other rank with many tags, receives in reverse order.
        let out = Universe::run(4, |c| {
            let p = c.size();
            for dest in 0..p {
                for t in 0..20 {
                    c.send(dest, t, (c.rank(), t)).unwrap();
                }
            }
            let mut sum = 0usize;
            for src in (0..p).rev() {
                for t in (0..20).rev() {
                    let (r, tt): (usize, i32) = c.recv(src, t).unwrap();
                    assert_eq!((r, tt), (src, t));
                    sum += 1;
                }
            }
            sum
        });
        assert_eq!(out, vec![80; 4]);
    }
}
