//! Process-wide cohort health: who is alive, who has been lost.
//!
//! The SPMD runtime emulates a fixed-size MPI cohort with one thread per
//! rank. When a rank dies — today via a `kind=kill` fault rule, in a real
//! deployment via a node failure — its peers must reach a *rank-consistent*
//! verdict [`crate::CommError::RankLost`] instead of hanging until the
//! deadlock watchdog gives up. This module is that verdict's source of
//! truth:
//!
//! * a **killed-rank registry** (the authoritative in-process detector):
//!   [`mark_dead`] is called by the fault gates the instant a `kill` rule
//!   fires, and every blocked receive polls [`lost_member`] on a short
//!   slice so all survivors fail fast with the *same* lost rank;
//! * **heartbeats**: every communication call stamps a per-world-rank
//!   wall-clock heartbeat. With `RCOMM_HEARTBEAT_TIMEOUT_MS` set to a
//!   nonzero value, a member whose heartbeat is older than the timeout is
//!   *also* reported lost while a peer is blocked waiting on it — the
//!   belt-and-braces detector for a genuinely wedged rank that never got
//!   to mark itself dead. It defaults to off (0) because the in-process
//!   transport always delivers the authoritative kill signal, and a
//!   staleness verdict can misfire on a rank that is legitimately
//!   compute-bound on a loaded CI machine.
//!
//! State is keyed by *world* rank and reset by [`crate::Universe::run`]
//! at launch, exactly like the fault plan: tests that kill ranks must
//! serialize, like tests that arm faults already do.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Fast-path flag: has *any* rank been marked dead since the last reset?
/// One relaxed load keeps the no-faults receive loop free of lock traffic.
static ANY_DEAD: AtomicBool = AtomicBool::new(false);

/// World ranks marked dead since the last [`reset`].
static DEAD: Mutex<Vec<usize>> = Mutex::new(Vec::new());

/// Millisecond heartbeat timestamps, indexed by world rank (grown on
/// demand). A slot of 0 means "never heard from".
static HEARTBEATS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Programmatic override of `RCOMM_HEARTBEAT_TIMEOUT_MS` (tests).
static TIMEOUT_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// The heartbeat staleness timeout in milliseconds; 0 disables staleness
/// verdicts. Reads `RCOMM_HEARTBEAT_TIMEOUT_MS` once per process unless
/// overridden via [`set_heartbeat_timeout_ms`].
pub fn heartbeat_timeout_ms() -> u64 {
    let o = TIMEOUT_OVERRIDE.load(Ordering::Relaxed);
    if o != u64::MAX {
        return o;
    }
    static ENV: OnceLock<u64> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RCOMM_HEARTBEAT_TIMEOUT_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    })
}

/// Override the heartbeat staleness timeout (0 disables; `u64::MAX`
/// restores the environment value). Test hook — the env variable is read
/// once per process.
pub fn set_heartbeat_timeout_ms(ms: u64) {
    TIMEOUT_OVERRIDE.store(ms, Ordering::Relaxed);
}

/// Forget every death and heartbeat — called by [`crate::Universe::run`]
/// at launch so one universe's casualties don't haunt the next.
pub(crate) fn reset(world_size: usize) {
    let mut dead = DEAD.lock().unwrap();
    dead.clear();
    let mut hb = HEARTBEATS.lock().unwrap();
    hb.clear();
    hb.resize(world_size, 0);
    ANY_DEAD.store(false, Ordering::Release);
}

/// Mark `world_rank` dead. Idempotent; called by the fault gates when a
/// `kill` rule fires.
pub fn mark_dead(world_rank: usize) {
    let mut dead = DEAD.lock().unwrap();
    if !dead.contains(&world_rank) {
        dead.push(world_rank);
        probe::incr(probe::Counter::RanksLost);
    }
    ANY_DEAD.store(true, Ordering::Release);
}

/// Has `world_rank` been marked dead?
#[inline]
pub fn is_lost(world_rank: usize) -> bool {
    if !ANY_DEAD.load(Ordering::Relaxed) {
        return false;
    }
    DEAD.lock().unwrap().contains(&world_rank)
}

/// Stamp a heartbeat for `world_rank` (called on every communication
/// call). Free when staleness detection is disabled — the default — so
/// the no-faults communication path stays within its overhead budget.
pub fn heartbeat(world_rank: usize) {
    if heartbeat_timeout_ms() == 0 {
        return;
    }
    let mut hb = HEARTBEATS.lock().unwrap();
    if world_rank >= hb.len() {
        hb.resize(world_rank + 1, 0);
    }
    hb[world_rank] = now_ms();
}

/// The lowest member of `members` (world ranks) currently considered
/// lost: marked dead, or — when the heartbeat timeout is enabled —
/// heartbeat-stale. Consulted by blocked receives; `None` means everyone
/// looks alive.
pub fn lost_member(members: &[usize]) -> Option<usize> {
    if ANY_DEAD.load(Ordering::Relaxed) {
        let dead = DEAD.lock().unwrap();
        if let Some(&m) = members.iter().find(|m| dead.contains(m)) {
            return Some(m);
        }
    }
    let timeout = heartbeat_timeout_ms();
    if timeout > 0 {
        let hb = HEARTBEATS.lock().unwrap();
        let now = now_ms();
        for &m in members {
            // Only a rank we have heard from at least once can go stale;
            // a never-started rank is the launcher's problem.
            if let Some(&last) = hb.get(m) {
                if last != 0 && now.saturating_sub(last) > timeout {
                    return Some(m);
                }
            }
        }
    }
    None
}

/// A survivor's-eye snapshot of a communicator's cohort: which members
/// are still alive and which have been lost. Built by
/// [`crate::Communicator::cohort_view`]; the `alive` list is exactly the
/// argument `shrink` expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortView {
    /// World rank of each member, indexed by the communicator's rank.
    pub members: Vec<usize>,
    /// Local ranks whose member is still alive, ascending.
    pub alive: Vec<usize>,
    /// Local ranks whose member has been lost, ascending.
    pub lost: Vec<usize>,
}

impl CohortView {
    /// Build the view for `members` (world ranks in local-rank order).
    pub(crate) fn capture(members: &[usize]) -> CohortView {
        let mut alive = Vec::with_capacity(members.len());
        let mut lost = Vec::new();
        let timeout = heartbeat_timeout_ms();
        let dead = DEAD.lock().unwrap();
        let hb = HEARTBEATS.lock().unwrap();
        let now = now_ms();
        for (local, &world) in members.iter().enumerate() {
            let stale = timeout > 0
                && hb.get(world).is_some_and(|&last| {
                    last != 0 && now.saturating_sub(last) > timeout
                });
            if dead.contains(&world) || stale {
                lost.push(local);
            } else {
                alive.push(local);
            }
        }
        CohortView { members: members.to_vec(), alive, lost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global state: these tests reset at both boundaries and the
    // ranks they kill (900+) are outside any real universe.

    #[test]
    fn dead_marks_are_idempotent_and_visible() {
        reset(4);
        assert!(!is_lost(901));
        assert_eq!(lost_member(&[900, 901, 902]), None);
        mark_dead(901);
        mark_dead(901);
        assert!(is_lost(901));
        assert_eq!(lost_member(&[900, 901, 902]), Some(901));
        assert_eq!(lost_member(&[900, 902]), None, "other cohorts unaffected");
        let view = CohortView::capture(&[900, 901, 902]);
        assert_eq!(view.alive, vec![0, 2]);
        assert_eq!(view.lost, vec![1]);
        reset(0);
        assert!(!is_lost(901));
    }

    #[test]
    fn stale_heartbeats_count_as_lost_only_when_enabled() {
        reset(4);
        set_heartbeat_timeout_ms(50);
        heartbeat(903);
        // Pretend 903's heartbeat is ancient.
        HEARTBEATS.lock().unwrap()[903] = 1;
        set_heartbeat_timeout_ms(0);
        assert_eq!(lost_member(&[903]), None, "staleness off when disabled");
        set_heartbeat_timeout_ms(50);
        assert_eq!(lost_member(&[903]), Some(903));
        let view = CohortView::capture(&[903, 904]);
        assert_eq!(view.lost, vec![0]);
        // 904 never heartbeat at all: not stale, just unstarted.
        assert_eq!(view.alive, vec![1]);
        set_heartbeat_timeout_ms(u64::MAX);
        reset(0);
    }
}
