//! Schema validation of the probe crate's machine-readable exports:
//! the chrome://tracing document, the per-rank JSONL report stream and
//! the [`probe::JsonlMonitor`] live stream are parsed back with the
//! in-tree `serde_json` shim and checked field by field — catching
//! quoting slips, missing commas and schema drift that substring asserts
//! cannot.
//!
//! The tests mutate the process-wide probe mode and recorder registry,
//! so they serialize on one lock and reset state at each boundary.

use std::sync::Mutex;

use serde_json::Value;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn chrome_trace_parses_with_rank_pids_and_monotone_end_times() {
    let _g = locked();
    probe::reset();
    probe::set_mode(probe::ProbeMode::Chrome);
    probe::set_rank(3);
    {
        let _outer = probe::span!("outer_phase");
        let _inner = probe::span!("inner_phase");
    }
    let doc = probe::chrome_trace_json();
    probe::set_mode(probe::ProbeMode::Off);
    probe::reset();

    let v = serde_json::from_str(&doc).expect("chrome trace must be valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "spans must have produced events");

    let mut names = Vec::new();
    let mut last_end: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    for e in events {
        match e["ph"].as_str().expect("ph string") {
            "X" => {
                // Complete events: the viewer contract is name/cat/ts/dur
                // plus pid=rank and tid=thread lanes.
                let name = e["name"].as_str().expect("X event name").to_string();
                assert_eq!(e["cat"].as_str(), Some("probe"));
                let ts = e["ts"].as_f64().expect("ts number");
                let dur = e["dur"].as_f64().expect("dur number");
                assert!(ts >= 0.0 && dur >= 0.0, "non-negative times: {e:?}");
                let pid = e["pid"].as_u64().expect("pid number");
                let tid = e["tid"].as_u64().expect("tid number");
                assert_eq!(pid, 3, "pid is the SPMD rank");
                // Events are appended at span close, so end times are
                // non-decreasing within one (pid, tid) lane.
                let end = ts + dur;
                let prev = last_end.insert((pid, tid), end).unwrap_or(0.0);
                assert!(end >= prev, "end times must be monotone per lane");
                names.push(name);
            }
            "M" => {
                assert_eq!(e["name"].as_str(), Some("process_name"));
                assert!(e["args"]["name"].as_str().is_some(), "lane label");
            }
            ph => panic!("unexpected phase type {ph:?}"),
        }
    }
    assert!(names.iter().any(|n| n == "outer_phase"), "names: {names:?}");
    assert!(names.iter().any(|n| n == "inner_phase"), "names: {names:?}");
    assert!(v["otherData"]["droppedEvents"].as_u64().is_some());
}

#[test]
fn jsonl_report_stream_parses_line_by_line() {
    let _g = locked();
    probe::reset();
    probe::set_mode(probe::ProbeMode::Summary);
    probe::incr(probe::Counter::PortCalls);
    probe::timed("jsonl_span", || std::thread::sleep(std::time::Duration::from_micros(50)));
    let text = probe::render_jsonl(&probe::aggregate());
    probe::set_mode(probe::ProbeMode::Off);
    probe::reset();

    let mut saw_span = false;
    let mut lines = 0;
    for line in text.lines() {
        let v = serde_json::from_str(line).expect("each JSONL line is one JSON object");
        lines += 1;
        assert!(
            v["rank"].as_u64().is_some() || v["rank"].is_null(),
            "rank is a number or null: {line}"
        );
        let counters = v["counters"].as_object().expect("counters object");
        for c in counters.values() {
            assert!(c.as_u64().is_some_and(|n| n > 0), "only nonzero counters appear");
        }
        assert!(v["notes"].as_object().is_some(), "notes object");
        for s in v["spans"].as_array().expect("spans array") {
            assert!(s["name"].as_str().is_some());
            assert!(s["calls"].as_u64().is_some_and(|n| n > 0));
            let total = s["total_s"].as_f64().expect("total_s number");
            let self_s = s["self_s"].as_f64().expect("self_s number");
            assert!(total >= self_s && self_s >= 0.0, "span times ordered: {s:?}");
            if s["name"].as_str() == Some("jsonl_span") {
                saw_span = true;
            }
        }
    }
    assert!(lines >= 1, "at least one rank line:\n{text}");
    assert!(saw_span, "the recorded span must appear:\n{text}");
}

#[test]
fn jsonl_monitor_stream_parses_event_by_event() {
    use probe::SolveMonitor;
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut mon = probe::JsonlMonitor::with_rank(&mut buf, 2);
        mon.on_start(1.0);
        mon.on_iteration(1, 0.5, 2);
        mon.on_iteration(2, f64::NAN, 4);
        mon.on_phase("factorize", 0.25);
        mon.on_finish(2, 1e-9, true);
    }
    let text = String::from_utf8(buf).expect("monitor stream is UTF-8");
    let events: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("each monitor line is one JSON object"))
        .collect();
    assert_eq!(events.len(), 5);
    for e in &events {
        assert_eq!(e["rank"].as_u64(), Some(2), "every line carries the rank tag");
        assert!(e["event"].as_str().is_some());
    }
    assert_eq!(events[0]["event"].as_str(), Some("start"));
    assert_eq!(events[1]["iteration"].as_u64(), Some(1));
    assert_eq!(events[1]["residual"].as_f64(), Some(0.5));
    assert!(events[2]["residual"].is_null(), "NaN residual serializes as null");
    assert_eq!(events[3]["phase"].as_str(), Some("factorize"));
    assert_eq!(events[4]["converged"].as_bool(), Some(true));
    // Iteration counters are monotone across the stream.
    let iters: Vec<u64> = events
        .iter()
        .filter(|e| e["event"].as_str() == Some("iteration"))
        .map(|e| e["iteration"].as_u64().unwrap())
        .collect();
    assert!(iters.windows(2).all(|w| w[0] < w[1]), "iterations: {iters:?}");
}

#[test]
fn postmortem_cohort_change_schema_parses_with_survivor_mapping() {
    let _g = locked();
    // Assembled by the core crate; validated here with the shim parser
    // like every other machine-readable export.
    let report = lisi::SolveReport {
        converged: true,
        iterations: 41,
        residual: 3.2e-11,
        attempts: 2,
        recovery: 3,
        cohort: 3,
        ..Default::default()
    };
    let change = lisi::CohortChange {
        lost_rank: 2,
        old_size: 4,
        new_size: 3,
        survivors: vec![0, 1, 3],
        resumed_iteration: 20,
    };
    let doc = lisi::postmortem::assemble(
        "recovered",
        4,
        "rksp:solver=cg,preconditioner=ilu0",
        &["rksp#1: shrink: rank 2 lost, cohort 4 -> 3, resume at iteration 20".to_string()],
        &report,
        Some(&change),
        "",
        &[],
    );

    let v = serde_json::from_str(&doc).expect("postmortem must be valid JSON");
    assert_eq!(v["trigger"].as_str(), Some("recovered"));
    let cc = v["cohort_change"].as_object().expect("cohort_change object");
    assert_eq!(cc["lost_rank"].as_u64(), Some(2));
    assert_eq!(cc["old_size"].as_u64(), Some(4));
    assert_eq!(cc["new_size"].as_u64(), Some(3));
    let survivors: Vec<u64> = cc["survivors"]
        .as_array()
        .expect("survivors array")
        .iter()
        .map(|s| s.as_u64().expect("survivor world rank"))
        .collect();
    assert_eq!(survivors, vec![0, 1, 3], "new-rank-ordered world ranks");
    assert_eq!(cc["resumed_iteration"].as_u64(), Some(20));
    // The shrunken size is mirrored into the report block, and the
    // mapping is internally consistent with it.
    assert_eq!(v["report"]["cohort"].as_u64(), Some(3));
    assert_eq!(v["report"]["recovery"].as_u64(), Some(3));
    assert_eq!(survivors.len() as u64, cc["new_size"].as_u64().unwrap());
    assert!(!survivors.contains(&2), "the casualty never survives itself");

    // Without a change the key is an explicit null, not absent: readers
    // can distinguish "cohort intact" from schema drift.
    let doc = lisi::postmortem::assemble("recovered", 4, "p", &[], &report, None, "", &[]);
    let v = serde_json::from_str(&doc).expect("postmortem must be valid JSON");
    assert!(v["cohort_change"].is_null(), "null when the cohort never changed");
}

#[test]
fn summary_sink_is_deterministic_and_name_sorted() {
    let _g = locked();
    probe::reset();
    probe::set_mode(probe::ProbeMode::Summary);
    // Record counters and spans in an order that is NOT alphabetical, so
    // the sort inside the sink is what produces the stable layout.
    probe::incr(probe::Counter::PcApplies);
    probe::incr(probe::Counter::MatvecCalls);
    probe::timed("z_last", || {});
    probe::timed("a_first", || {});
    probe::timed("m_middle", || {});
    let reports = probe::aggregate();
    let once = probe::render_summary(&reports);
    let twice = probe::render_summary(&probe::aggregate());
    probe::set_mode(probe::ProbeMode::Off);
    probe::reset();

    assert_eq!(once, twice, "two renders of the same state must be identical");
    for rep in &reports {
        let names: Vec<&str> = rep.spans.iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "span rows sorted by name");
    }
    let a = once.find("a_first").expect("a_first row");
    let m = once.find("m_middle").expect("m_middle row");
    let z = once.find("z_last").expect("z_last row");
    assert!(a < m && m < z, "span rows render in name order");
    let mv = once.find("matvec_calls").expect("matvec_calls row");
    let pc = once.find("pc_applies").expect("pc_applies row");
    assert!(mv < pc, "counter rows render in name order");
}
