//! The flight recorder: an always-on, bounded ring buffer of recent
//! events, per thread.
//!
//! Every layer that can explain a failed solve feeds it — comm records
//! p2p and collective operations (op, peer, bytes, tag), the Krylov
//! monitor records per-iteration residuals and the final verdict, the
//! fault injector records every rule firing, and the resilient driver
//! records attempt starts/outcomes/swaps. The buffer is fixed-capacity
//! (default 256 records, `RSPARSE_FLIGHT_CAPACITY` overrides) and every
//! record is `Copy` with `&'static str` names, so the steady state never
//! allocates: the ring is allocated once on a thread's first record and
//! overwritten in place forever after.
//!
//! Recording is on by default — it is the black box that survives a
//! crash-landing solve — and costs one relaxed atomic load plus a
//! thread-local ring write per event. `RSPARSE_FLIGHT=off` (or
//! [`set_enabled`]) reduces every record site to the single relaxed
//! load, which is what the `flight_guard` bench pins down.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::recorder::{self, epoch};

/// Default ring capacity (records per thread) when
/// `RSPARSE_FLIGHT_CAPACITY` is unset.
pub const DEFAULT_CAPACITY: usize = 256;

/// One flight-recorder event payload. `Copy` with `&'static str` names so
/// pushing a record never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightKind {
    /// A point-to-point or collective communication operation.
    Comm {
        /// Operation name (`"send"`, `"recv"`, `"allreduce"`, ...).
        op: &'static str,
        /// World rank of the peer for p2p ops; `-1` for collectives.
        peer: i64,
        /// Bytes accounted to the op (element size for p2p, matching the
        /// byte counters).
        bytes: u64,
        /// Message tag for p2p ops; `-1` for collectives.
        tag: i64,
    },
    /// One Krylov iteration's residual norm.
    Iter {
        /// Iteration number (1-based, as the Monitor counts).
        iteration: u64,
        /// Residual norm at that iteration.
        residual: f64,
    },
    /// The verdict that stopped a Krylov solve.
    Verdict {
        /// Stable short name of the `ConvergedReason`.
        verdict: &'static str,
        /// Iterations performed when the verdict was reached.
        iteration: u64,
    },
    /// A fault-injection rule fired.
    Fault {
        /// Index of the rule within the armed `FaultPlan`.
        rule: u32,
        /// Operation the rule intercepted.
        op: &'static str,
        /// Injection kind (`"error"`, `"corrupt"`, ...).
        kind: &'static str,
    },
    /// A resilient-driver attempt transition.
    Attempt {
        /// Backend slot in the retry chain.
        slot: u32,
        /// Attempt number on that slot (1-based; 0 for swap markers).
        attempt: u32,
        /// Phase: `"start"`, `"ok"`, `"retry"`, `"swap"`, `"exhausted"`.
        phase: &'static str,
    },
}

/// A timestamped flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Microseconds since the probe epoch (shared with chrome traces).
    pub ts_us: u64,
    /// The event payload.
    pub kind: FlightKind,
}

// --------------------------------------------------------------------------
// Global on/off switch
// --------------------------------------------------------------------------

const FLIGHT_UNSET: u8 = u8::MAX;
const FLIGHT_ON: u8 = 1;
const FLIGHT_OFF: u8 = 0;

static FLIGHT: AtomicU8 = AtomicU8::new(FLIGHT_UNSET);

fn enabled_from_env() -> bool {
    match std::env::var("RSPARSE_FLIGHT") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "none" | "false"
        ),
        // Always-on by default: the black box must already be recording
        // when the failure nobody predicted arrives.
        Err(_) => true,
    }
}

/// Whether the flight recorder is capturing events. One relaxed load once
/// initialized from `RSPARSE_FLIGHT` (default on).
#[inline]
pub fn enabled() -> bool {
    let raw = FLIGHT.load(Ordering::Relaxed);
    if raw == FLIGHT_UNSET {
        let on = enabled_from_env();
        let v = if on { FLIGHT_ON } else { FLIGHT_OFF };
        let _ = FLIGHT.compare_exchange(FLIGHT_UNSET, v, Ordering::Relaxed, Ordering::Relaxed);
        on
    } else {
        raw == FLIGHT_ON
    }
}

/// Programmatically enable or disable flight recording (overrides the
/// environment). The `flight_guard` bench and tests use this.
pub fn set_enabled(on: bool) {
    FLIGHT.store(if on { FLIGHT_ON } else { FLIGHT_OFF }, Ordering::Relaxed);
}

/// Ring capacity in records per thread, read once from
/// `RSPARSE_FLIGHT_CAPACITY` (minimum 16, default [`DEFAULT_CAPACITY`]).
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("RSPARSE_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|c| c.max(16))
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

// --------------------------------------------------------------------------
// The ring
// --------------------------------------------------------------------------

/// Fixed-capacity overwrite-oldest ring. The buffer is allocated at full
/// capacity on the first push and then only overwritten.
#[derive(Debug, Default)]
pub(crate) struct FlightRing {
    buf: Vec<FlightRecord>,
    /// Next write position once the buffer is full.
    head: usize,
    /// Total records ever pushed (so readers can tell how much history
    /// the ring has discarded).
    total: u64,
}

impl FlightRing {
    #[inline]
    pub(crate) fn push(&mut self, rec: FlightRecord) {
        if self.buf.capacity() == 0 {
            // One-time allocation on the thread's first record; the
            // capacity is pinned here so the steady state never touches
            // the env-derived OnceLock again.
            self.buf.reserve_exact(capacity());
        }
        let cap = self.buf.capacity();
        if self.buf.len() < cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head += 1;
            if self.head == cap {
                self.head = 0;
            }
        }
        self.total += 1;
    }

    /// Records in chronological order (oldest retained first).
    pub(crate) fn tail(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }
}

/// Record one event into the current thread's ring. When recording is
/// disabled this is a single relaxed atomic load.
#[inline]
pub fn record(kind: FlightKind) {
    if !enabled() {
        return;
    }
    // `as_micros()` would divide a u128; seconds + subsec stay in u64.
    let e = epoch().elapsed();
    let ts_us = e.as_secs() * 1_000_000 + u64::from(e.subsec_micros());
    recorder::with_local(|r| r.flight_push(FlightRecord { ts_us, kind }));
}

/// Snapshot the current thread's ring in chronological order, plus the
/// total number of records ever pushed on this thread.
pub fn local_tail() -> (Vec<FlightRecord>, u64) {
    recorder::with_local(|r| r.flight_tail())
}

/// Snapshot every registered recorder's ring, merged by rank: ranked
/// threads first (records from threads sharing a rank interleaved by
/// timestamp), then one `None` entry for untagged threads if they
/// recorded anything.
pub fn tails_by_rank() -> Vec<(Option<usize>, Vec<FlightRecord>)> {
    use std::collections::BTreeMap;
    let mut by_rank: BTreeMap<usize, Vec<FlightRecord>> = BTreeMap::new();
    let mut unranked: Vec<FlightRecord> = Vec::new();
    for r in recorder::all_recorders() {
        let (tail, _) = r.flight_tail();
        if tail.is_empty() {
            continue;
        }
        match r.rank() {
            Some(rank) => by_rank.entry(rank).or_default().extend(tail),
            None => unranked.extend(tail),
        }
    }
    let mut out: Vec<(Option<usize>, Vec<FlightRecord>)> = Vec::new();
    for (rank, mut tail) in by_rank {
        tail.sort_by_key(|r| r.ts_us);
        out.push((Some(rank), tail));
    }
    if !unranked.is_empty() {
        unranked.sort_by_key(|r| r.ts_us);
        out.push((None, unranked));
    }
    out
}

/// Residual history reconstructed from the current thread's `Iter`
/// events, in recording order.
pub fn local_residual_history() -> Vec<f64> {
    local_tail()
        .0
        .iter()
        .filter_map(|r| match r.kind {
            FlightKind::Iter { residual, .. } => Some(residual),
            _ => None,
        })
        .collect()
}

// --------------------------------------------------------------------------
// JSON serialization
// --------------------------------------------------------------------------

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        // NaN/inf are not JSON; null keeps the document parseable and is
        // itself a diagnostic (a poisoned residual).
        "null".to_string()
    }
}

/// Serialize one record as a JSON object.
pub fn record_json(rec: &FlightRecord) -> String {
    let t = rec.ts_us;
    match rec.kind {
        FlightKind::Comm { op, peer, bytes, tag } => format!(
            "{{\"t_us\":{t},\"type\":\"comm\",\"op\":\"{op}\",\"peer\":{peer},\"bytes\":{bytes},\"tag\":{tag}}}"
        ),
        FlightKind::Iter { iteration, residual } => format!(
            "{{\"t_us\":{t},\"type\":\"iter\",\"iteration\":{iteration},\"residual\":{}}}",
            json_f64(residual)
        ),
        FlightKind::Verdict { verdict, iteration } => format!(
            "{{\"t_us\":{t},\"type\":\"verdict\",\"verdict\":\"{verdict}\",\"iteration\":{iteration}}}"
        ),
        FlightKind::Fault { rule, op, kind } => format!(
            "{{\"t_us\":{t},\"type\":\"fault\",\"rule\":{rule},\"op\":\"{op}\",\"kind\":\"{kind}\"}}"
        ),
        FlightKind::Attempt { slot, attempt, phase } => format!(
            "{{\"t_us\":{t},\"type\":\"attempt\",\"slot\":{slot},\"attempt\":{attempt},\"phase\":\"{phase}\"}}"
        ),
    }
}

/// Serialize a slice of records as a JSON array.
pub fn tail_json(records: &[FlightRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&record_json(r));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The flight switch is process-global; serialize against other tests
    // that flip it (none today, but the ring state is shared per thread).
    use std::sync::Mutex;
    static FLIGHT_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn ring_wraps_and_keeps_the_newest_records() {
        let _g = FLIGHT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cap = capacity();
        let mut ring = FlightRing::default();
        let n = (cap + 10) as u64;
        for i in 0..n {
            ring.push(FlightRecord {
                ts_us: i,
                kind: FlightKind::Iter { iteration: i, residual: 1.0 },
            });
        }
        let tail = ring.tail();
        assert_eq!(tail.len(), cap);
        assert_eq!(ring.total(), n);
        // Oldest retained record is exactly total - capacity.
        assert_eq!(tail.first().unwrap().ts_us, n - cap as u64);
        assert_eq!(tail.last().unwrap().ts_us, n - 1);
        // Strictly chronological.
        assert!(tail.windows(2).all(|w| w[0].ts_us < w[1].ts_us));
    }

    #[test]
    fn disabled_records_nothing_and_enabled_records_in_order() {
        let _g = FLIGHT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        set_enabled(false);
        record(FlightKind::Iter { iteration: 1, residual: 0.5 });
        assert!(local_tail().0.is_empty(), "disabled recorder must drop events");
        set_enabled(true);
        record(FlightKind::Comm { op: "send", peer: 1, bytes: 8, tag: 7 });
        record(FlightKind::Verdict { verdict: "diverged", iteration: 3 });
        let (tail, total) = local_tail();
        assert_eq!(total, 2);
        assert!(matches!(tail[0].kind, FlightKind::Comm { op: "send", .. }));
        assert!(matches!(tail[1].kind, FlightKind::Verdict { .. }));
        set_enabled(true);
        crate::reset();
    }

    #[test]
    fn records_serialize_as_json_objects() {
        let recs = [
            FlightRecord { ts_us: 1, kind: FlightKind::Comm { op: "recv", peer: 2, bytes: 8, tag: 7001 } },
            FlightRecord { ts_us: 2, kind: FlightKind::Iter { iteration: 4, residual: f64::NAN } },
            FlightRecord { ts_us: 3, kind: FlightKind::Fault { rule: 0, op: "allreduce", kind: "corrupt" } },
            FlightRecord { ts_us: 4, kind: FlightKind::Attempt { slot: 1, attempt: 2, phase: "start" } },
        ];
        let json = tail_json(&recs);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"type\":\"comm\""));
        assert!(json.contains("\"residual\":null"), "NaN must serialize as null: {json}");
        assert!(json.contains("\"rule\":0"));
        assert!(json.contains("\"phase\":\"start\""));
        let (mut braces, mut brackets) = (0i64, 0i64);
        for c in json.chars() {
            match c {
                '{' => braces += 1,
                '}' => braces -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!((braces, brackets), (0, 0));
    }
}
