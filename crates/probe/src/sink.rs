//! Report assembly and output sinks: per-rank summary tables, the
//! Table-1-style setup/solve/port-overhead breakdown, JSON lines, and
//! chrome://tracing export.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::counter::{Counter, COUNTER_COUNT};
use crate::recorder::{self, Recorder};

/// Aggregated statistics for one span name (see [`RankReport::spans`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name as given to [`crate::span!`].
    pub name: &'static str,
    /// Number of times the span closed.
    pub calls: u64,
    /// Total (inclusive) wall-clock seconds.
    pub total_s: f64,
    /// Self (exclusive) wall-clock seconds: total minus time spent in
    /// child spans.
    pub self_s: f64,
}

/// A snapshot of one rank's counters and spans (or of the current thread,
/// via [`local_report`]).
#[derive(Debug, Clone)]
pub struct RankReport {
    /// SPMD rank, if the recording thread was tagged via
    /// [`crate::set_rank`]; `None` for untagged threads.
    pub rank: Option<usize>,
    counters: [u64; COUNTER_COUNT],
    /// Spans sorted by descending total time.
    pub spans: Vec<SpanSummary>,
}

impl RankReport {
    /// Read one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Look up a span summary by name.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Total self-seconds of all `port:*` spans — the component-layer
    /// overhead this rank spent crossing the CCA port boundary.
    pub fn port_self_seconds(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with("port:"))
            .map(|s| s.self_s)
            .sum()
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.iter().all(|&c| c == 0)
    }

    fn from_parts(rank: Option<usize>, counters: [u64; COUNTER_COUNT], spans: Vec<SpanSummary>) -> RankReport {
        let mut report = RankReport { rank, counters, spans };
        report
            .spans
            .sort_by(|a, b| b.total_s.total_cmp(&a.total_s).then(a.name.cmp(b.name)));
        report
    }
}

fn ns_to_s(ns: u64) -> f64 {
    ns as f64 * 1e-9
}

fn snapshot(recorders: &[std::sync::Arc<Recorder>], rank: Option<usize>) -> RankReport {
    let mut counters = [0u64; COUNTER_COUNT];
    let mut spans: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for r in recorders {
        for c in Counter::ALL {
            counters[c as usize] += r.counter(c);
        }
        let locked = r.spans.lock().unwrap_or_else(|e| e.into_inner());
        for (name, stat) in locked.iter() {
            let slot = spans.entry(name).or_insert((0, 0, 0));
            slot.0 += stat.calls;
            slot.1 += stat.total_ns;
            slot.2 += stat.child_ns;
        }
    }
    let spans = spans
        .into_iter()
        .map(|(name, (calls, total_ns, child_ns))| SpanSummary {
            name,
            calls,
            total_s: ns_to_s(total_ns),
            self_s: ns_to_s(total_ns.saturating_sub(child_ns)),
        })
        .collect();
    RankReport::from_parts(rank, counters, spans)
}

/// Snapshot the current thread's recorder only. This is what tests use
/// inside SPMD rank closures: each rank thread sees exactly its own
/// counters and spans.
pub fn local_report() -> RankReport {
    let arc = recorder::local_arc();
    snapshot(std::slice::from_ref(&arc), arc.rank())
}

/// Merge every recorder created since the last [`crate::reset`] into
/// per-rank reports: ranked threads first (sorted by rank, recorders
/// sharing a rank combined), then at most one report for untagged
/// threads. Empty recorders are skipped.
pub fn aggregate() -> Vec<RankReport> {
    let mut by_rank: BTreeMap<usize, Vec<std::sync::Arc<Recorder>>> = BTreeMap::new();
    let mut unranked: Vec<std::sync::Arc<Recorder>> = Vec::new();
    for r in recorder::all_recorders() {
        match r.rank() {
            Some(rank) => by_rank.entry(rank).or_default().push(r),
            None => unranked.push(r),
        }
    }
    let mut reports: Vec<RankReport> = Vec::new();
    for (rank, rs) in by_rank {
        let rep = snapshot(&rs, Some(rank));
        if !rep.is_empty() {
            reports.push(rep);
        }
    }
    if !unranked.is_empty() {
        let rep = snapshot(&unranked, None);
        if !rep.is_empty() {
            reports.push(rep);
        }
    }
    reports
}

fn rank_label(rank: Option<usize>) -> String {
    match rank {
        Some(r) => format!("rank {r}"),
        None => "unranked".to_string(),
    }
}

/// Render the full per-rank summary: every nonzero counter and every span
/// (calls, total seconds, self seconds), one block per rank.
pub fn render_summary(reports: &[RankReport]) -> String {
    let mut out = String::new();
    if reports.is_empty() {
        return "probe: nothing recorded\n".to_string();
    }
    for rep in reports {
        let _ = writeln!(out, "== probe summary: {} ==", rank_label(rep.rank));
        let nonzero: Vec<Counter> = Counter::ALL
            .into_iter()
            .filter(|&c| rep.counter(c) > 0)
            .collect();
        if !nonzero.is_empty() {
            let _ = writeln!(out, "  counters:");
            for c in nonzero {
                let _ = writeln!(out, "    {:<22} {:>12}", c.name(), rep.counter(c));
            }
        }
        if !rep.spans.is_empty() {
            let _ = writeln!(
                out,
                "  spans: {:<22} {:>8} {:>12} {:>12}",
                "name", "calls", "total (s)", "self (s)"
            );
            for s in &rep.spans {
                let _ = writeln!(
                    out,
                    "         {:<22} {:>8} {:>12.6} {:>12.6}",
                    s.name, s.calls, s.total_s, s.self_s
                );
            }
        }
    }
    out
}

/// Render the Table-1-style breakdown: one row per rank with native and
/// CCA setup/solve seconds plus the port-crossing overhead (self time of
/// all `port:*` spans) measured by the framework itself.
pub fn render_breakdown(reports: &[RankReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "rank", "native setup", "native solve", "cca setup", "cca solve", "port self (s)", "port calls"
    );
    let span_total = |rep: &RankReport, name: &str| -> f64 {
        rep.span(name).map(|s| s.total_s).unwrap_or(0.0)
    };
    for rep in reports {
        let _ = writeln!(
            out,
            "{:<10} {:>14.6} {:>14.6} {:>14.6} {:>14.6} {:>14.6} {:>10}",
            rank_label(rep.rank),
            span_total(rep, "native_setup"),
            span_total(rep, "native_solve"),
            span_total(rep, "cca_setup"),
            span_total(rep, "cca_solve"),
            rep.port_self_seconds(),
            rep.counter(Counter::PortCalls),
        );
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one JSON object per rank (JSON lines): all nonzero counters and
/// all spans.
pub fn render_jsonl(reports: &[RankReport]) -> String {
    let mut out = String::new();
    for rep in reports {
        out.push('{');
        match rep.rank {
            Some(r) => {
                let _ = write!(out, "\"rank\":{r}");
            }
            None => out.push_str("\"rank\":null"),
        }
        out.push_str(",\"counters\":{");
        let mut first = true;
        for c in Counter::ALL {
            let v = rep.counter(c);
            if v > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{v}", c.name());
            }
        }
        out.push_str("},\"spans\":[");
        for (i, s) in rep.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"calls\":{},\"total_s\":{:e},\"self_s\":{:e}}}",
                escape_json(s.name),
                s.calls,
                s.total_s,
                s.self_s
            );
        }
        out.push_str("]}\n");
    }
    out
}

/// Serialize every recorded chrome event into a chrome://tracing
/// (`trace_event` format) JSON document. Load the result via
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json() -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut dropped: u64 = 0;
    for r in recorder::all_recorders() {
        dropped += r.dropped_events.load(std::sync::atomic::Ordering::Relaxed);
        let events = r.events.lock().unwrap_or_else(|e| e.into_inner());
        for e in events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let tid = e.rank.map(|r| r as u64).unwrap_or(999);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"probe\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                escape_json(e.name),
                e.ts_us,
                e.dur_us,
                tid
            );
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{dropped}}}}}"
    );
    out
}

/// Write [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}
