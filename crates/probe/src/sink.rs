//! Report assembly and output sinks: per-rank summary tables, the
//! Table-1-style setup/solve/port-overhead breakdown, JSON lines, and
//! chrome://tracing export.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::counter::{Counter, COUNTER_COUNT};
use crate::hist::{self, Hist, HistSummary, BUCKETS, HIST_COUNT};
use crate::model::{KernelEfficiency, KernelModel, Roofline, TimeBase, WorkUnit};
use crate::recorder::{self, PeerStat, Recorder};

/// Aggregated statistics for one span name (see [`RankReport::spans`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name as given to [`crate::span!`].
    pub name: &'static str,
    /// Number of times the span closed.
    pub calls: u64,
    /// Total (inclusive) wall-clock seconds.
    pub total_s: f64,
    /// Self (exclusive) wall-clock seconds: total minus time spent in
    /// child spans.
    pub self_s: f64,
}

/// A snapshot of one rank's counters and spans (or of the current thread,
/// via [`local_report`]).
#[derive(Debug, Clone)]
pub struct RankReport {
    /// SPMD rank, if the recording thread was tagged via
    /// [`crate::set_rank`]; `None` for untagged threads.
    pub rank: Option<usize>,
    counters: [u64; COUNTER_COUNT],
    /// Spans sorted by name, so rendered reports diff cleanly between
    /// runs (wall-clock ordering varies run to run).
    pub spans: Vec<SpanSummary>,
    /// Per-peer send accounting (world rank → messages/bytes), mirroring
    /// `SendsPosted`/`BytesSent` exactly.
    pub peer_sends: BTreeMap<usize, PeerStat>,
    /// Per-peer receive accounting (world rank → messages/bytes),
    /// mirroring `RecvsCompleted`/`BytesReceived` exactly.
    pub peer_recvs: BTreeMap<usize, PeerStat>,
    /// Free-form annotations recorded via [`crate::note`] (key → latest
    /// value), e.g. `"format" → "sell"`.
    pub notes: BTreeMap<&'static str, String>,
    /// Merged log2 latency buckets, one row per [`Hist`] family.
    hist_counts: [[u64; BUCKETS]; HIST_COUNT],
    /// Total recorded nanoseconds per [`Hist`] family.
    hist_sums: [u64; HIST_COUNT],
    /// Static kernel work models registered via [`crate::model::register`]
    /// (kernel name → model; merged last-wins across recorders).
    pub models: BTreeMap<&'static str, KernelModel>,
}

impl RankReport {
    /// Read one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Look up a span summary by name.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a note recorded via [`crate::note`].
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes.get(key).map(String::as_str)
    }

    /// Total self-seconds of all `port:*` spans — the component-layer
    /// overhead this rank spent crossing the CCA port boundary.
    pub fn port_self_seconds(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with("port:"))
            .map(|s| s.self_s)
            .sum()
    }

    /// Quantile summary of one latency histogram family.
    pub fn hist(&self, h: Hist) -> HistSummary {
        hist::summarize(&self.hist_counts[h as usize], self.hist_sums[h as usize])
    }

    /// Raw merged buckets and nanosecond sum of one histogram family
    /// (what the Prometheus exporter emits as cumulative `le` buckets).
    pub fn hist_buckets(&self, h: Hist) -> ([u64; BUCKETS], u64) {
        (self.hist_counts[h as usize], self.hist_sums[h as usize])
    }

    /// Join every registered kernel model with this rank's measurements:
    /// units executed (span calls or a counter, per the model), measured
    /// seconds (span total or self time), modelled flops/bytes and the
    /// derived GF/s, GB/s, arithmetic intensity and — when a roofline is
    /// supplied — percentage of attainable bandwidth. Kernels with no
    /// recorded units are skipped.
    pub fn kernel_efficiency(&self, roofline: Option<&Roofline>) -> Vec<KernelEfficiency> {
        let mut rows = Vec::new();
        for (&name, model) in &self.models {
            let units = match model.unit {
                WorkUnit::SpanCalls => self.span(model.span).map(|s| s.calls).unwrap_or(0),
                WorkUnit::Counter(c) => self.counter(c),
            };
            if units == 0 {
                continue;
            }
            let seconds = self
                .span(model.span)
                .map(|s| match model.time {
                    TimeBase::Total => s.total_s,
                    TimeBase::SelfTime => s.self_s,
                })
                .unwrap_or(0.0);
            let flops = units * model.flops;
            let bytes = units * model.bytes;
            let (gflops, gbs) = if seconds > 0.0 {
                (flops as f64 / seconds / 1e9, bytes as f64 / seconds / 1e9)
            } else {
                (0.0, 0.0)
            };
            let ai = if bytes > 0 { flops as f64 / bytes as f64 } else { 0.0 };
            let pct_of_roofline = roofline
                .filter(|r| r.copy_gbs > 0.0)
                .map(|r| 100.0 * gbs / r.copy_gbs);
            rows.push(KernelEfficiency {
                name,
                span: model.span,
                units,
                seconds,
                flops,
                bytes,
                gflops,
                gbs,
                ai,
                pct_of_roofline,
                nrhs: model.nrhs,
            });
        }
        rows
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.iter().all(|&c| c == 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        rank: Option<usize>,
        counters: [u64; COUNTER_COUNT],
        spans: Vec<SpanSummary>,
        peer_sends: BTreeMap<usize, PeerStat>,
        peer_recvs: BTreeMap<usize, PeerStat>,
        notes: BTreeMap<&'static str, String>,
        hist_counts: [[u64; BUCKETS]; HIST_COUNT],
        hist_sums: [u64; HIST_COUNT],
        models: BTreeMap<&'static str, KernelModel>,
    ) -> RankReport {
        let mut report = RankReport {
            rank,
            counters,
            spans,
            peer_sends,
            peer_recvs,
            notes,
            hist_counts,
            hist_sums,
            models,
        };
        // Name order, not time order: output must be stable across runs.
        report.spans.sort_by(|a, b| a.name.cmp(b.name));
        report
    }
}

fn ns_to_s(ns: u64) -> f64 {
    ns as f64 * 1e-9
}

fn snapshot(recorders: &[std::sync::Arc<Recorder>], rank: Option<usize>) -> RankReport {
    let mut counters = [0u64; COUNTER_COUNT];
    let mut spans: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    let mut peer_sends: BTreeMap<usize, PeerStat> = BTreeMap::new();
    let mut peer_recvs: BTreeMap<usize, PeerStat> = BTreeMap::new();
    let mut notes: BTreeMap<&'static str, String> = BTreeMap::new();
    let mut hist_counts = [[0u64; BUCKETS]; HIST_COUNT];
    let mut hist_sums = [0u64; HIST_COUNT];
    let mut models: BTreeMap<&'static str, KernelModel> = BTreeMap::new();
    for r in recorders {
        for c in Counter::ALL {
            counters[c as usize] += r.counter(c);
        }
        let locked = r.spans.lock().unwrap_or_else(|e| e.into_inner());
        for (name, stat) in locked.iter() {
            let slot = spans.entry(name).or_insert((0, 0, 0));
            slot.0 += stat.calls;
            slot.1 += stat.total_ns;
            slot.2 += stat.child_ns;
        }
        drop(locked);
        for (map, src) in [(&mut peer_sends, &r.peer_sends), (&mut peer_recvs, &r.peer_recvs)] {
            let locked = src.lock().unwrap_or_else(|e| e.into_inner());
            for (&peer, stat) in locked.iter() {
                let slot = map.entry(peer).or_default();
                slot.msgs += stat.msgs;
                slot.bytes += stat.bytes;
            }
        }
        let locked = r.notes.lock().unwrap_or_else(|e| e.into_inner());
        for (&key, value) in locked.iter() {
            notes.insert(key, value.clone());
        }
        for h in hist::ALL {
            let (buckets, sum) = r.hist_snapshot(h);
            for (slot, b) in hist_counts[h as usize].iter_mut().zip(buckets) {
                *slot += b;
            }
            hist_sums[h as usize] += sum;
        }
        // Like notes: last recorder wins per kernel (repeated setups on
        // one rank re-register the model for the operator now in use).
        for (name, m) in r.models_snapshot() {
            models.insert(name, m);
        }
    }
    let spans = spans
        .into_iter()
        .map(|(name, (calls, total_ns, child_ns))| SpanSummary {
            name,
            calls,
            total_s: ns_to_s(total_ns),
            self_s: ns_to_s(total_ns.saturating_sub(child_ns)),
        })
        .collect();
    RankReport::from_parts(
        rank, counters, spans, peer_sends, peer_recvs, notes, hist_counts, hist_sums, models,
    )
}

/// Snapshot the current thread's recorder only. This is what tests use
/// inside SPMD rank closures: each rank thread sees exactly its own
/// counters and spans.
pub fn local_report() -> RankReport {
    let arc = recorder::local_arc();
    snapshot(std::slice::from_ref(&arc), arc.rank())
}

/// Merge every recorder created since the last [`crate::reset`] into
/// per-rank reports: ranked threads first (sorted by rank, recorders
/// sharing a rank combined), then at most one report for untagged
/// threads. Empty recorders are skipped.
pub fn aggregate() -> Vec<RankReport> {
    let mut by_rank: BTreeMap<usize, Vec<std::sync::Arc<Recorder>>> = BTreeMap::new();
    let mut unranked: Vec<std::sync::Arc<Recorder>> = Vec::new();
    for r in recorder::all_recorders() {
        match r.rank() {
            Some(rank) => by_rank.entry(rank).or_default().push(r),
            None => unranked.push(r),
        }
    }
    let mut reports: Vec<RankReport> = Vec::new();
    for (rank, rs) in by_rank {
        let rep = snapshot(&rs, Some(rank));
        if !rep.is_empty() {
            reports.push(rep);
        }
    }
    if !unranked.is_empty() {
        let rep = snapshot(&unranked, None);
        if !rep.is_empty() {
            reports.push(rep);
        }
    }
    reports
}

fn rank_label(rank: Option<usize>) -> String {
    match rank {
        Some(r) => format!("rank {r}"),
        None => "unranked".to_string(),
    }
}

/// Render the full per-rank summary: every nonzero counter and every span
/// (calls, total seconds, self seconds), one block per rank.
pub fn render_summary(reports: &[RankReport]) -> String {
    let mut out = String::new();
    if reports.is_empty() {
        return "probe: nothing recorded\n".to_string();
    }
    let roofline = crate::model::roofline();
    for rep in reports {
        let _ = writeln!(out, "== probe summary: {} ==", rank_label(rep.rank));
        if !rep.notes.is_empty() {
            let _ = writeln!(out, "  notes:");
            for (key, value) in &rep.notes {
                let _ = writeln!(out, "    {key:<22} {value}");
            }
        }
        let mut nonzero: Vec<Counter> = Counter::ALL
            .into_iter()
            .filter(|&c| rep.counter(c) > 0)
            .collect();
        // Name order, not declaration order: stable diffs between runs.
        nonzero.sort_by_key(|c| c.name());
        if !nonzero.is_empty() {
            let _ = writeln!(out, "  counters:");
            for c in nonzero {
                let _ = writeln!(out, "    {:<22} {:>12}", c.name(), rep.counter(c));
            }
        }
        if !rep.spans.is_empty() {
            let _ = writeln!(
                out,
                "  spans: {:<22} {:>8} {:>12} {:>12}",
                "name", "calls", "total (s)", "self (s)"
            );
            for s in &rep.spans {
                let _ = writeln!(
                    out,
                    "         {:<22} {:>8} {:>12.6} {:>12.6}",
                    s.name, s.calls, s.total_s, s.self_s
                );
            }
        }
        let live: Vec<(Hist, HistSummary)> = hist::ALL
            .into_iter()
            .map(|h| (h, rep.hist(h)))
            .filter(|(_, s)| s.count > 0)
            .collect();
        if !live.is_empty() {
            let _ = writeln!(
                out,
                "  hists: {:<22} {:>8} {:>11} {:>11} {:>11} {:>11}",
                "name", "count", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)"
            );
            for (h, s) in live {
                let _ = writeln!(
                    out,
                    "         {:<22} {:>8} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e}",
                    h.name(),
                    s.count,
                    s.p50_s,
                    s.p90_s,
                    s.p99_s,
                    s.max_s
                );
            }
        }
        let eff = rep.kernel_efficiency(roofline.as_ref());
        if !eff.is_empty() {
            let _ = writeln!(
                out,
                "  kernels: {:<18} {:>8} {:>11} {:>8} {:>8} {:>7} {:>7}",
                "name", "units", "seconds", "GF/s", "GB/s", "AI", "%roof"
            );
            for e in &eff {
                let pct = match e.pct_of_roofline {
                    Some(p) => format!("{p:>6.1}%"),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    out,
                    "           {:<18} {:>8} {:>11.6} {:>8.3} {:>8.3} {:>7.3} {:>7}",
                    e.name, e.units, e.seconds, e.gflops, e.gbs, e.ai, pct
                );
            }
            if let Some(r) = &roofline {
                let _ = writeln!(
                    out,
                    "           (roofline: {:.1} GB/s copy, {:.1} GB/s triad)",
                    r.copy_gbs, r.triad_gbs
                );
            }
        }
    }
    out.push_str(&render_imbalance(reports));
    out.push_str(&render_wait_attribution(reports));
    out.push_str(&render_comm_matrix(reports));
    out
}

/// Ranked reports only, in rank order (the cross-rank analytics ignore
/// untagged threads).
fn ranked(reports: &[RankReport]) -> Vec<&RankReport> {
    reports.iter().filter(|r| r.rank.is_some()).collect()
}

/// (min, mean, max, max/mean) over a non-empty slice.
fn spread(values: &[f64]) -> (f64, f64, f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let imb = if mean > 0.0 { max / mean } else { 1.0 };
    (min, mean, max, imb)
}

/// Cross-rank per-span imbalance table: min/mean/max total seconds across
/// ranks plus the imbalance ratio max/mean (1.00 = perfectly balanced).
/// Empty unless at least two ranked reports carry spans.
pub fn render_imbalance(reports: &[RankReport]) -> String {
    let ranked = ranked(reports);
    if ranked.len() < 2 {
        return String::new();
    }
    let mut names: Vec<&'static str> = Vec::new();
    for rep in &ranked {
        for s in &rep.spans {
            if !names.contains(&s.name) {
                names.push(s.name);
            }
        }
    }
    if names.is_empty() {
        return String::new();
    }
    // Order by descending mean total so the heaviest spans lead.
    let mut rows: Vec<(&'static str, f64, f64, f64, f64)> = names
        .into_iter()
        .map(|name| {
            let totals: Vec<f64> = ranked
                .iter()
                .map(|rep| rep.span(name).map(|s| s.total_s).unwrap_or(0.0))
                .collect();
            let (min, mean, max, imb) = spread(&totals);
            (name, min, mean, max, imb)
        })
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(b.0)));
    let mut out = String::new();
    let _ = writeln!(out, "== cross-rank span imbalance ({} ranks) ==", ranked.len());
    let _ = writeln!(
        out,
        "  {:<22} {:>12} {:>12} {:>12} {:>8}",
        "span", "min (s)", "mean (s)", "max (s)", "max/mean"
    );
    for (name, min, mean, max, imb) in rows {
        let _ = writeln!(out, "  {name:<22} {min:>12.6} {mean:>12.6} {max:>12.6} {imb:>8.2}");
    }
    out
}

/// Spans that are time spent *blocked* on a peer rather than computing:
/// draining halo receives and riding reductions.
const WAIT_SPANS: [&str; 3] = ["halo_drain", "halo_post", "allreduce"];

/// Spans that are local sparse compute.
const COMPUTE_SPANS: [&str; 2] = ["spmv_interior", "spmv_boundary"];

/// Wait-time attribution per rank: seconds blocked in the halo exchange
/// and in reductions versus seconds spent in local SpMV compute, plus the
/// blocked fraction. Empty when no rank recorded any of those spans.
pub fn render_wait_attribution(reports: &[RankReport]) -> String {
    let ranked = ranked(reports);
    let total_of = |rep: &RankReport, names: &[&str]| -> f64 {
        names.iter().filter_map(|n| rep.span(n)).map(|s| s.total_s).sum()
    };
    let rows: Vec<(String, f64, f64, f64)> = ranked
        .iter()
        .map(|rep| {
            let halo = total_of(rep, &WAIT_SPANS[..2]);
            let reduce = total_of(rep, &WAIT_SPANS[2..]);
            let compute = total_of(rep, &COMPUTE_SPANS);
            (rank_label(rep.rank), halo, reduce, compute)
        })
        .filter(|(_, h, r, c)| *h > 0.0 || *r > 0.0 || *c > 0.0)
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "== wait attribution ==");
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>14} {:>14} {:>10}",
        "rank", "halo wait (s)", "reduce (s)", "compute (s)", "blocked"
    );
    for (label, halo, reduce, compute) in rows {
        let wait = halo + reduce;
        let denom = wait + compute;
        let frac = if denom > 0.0 { wait / denom } else { 0.0 };
        let _ = writeln!(
            out,
            "  {:<10} {:>14.6} {:>14.6} {:>14.6} {:>9.1}%",
            label,
            halo,
            reduce,
            compute,
            frac * 100.0
        );
    }
    out
}

/// The rank×rank communication matrix built from the per-peer send
/// accounting: `msgs[r][q]`/`bytes[r][q]` is what world rank `ranks[r]`
/// sent to world rank `ranks[q]`. Row totals equal each sender's
/// `SendsPosted`/`BytesSent` counters; column totals equal each
/// receiver's `RecvsCompleted`/`BytesReceived` (for completed traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    /// World ranks indexing the rows/columns, ascending.
    pub ranks: Vec<usize>,
    /// Messages sent, row = sender, column = receiver.
    pub msgs: Vec<Vec<u64>>,
    /// Bytes sent, row = sender, column = receiver.
    pub bytes: Vec<Vec<u64>>,
}

/// Build the [`CommMatrix`] from aggregated reports (sender-side
/// accounting). Peers that appear only as destinations still get a
/// column.
pub fn comm_matrix(reports: &[RankReport]) -> CommMatrix {
    let mut ranks: Vec<usize> = Vec::new();
    for rep in reports {
        if let Some(r) = rep.rank {
            if !ranks.contains(&r) {
                ranks.push(r);
            }
        }
        for &peer in rep.peer_sends.keys().chain(rep.peer_recvs.keys()) {
            if !ranks.contains(&peer) {
                ranks.push(peer);
            }
        }
    }
    ranks.sort_unstable();
    let n = ranks.len();
    let idx = |r: usize| ranks.iter().position(|&x| x == r);
    let mut msgs = vec![vec![0u64; n]; n];
    let mut bytes = vec![vec![0u64; n]; n];
    for rep in reports {
        let Some(row) = rep.rank.and_then(idx) else { continue };
        for (&peer, stat) in &rep.peer_sends {
            if let Some(col) = idx(peer) {
                msgs[row][col] += stat.msgs;
                bytes[row][col] += stat.bytes;
            }
        }
    }
    CommMatrix { ranks, msgs, bytes }
}

/// Render the rank×rank communication matrix (`messages/bytes` cells,
/// rows = sender, columns = receiver). Empty when no p2p traffic was
/// recorded.
pub fn render_comm_matrix(reports: &[RankReport]) -> String {
    let m = comm_matrix(reports);
    if m.ranks.is_empty() || m.msgs.iter().flatten().all(|&v| v == 0) {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "== comm matrix (messages/bytes, row sends to column) ==");
    let _ = write!(out, "  {:<8}", "from\\to");
    for &q in &m.ranks {
        let _ = write!(out, " {:>14}", format!("r{q}"));
    }
    out.push('\n');
    for (i, &r) in m.ranks.iter().enumerate() {
        let _ = write!(out, "  {:<8}", format!("r{r}"));
        for j in 0..m.ranks.len() {
            let cell = if m.msgs[i][j] == 0 {
                ".".to_string()
            } else {
                format!("{}/{}", m.msgs[i][j], m.bytes[i][j])
            };
            let _ = write!(out, " {cell:>14}");
        }
        out.push('\n');
    }
    out
}

/// Render the flight-recorder tails of every rank as JSON lines, one
/// `{"rank":..,"events":[...]}` object per rank. This is what the
/// drivers print under `RSPARSE_PROBE=flight`.
pub fn render_flight() -> String {
    let mut out = String::new();
    for (rank, tail) in crate::flight::tails_by_rank() {
        match rank {
            Some(r) => {
                let _ = write!(out, "{{\"rank\":{r},");
            }
            None => out.push_str("{\"rank\":null,"),
        }
        let _ = writeln!(out, "\"events\":{}}}", crate::flight::tail_json(&tail));
    }
    out
}

/// Render the Table-1-style breakdown: one row per rank with native and
/// CCA setup/solve seconds plus the port-crossing overhead (self time of
/// all `port:*` spans) measured by the framework itself. With two or
/// more ranked rows, min/mean/max/imbalance summary rows follow (the
/// imbalance row is each column's max/mean ratio; 1.00 = balanced).
pub fn render_breakdown(reports: &[RankReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "rank", "native setup", "native solve", "cca setup", "cca solve", "port self (s)", "port calls"
    );
    let span_total = |rep: &RankReport, name: &str| -> f64 {
        rep.span(name).map(|s| s.total_s).unwrap_or(0.0)
    };
    let columns = |rep: &RankReport| -> [f64; 5] {
        [
            span_total(rep, "native_setup"),
            span_total(rep, "native_solve"),
            span_total(rep, "cca_setup"),
            span_total(rep, "cca_solve"),
            rep.port_self_seconds(),
        ]
    };
    for rep in reports {
        let c = columns(rep);
        let _ = writeln!(
            out,
            "{:<10} {:>14.6} {:>14.6} {:>14.6} {:>14.6} {:>14.6} {:>10}",
            rank_label(rep.rank),
            c[0],
            c[1],
            c[2],
            c[3],
            c[4],
            rep.counter(Counter::PortCalls),
        );
    }
    let ranked = ranked(reports);
    if ranked.len() >= 2 {
        let per_column: Vec<[f64; 5]> = ranked.iter().map(|rep| columns(rep)).collect();
        let stat = |pick: fn(&(f64, f64, f64, f64)) -> f64| -> [f64; 5] {
            std::array::from_fn(|j| {
                let vals: Vec<f64> = per_column.iter().map(|row| row[j]).collect();
                pick(&spread(&vals))
            })
        };
        for (label, row) in [
            ("min", stat(|s| s.0)),
            ("mean", stat(|s| s.1)),
            ("max", stat(|s| s.2)),
        ] {
            let _ = writeln!(
                out,
                "{:<10} {:>14.6} {:>14.6} {:>14.6} {:>14.6} {:>14.6} {:>10}",
                label, row[0], row[1], row[2], row[3], row[4], ""
            );
        }
        let imb = stat(|s| s.3);
        let _ = writeln!(
            out,
            "{:<10} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>10}",
            "imbalance", imb[0], imb[1], imb[2], imb[3], imb[4], ""
        );
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one JSON object per rank (JSON lines): all nonzero counters and
/// all spans.
pub fn render_jsonl(reports: &[RankReport]) -> String {
    let mut out = String::new();
    for rep in reports {
        out.push('{');
        match rep.rank {
            Some(r) => {
                let _ = write!(out, "\"rank\":{r}");
            }
            None => out.push_str("\"rank\":null"),
        }
        out.push_str(",\"counters\":{");
        let mut first = true;
        for c in Counter::ALL {
            let v = rep.counter(c);
            if v > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{v}", c.name());
            }
        }
        out.push_str("},\"notes\":{");
        for (i, (key, value)) in rep.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(key), escape_json(value));
        }
        out.push_str("},\"spans\":[");
        for (i, s) in rep.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"calls\":{},\"total_s\":{:e},\"self_s\":{:e}}}",
                escape_json(s.name),
                s.calls,
                s.total_s,
                s.self_s
            );
        }
        out.push_str("]}\n");
    }
    out
}

/// Serialize every recorded chrome event into one merged chrome://tracing
/// (`trace_event` format) JSON document for the whole cohort: `pid` is
/// the SPMD rank (999 for untagged threads), `tid` is the recording
/// thread, so repeated launches and multi-threaded ranks each keep their
/// own lane instead of overwriting one another. Load the result via
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json() -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut dropped: u64 = 0;
    let mut pids: Vec<u64> = Vec::new();
    for r in recorder::all_recorders() {
        dropped += r.dropped_events.load(std::sync::atomic::Ordering::Relaxed);
        let events = r.events.lock().unwrap_or_else(|e| e.into_inner());
        for e in events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let pid = e.rank.map(|r| r as u64).unwrap_or(999);
            if !pids.contains(&pid) {
                pids.push(pid);
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"probe\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                escape_json(e.name),
                e.ts_us,
                e.dur_us,
                pid,
                e.thread
            );
        }
    }
    // Name each rank's process lane in the viewer.
    pids.sort_unstable();
    for pid in pids {
        let label = if pid == 999 { "unranked".to_string() } else { format!("rank {pid}") };
        let _ = write!(
            out,
            ",{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{label}\"}}}}"
        );
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{dropped},\
         \"kernelEfficiency\":{}}}}}",
        kernel_efficiency_json(&aggregate())
    );
    out
}

/// Per-rank kernel-efficiency rows as a JSON array (embedded into the
/// chrome trace's `otherData` and reusable by other structured sinks).
pub fn kernel_efficiency_json(reports: &[RankReport]) -> String {
    let roofline = crate::model::roofline();
    let mut out = String::from("[");
    let mut first = true;
    for rep in reports {
        for e in rep.kernel_efficiency(roofline.as_ref()) {
            if !first {
                out.push(',');
            }
            first = false;
            let rank = match rep.rank {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            };
            let pct = match e.pct_of_roofline {
                Some(p) => format!("{p:.3}"),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"rank\":{rank},\"kernel\":\"{}\",\"span\":\"{}\",\"units\":{},\
                 \"nrhs\":{},\"seconds\":{:e},\"flops\":{},\"bytes\":{},\"gflops\":{:.6},\
                 \"gbs\":{:.6},\"ai\":{:.6},\"pct_of_roofline\":{pct}}}",
                escape_json(e.name),
                escape_json(e.span),
                e.units,
                e.nrhs,
                e.seconds,
                e.flops,
                e.bytes,
                e.gflops,
                e.gbs,
                e.ai,
            );
        }
    }
    out.push(']');
    out
}

/// Write [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}
