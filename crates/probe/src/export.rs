//! Live telemetry export: Prometheus text format over localhost TCP.
//!
//! [`snapshot`] renders every counter, span total and latency histogram
//! in the recorder registry as Prometheus text exposition (version
//! 0.0.4) — the one-shot API a driving service polls per session.
//! [`serve`] runs a minimal HTTP/1.0 responder on a blocking
//! `std::net::TcpListener` accept loop (std-only; the probe crate takes
//! no runtime dependencies) that answers every request with a fresh
//! snapshot. [`maybe_serve_from_env`] starts it once per process when
//! `RSPARSE_METRICS_ADDR` is set (e.g. `127.0.0.1:9184`); default off.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use crate::counter::Counter;
use crate::hist;
use crate::sink::{aggregate, RankReport};

fn rank_value(rep: &RankReport) -> String {
    match rep.rank {
        Some(r) => r.to_string(),
        None => "none".to_string(),
    }
}

/// Render one Prometheus snapshot of the whole recorder registry:
/// `rsparse_<counter>_total` counters, `rsparse_span_seconds_total` /
/// `rsparse_span_calls_total` per span, and `rsparse_<hist>_seconds`
/// histograms with cumulative `le` buckets, each labelled by rank.
pub fn snapshot() -> String {
    render(&aggregate())
}

/// Render the Prometheus exposition for pre-aggregated reports. Every
/// metric family carries `# HELP` and `# TYPE` metadata so strict
/// scrapers parse the page.
pub fn render(reports: &[RankReport]) -> String {
    let mut out = String::new();
    // Counters: one family per probe counter with any nonzero value.
    for c in Counter::ALL {
        if reports.iter().all(|rep| rep.counter(c) == 0) {
            continue;
        }
        out.push_str(&format!(
            "# HELP rsparse_{}_total Probe counter `{}`, accumulated per rank.\n",
            c.name(),
            c.name()
        ));
        out.push_str(&format!("# TYPE rsparse_{}_total counter\n", c.name()));
        for rep in reports {
            let v = rep.counter(c);
            if v > 0 {
                out.push_str(&format!(
                    "rsparse_{}_total{{rank=\"{}\"}} {v}\n",
                    c.name(),
                    rank_value(rep)
                ));
            }
        }
    }
    // Spans: total seconds and call counts.
    if reports.iter().any(|rep| !rep.spans.is_empty()) {
        out.push_str(
            "# HELP rsparse_span_seconds_total Inclusive wall-clock seconds per probe span.\n",
        );
        out.push_str("# TYPE rsparse_span_seconds_total counter\n");
        out.push_str("# HELP rsparse_span_calls_total Times each probe span closed.\n");
        out.push_str("# TYPE rsparse_span_calls_total counter\n");
        for rep in reports {
            for s in &rep.spans {
                let rank = rank_value(rep);
                out.push_str(&format!(
                    "rsparse_span_seconds_total{{rank=\"{rank}\",span=\"{}\"}} {:e}\n",
                    s.name, s.total_s
                ));
                out.push_str(&format!(
                    "rsparse_span_calls_total{{rank=\"{rank}\",span=\"{}\"}} {}\n",
                    s.name, s.calls
                ));
            }
        }
    }
    // Histograms: cumulative le-buckets in seconds, plus _sum and _count.
    for h in hist::ALL {
        if reports.iter().all(|rep| rep.hist(h).count == 0) {
            continue;
        }
        out.push_str(&format!(
            "# HELP rsparse_{}_seconds Log2-bucketed `{}` latency in seconds.\n",
            h.name(),
            h.name()
        ));
        out.push_str(&format!("# TYPE rsparse_{}_seconds histogram\n", h.name()));
        for rep in reports {
            let (buckets, sum_ns) = rep.hist_buckets(h);
            let count: u64 = buckets.iter().sum();
            if count == 0 {
                continue;
            }
            let rank = rank_value(rep);
            let mut cum = 0u64;
            for (i, &b) in buckets.iter().enumerate() {
                cum += b;
                // Only emit edges that carry information: the cumulative
                // count changed, or it is the terminal +Inf bucket.
                if b == 0 && i + 1 < hist::BUCKETS {
                    continue;
                }
                let le = if i + 1 >= hist::BUCKETS {
                    "+Inf".to_string()
                } else {
                    format!("{:e}", crate::hist::upper_edge_s(i))
                };
                out.push_str(&format!(
                    "rsparse_{}_seconds_bucket{{rank=\"{rank}\",le=\"{le}\"}} {cum}\n",
                    h.name()
                ));
            }
            out.push_str(&format!(
                "rsparse_{}_seconds_sum{{rank=\"{rank}\"}} {:e}\n",
                h.name(),
                sum_ns as f64 * 1e-9
            ));
            out.push_str(&format!(
                "rsparse_{}_seconds_count{{rank=\"{rank}\"}} {count}\n",
                h.name()
            ));
        }
    }
    // Kernel efficiency: the static work models joined with measured span
    // times (see `crate::model`), one gauge family per derived column.
    let roofline = crate::model::roofline();
    let eff: Vec<(String, crate::model::KernelEfficiency)> = reports
        .iter()
        .flat_map(|rep| {
            let rank = rank_value(rep);
            rep.kernel_efficiency(roofline.as_ref())
                .into_iter()
                .map(move |e| (rank.clone(), e))
        })
        .collect();
    if !eff.is_empty() {
        let gauge = |out: &mut String, name: &str, help: &str, pick: &dyn Fn(&crate::model::KernelEfficiency) -> Option<f64>| {
            let mut wrote_meta = false;
            for (rank, e) in &eff {
                let Some(v) = pick(e) else { continue };
                if !wrote_meta {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
                    wrote_meta = true;
                }
                out.push_str(&format!(
                    "{name}{{rank=\"{rank}\",kernel=\"{}\"}} {v:e}\n",
                    e.name
                ));
            }
        };
        gauge(
            &mut out,
            "rsparse_kernel_gflops",
            "Achieved GF/s per modelled kernel (model flops / measured seconds).",
            &|e| Some(e.gflops),
        );
        gauge(
            &mut out,
            "rsparse_kernel_gbs",
            "Achieved GB/s per modelled kernel (model bytes / measured seconds).",
            &|e| Some(e.gbs),
        );
        gauge(
            &mut out,
            "rsparse_kernel_ai",
            "Arithmetic intensity per modelled kernel (flops per byte).",
            &|e| Some(e.ai),
        );
        gauge(
            &mut out,
            "rsparse_kernel_roofline_pct",
            "Achieved GB/s as a percentage of the calibrated copy-bandwidth roofline.",
            &|e| e.pct_of_roofline,
        );
    }
    out
}

/// Handle to a running metrics server; stop it with [`MetricsServer::stop`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound local address (useful with a `:0` request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

fn answer(mut conn: TcpStream) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(1)));
    // Drain (a prefix of) the request; the response is the same for
    // every path, so parsing is unnecessary.
    let mut buf = [0u8; 1024];
    let _ = conn.read(&mut buf);
    let body = snapshot();
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let _ = conn.write_all(head.as_bytes());
    let _ = conn.write_all(body.as_bytes());
    let _ = conn.flush();
}

/// Start the metrics server on `addr` (e.g. `"127.0.0.1:0"`). Each HTTP
/// request gets a fresh [`snapshot`]. The accept loop runs on its own
/// thread until the returned handle is stopped or dropped.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("rsparse-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(conn) = conn {
                    answer(conn);
                }
            }
        })?;
    Ok(MetricsServer { addr, stop, thread: Some(thread) })
}

/// Start the exporter once per process if `RSPARSE_METRICS_ADDR` is set.
/// Called by the `rcomm` launcher; the server (if any) lives for the
/// rest of the process. Bind failures degrade to a stderr warning —
/// telemetry must never fail a solve.
pub fn maybe_serve_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let Ok(addr) = std::env::var("RSPARSE_METRICS_ADDR") else { return };
        let addr = addr.trim().to_string();
        if addr.is_empty() || addr.eq_ignore_ascii_case("off") {
            return;
        }
        match serve(addr.as_str()) {
            Ok(server) => {
                eprintln!("probe: serving metrics on http://{}/metrics", server.addr());
                // Run for the life of the process.
                std::mem::forget(server);
            }
            Err(e) => eprintln!("probe: RSPARSE_METRICS_ADDR={addr}: bind failed: {e}"),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_answers_with_a_prometheus_snapshot() {
        crate::incr(crate::Counter::PortCalls);
        let server = serve("127.0.0.1:0").expect("bind localhost");
        let addr = server.addr();
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "got: {response}");
        assert!(response.contains("text/plain"));
        assert!(response.contains("rsparse_port_calls_total"));
        server.stop();
    }

    #[test]
    fn snapshot_emits_histogram_families_with_cumulative_buckets() {
        crate::hist::record_ns(crate::hist::Hist::Collective, 1_000);
        crate::hist::record_ns(crate::hist::Hist::Collective, 2_000_000);
        let text = snapshot();
        assert!(text.contains("# TYPE rsparse_collective_seconds histogram"));
        assert!(text.contains("rsparse_collective_seconds_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("rsparse_collective_seconds_count"));
    }
}
