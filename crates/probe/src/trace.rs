//! Causal cross-rank trace contexts.
//!
//! Every solve that starts while tracing is armed gets a **trace id**
//! that is identical on every rank without any communication: ranks are
//! SPMD threads, so the k-th solve begun on each rank thread is the same
//! logical solve, and the id is derived from a per-thread solve counter
//! plus a process-wide launch generation (bumped by the `rcomm`
//! launcher so back-to-back launches do not collide).
//!
//! While a trace is active on a thread, the comm layer stamps each
//! outgoing point-to-point message with a [`Stamp`] — (trace id, sending
//! span, per-sender sequence) — and records [`TraceKind`] events: sends,
//! receives (posted→matched interval), closed spans as phases, and
//! blocking reductions as indexed collectives (the k-th `allreduce` on
//! each rank is the same collective, again by SPMD structure). A
//! post-solve merge over the registry reconstructs the cross-rank
//! happens-before graph; see [`crate::critpath`].
//!
//! Phase events reuse the *same clock reads* as the span table (they are
//! emitted from the span close path), so critical-path per-rank totals
//! reconcile with the summary sink's wait-time attribution table exactly.
//!
//! Arming follows the one-atomic-when-off pattern: `RSPARSE_TRACE=1` (or
//! `port.set("trace", "on")` through any LISI adapter) flips one global
//! atomic; a disarmed build pays a single relaxed load per site. Tracing
//! is independent of `RSPARSE_PROBE` — with the probe off, spans are
//! still timed *inside* traced solves so the attribution table and the
//! trace describe the same instants.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::recorder;

// ---------------------------------------------------------------------------
// Arming switch
// ---------------------------------------------------------------------------

/// Sentinel meaning "not yet initialized from the environment".
const ARMED_UNSET: u8 = u8::MAX;

static ARMED: AtomicU8 = AtomicU8::new(ARMED_UNSET);

/// Parse an on/off switch value (`RSPARSE_TRACE`, `set("trace", ...)`).
/// Returns `None` for unrecognized spellings.
pub fn parse_switch(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Some(true),
        "" | "0" | "off" | "false" | "no" | "none" => Some(false),
        _ => None,
    }
}

/// Whether causal tracing is armed, lazily initialized from
/// `RSPARSE_TRACE` on first use. One relaxed load once initialized.
#[inline]
pub fn armed() -> bool {
    let raw = ARMED.load(Ordering::Relaxed);
    if raw == ARMED_UNSET {
        let on = std::env::var("RSPARSE_TRACE")
            .ok()
            .and_then(|v| parse_switch(&v))
            .unwrap_or(false);
        // Racing initializers compute the same value; either store wins.
        let _ = ARMED.compare_exchange(
            ARMED_UNSET,
            on as u8,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        on
    } else {
        raw != 0
    }
}

/// Arm or disarm tracing (overrides the environment).
pub fn set_armed(on: bool) {
    ARMED.store(on as u8, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// Launch generation; bumped once per SPMD launch *before* rank threads
/// spawn, so every rank of one launch agrees on it and successive
/// launches (whose fresh threads restart their solve counters) get
/// distinct trace ids.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// Bump the launch generation. Called by the `rcomm` launcher; harmless
/// (but pointless) anywhere else.
pub fn advance_generation() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
}

const SOLVE_BITS: u32 = 20;

thread_local! {
    /// Solves begun on this thread while armed (trace-id low bits).
    static SOLVES: Cell<u64> = const { Cell::new(0) };
    /// Active trace id (0 = no trace active on this thread).
    static CUR: Cell<u64> = const { Cell::new(0) };
    /// Per-sender p2p sequence within the active trace.
    static SEND_SEQ: Cell<u64> = const { Cell::new(0) };
    /// Blocking-collective index within the active trace.
    static COLL_IDX: Cell<u64> = const { Cell::new(0) };
    /// Innermost open span name (stamped onto outgoing messages).
    static PHASE: Cell<&'static str> = const { Cell::new("") };
    /// Staging buffer for the active solve's records: hot-path pushes are
    /// a plain thread-local append (no lock, no registry lookup); the
    /// whole batch moves into this thread's recorder once, when the
    /// [`SolveGuard`] closes.
    static STAGE: std::cell::RefCell<Vec<TraceRecord>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Records rejected by the staging budget during the active solve.
    static STAGE_DROPPED: Cell<u64> = const { Cell::new(0) };
}

/// Whether a trace is active on the *current thread* (armed and inside a
/// [`solve_guard`] scope). One relaxed load when disarmed.
#[inline]
pub fn thread_active() -> bool {
    armed() && CUR.with(|c| c.get()) != 0
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Message stamp carried by every in-flight envelope while the sender is
/// tracing: enough to match the receive back to the exact send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Trace id of the sending solve.
    pub trace: u64,
    /// Innermost open span on the sender at send time.
    pub phase: &'static str,
    /// 1-based per-sender sequence number within the trace.
    pub seq: u64,
}

/// What one trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Solve entered its traced region (instant; `t0 == t1`).
    Begin,
    /// Solve left its traced region (instant; `t0 == t1`).
    End,
    /// A span closed; same clock reads as the span table.
    Phase {
        /// Span name.
        name: &'static str,
    },
    /// A point-to-point send was posted (instant; `t0 == t1`).
    Send {
        /// Destination world rank.
        peer: usize,
        /// 1-based per-sender sequence within the trace.
        seq: u64,
        /// Payload element bytes (as the byte counters count).
        bytes: u64,
        /// Innermost open span at send time.
        phase: &'static str,
    },
    /// A blocking receive completed; `t0` = posted, `t1` = matched.
    Recv {
        /// Source world rank.
        peer: usize,
        /// Matching sender sequence (0 when the message was unstamped or
        /// stamped by a different trace).
        src_seq: u64,
        /// Payload element bytes.
        bytes: u64,
    },
    /// A blocking reduction; the k-th on each rank is the same collective.
    Collective {
        /// Operation name (`"allreduce"`).
        op: &'static str,
        /// 1-based per-rank collective index within the trace.
        index: u64,
    },
}

/// One trace event on one rank, timestamped in nanoseconds since the
/// process-wide probe epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Trace id this record belongs to.
    pub trace: u64,
    /// Start timestamp (ns since epoch).
    pub t0_ns: u64,
    /// End timestamp (ns since epoch; equals `t0_ns` for instants).
    pub t1_ns: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// Per-recorder cap on retained trace records, mirroring the chrome
/// event budget: a long armed solve must not grow memory without bound.
/// Deliberately per-thread (checked under the recorder's own trace lock)
/// rather than a process-global atomic — a shared counter would put one
/// contended cache line on every rank's record hot path.
pub(crate) const TRACE_BUDGET: usize = 1 << 17;

#[inline]
fn now_ns() -> u64 {
    recorder::epoch().elapsed().as_nanos() as u64
}

#[inline]
fn push(trace: u64, t0_ns: u64, t1_ns: u64, kind: TraceKind) {
    STAGE.with(|s| {
        let mut stage = s.borrow_mut();
        if stage.len() < TRACE_BUDGET {
            stage.push(TraceRecord { trace, t0_ns, t1_ns, kind });
        } else {
            STAGE_DROPPED.with(|d| d.set(d.get() + 1));
        }
    });
}

/// Move the staged batch into this thread's recorder (one lock per
/// solve). Called when the [`SolveGuard`] closes; the staging `Vec`
/// keeps its capacity, so steady-state tracing never reallocates.
fn flush_stage() {
    STAGE.with(|s| {
        let mut stage = s.borrow_mut();
        let dropped = STAGE_DROPPED.with(Cell::take);
        if stage.is_empty() && dropped == 0 {
            return;
        }
        recorder::with_local(|r| r.trace_extend(&mut stage, dropped));
    });
}

// ---------------------------------------------------------------------------
// Solve scope
// ---------------------------------------------------------------------------

/// RAII scope marking one traced solve on this thread; created by
/// [`solve_guard`]. Records `Begin` on entry and `End` on drop.
#[must_use = "binding the guard keeps the trace active until end of scope"]
pub struct SolveGuard {
    live: bool,
}

/// Open a traced-solve scope. Inert when tracing is disarmed, and inert
/// when a trace is already active on this thread (nested solves — e.g. a
/// smoother's inner Krylov — fold into the enclosing trace).
pub fn solve_guard() -> SolveGuard {
    if !armed() || CUR.with(|c| c.get()) != 0 {
        return SolveGuard { live: false };
    }
    let count = SOLVES.with(|c| {
        let v = c.get() + 1;
        c.set(v);
        v
    });
    let id = (GENERATION.load(Ordering::Relaxed) << SOLVE_BITS)
        | (count & ((1 << SOLVE_BITS) - 1));
    CUR.with(|c| c.set(id));
    SEND_SEQ.with(|c| c.set(0));
    COLL_IDX.with(|c| c.set(0));
    let t = now_ns();
    push(id, t, t, TraceKind::Begin);
    SolveGuard { live: true }
}

impl Drop for SolveGuard {
    fn drop(&mut self) {
        if self.live {
            let id = CUR.with(|c| c.get());
            let t = now_ns();
            push(id, t, t, TraceKind::End);
            CUR.with(|c| c.set(0));
            flush_stage();
        }
    }
}

// ---------------------------------------------------------------------------
// Hooks for the span and comm layers
// ---------------------------------------------------------------------------

/// Span opened: remember it as the innermost phase; returns the previous
/// phase for the guard to restore. Called only when [`thread_active`].
pub(crate) fn push_phase(name: &'static str) -> &'static str {
    PHASE.with(|p| p.replace(name))
}

/// Span closing: restore the enclosing phase.
pub(crate) fn pop_phase(prev: &'static str) {
    PHASE.with(|p| p.set(prev));
}

/// Span closed: record it as a `Phase` (or, for the reduction span, as
/// the next indexed `Collective`) with the span's own clock readings.
pub(crate) fn on_span_close(name: &'static str, t0_ns: u64, dur_ns: u64) {
    if !thread_active() {
        return;
    }
    let id = CUR.with(|c| c.get());
    let kind = if name == "allreduce" {
        let index = COLL_IDX.with(|c| {
            let v = c.get() + 1;
            c.set(v);
            v
        });
        TraceKind::Collective { op: "allreduce", index }
    } else {
        TraceKind::Phase { name }
    };
    push(id, t0_ns, t0_ns + dur_ns, kind);
}

/// A p2p send is about to post to `peer` (world rank): record the `Send`
/// event and hand back the [`Stamp`] to ride on the envelope. `None`
/// when no trace is active on this thread.
pub fn stamp_send(peer: usize, bytes: u64) -> Option<Stamp> {
    if !thread_active() {
        return None;
    }
    let trace = CUR.with(|c| c.get());
    let seq = SEND_SEQ.with(|c| {
        let v = c.get() + 1;
        c.set(v);
        v
    });
    let phase = PHASE.with(|p| p.get());
    let t = now_ns();
    push(trace, t, t, TraceKind::Send { peer, seq, bytes, phase });
    Some(Stamp { trace, phase, seq })
}

/// A blocking receive is being posted: timestamp it if tracing. Pass the
/// result to [`recv_event`] once the message is matched.
#[inline]
pub fn recv_start() -> Option<u64> {
    if thread_active() {
        Some(now_ns())
    } else {
        None
    }
}

/// A blocking receive matched a message from `peer` (world rank):
/// record the posted→matched interval and the sender's sequence (from
/// the envelope's stamp, when it belongs to the same trace).
pub fn recv_event(peer: usize, stamp: Option<Stamp>, bytes: u64, t0_ns: u64) {
    if !thread_active() {
        return;
    }
    let trace = CUR.with(|c| c.get());
    let src_seq = match stamp {
        Some(s) if s.trace == trace => s.seq,
        _ => 0,
    };
    push(trace, t0_ns, now_ns(), TraceKind::Recv { peer, src_seq, bytes });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global armed switch.
    static ARM_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn switch_parsing_accepts_common_spellings() {
        assert_eq!(parse_switch("1"), Some(true));
        assert_eq!(parse_switch(" ON "), Some(true));
        assert_eq!(parse_switch("off"), Some(false));
        assert_eq!(parse_switch(""), Some(false));
        assert_eq!(parse_switch("maybe"), None);
    }

    #[test]
    fn disarmed_guard_is_inert_and_stamps_are_none() {
        let _l = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(false);
        let g = solve_guard();
        assert!(!thread_active());
        assert!(stamp_send(0, 8).is_none());
        assert!(recv_start().is_none());
        drop(g);
    }

    #[test]
    fn armed_guard_activates_and_sequences_sends() {
        let _l = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(true);
        {
            let _g = solve_guard();
            assert!(thread_active());
            let a = stamp_send(1, 8).unwrap();
            let b = stamp_send(2, 8).unwrap();
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.seq, 1);
            assert_eq!(b.seq, 2);
            // Nested solves fold into the enclosing trace.
            let inner = solve_guard();
            assert!(!inner.live);
        }
        assert!(!thread_active());
        set_armed(false);
    }
}
