//! Static work/traffic models and the machine bandwidth roofline.
//!
//! Wall-clock spans say how *long* a kernel ran; a [`KernelModel`] says
//! how much work one invocation *should* move — flops and bytes derived
//! once from the cached operator plans at setup time (CSR row pointers,
//! halo send lists, level schedules), never measured on the hot path.
//! Joining the two at render time yields achieved GF/s, GB/s and
//! arithmetic intensity per kernel and per rank
//! ([`crate::RankReport::kernel_efficiency`]).
//!
//! A one-shot STREAM-style copy/triad micro-calibration
//! (`RSPARSE_CALIBRATE=1`, cached to `.rsparse_calibration.json`) gives
//! the per-host attainable bandwidth so the same join can also report
//! "% of attainable" — the roofline column in the summary sink, the
//! Prometheus exporter and the solve ledger.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

use crate::counter::Counter;
use crate::recorder;

/// What one "unit" of a modelled kernel means when joining the model
/// with the measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkUnit {
    /// One unit per recorded call of the model's span (e.g. one matvec).
    SpanCalls,
    /// One unit per increment of a counter (e.g. one payload byte for
    /// collective reductions, where message sizes vary per call).
    Counter(Counter),
}

/// Which measured time the model joins against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeBase {
    /// The span's total (inclusive) seconds — leaf kernels.
    Total,
    /// The span's self (exclusive) seconds — umbrella spans like
    /// `ksp_solve` whose children (matvec, allreduce, sptrsv) carry
    /// their own models.
    SelfTime,
}

/// A static per-unit work/traffic model attached to a probe span,
/// computed once from the cached plans at setup time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelModel {
    /// Span whose measured time and (for [`WorkUnit::SpanCalls`]) call
    /// count the model joins against.
    pub span: &'static str,
    /// Floating-point operations per unit.
    pub flops: u64,
    /// Bytes touched per unit (streaming model: every value, index and
    /// vector element counted once per pass).
    pub bytes: u64,
    /// Unit semantics.
    pub unit: WorkUnit,
    /// Time base for the join.
    pub time: TimeBase,
    /// Right-hand sides the modelled unit sweeps over (1 for single-RHS
    /// kernels). Batched kernels amortize the matrix read across `nrhs`
    /// vector streams, so their per-unit flops/bytes are NOT `nrhs`
    /// multiples of the single-RHS model — diffs must key on
    /// `(kernel, nrhs)` to compare like with like.
    pub nrhs: u64,
}

/// Register (or replace) the model for kernel `name` on the current
/// thread's recorder. Called from plan builders at setup time; the last
/// registered plan wins, matching "the operator this rank solves with".
pub fn register(name: &'static str, model: KernelModel) {
    recorder::with_local(|r| r.set_model(name, model));
}

/// Streaming-traffic model of one CSR-shaped sweep: `flops = 2·nnz`
/// (multiply + add per stored entry) and one pass over values (8·nnz),
/// column indices (8·nnz), source gathers (8·nnz), row pointers
/// (8·(rows+1)) and destination writes (8·rows).
///
/// The model is built from the *logical* CSR pattern, so SELL-C-σ and
/// block-CSR plans of the same matrix produce bit-identical numbers —
/// efficiency comparisons across formats share one denominator.
pub fn csr_traffic(rows: usize, nnz: usize) -> (u64, u64) {
    let flops = 2 * nnz as u64;
    let bytes = 24 * nnz as u64 + 16 * rows as u64 + 8;
    (flops, bytes)
}

/// Streaming-traffic model of one fused multi-vector sweep over `k`
/// right-hand sides: the matrix streams (values, column indices, row
/// pointers) are read **once**, while the source gathers and destination
/// writes scale with `k` — the whole point of the batched kernels.
/// Reduces to [`csr_traffic`] at `k = 1`.
pub fn csr_traffic_multi(rows: usize, nnz: usize, k: usize) -> (u64, u64) {
    let k = k as u64;
    let flops = 2 * k * nnz as u64;
    let matrix = 16 * nnz as u64 + 8 * rows as u64 + 8;
    let vectors = k * (8 * nnz as u64 + 8 * rows as u64);
    (flops, matrix + vectors)
}

// ---------------------------------------------------------------------------
// Roofline calibration
// ---------------------------------------------------------------------------

/// Measured memory-bandwidth roofline for this host, from the
/// STREAM-style copy/triad micro-calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Best copy bandwidth (`c[i] = a[i]`; 16 bytes/element), GB/s. This
    /// is the attainable-bandwidth ceiling the "% of roofline" columns
    /// divide by.
    pub copy_gbs: f64,
    /// Best triad bandwidth (`a[i] = b[i] + s·c[i]`; 24 bytes/element),
    /// GB/s.
    pub triad_gbs: f64,
}

/// On-disk cache name for the calibration (written next to the working
/// directory the run started in; gitignored).
pub const CALIBRATION_FILE: &str = ".rsparse_calibration.json";

const CALIBRATION_SCHEMA: &str = "rsparse-calibration-v1";

/// STREAM-style array length: 4 Mi doubles = 32 MiB per array, far past
/// any private cache, so the sweep measures memory bandwidth.
const STREAM_LEN: usize = 1 << 22;
const STREAM_REPS: usize = 3;

/// Run the copy/triad calibration now (a few hundred milliseconds) and
/// return the best-of-[`STREAM_REPS`] bandwidths.
pub fn calibrate() -> Roofline {
    let mut a = vec![1.0f64; STREAM_LEN];
    let b = vec![2.0f64; STREAM_LEN];
    let mut c = vec![0.0f64; STREAM_LEN];
    let mut copy_gbs = 0.0f64;
    let mut triad_gbs = 0.0f64;
    for _ in 0..STREAM_REPS {
        let t0 = Instant::now();
        c.copy_from_slice(&a);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&c);
        copy_gbs = copy_gbs.max(16.0 * STREAM_LEN as f64 / dt / 1e9);

        let t0 = Instant::now();
        for i in 0..STREAM_LEN {
            a[i] = b[i] + 0.42 * c[i];
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&a);
        triad_gbs = triad_gbs.max(24.0 * STREAM_LEN as f64 / dt / 1e9);
    }
    Roofline { copy_gbs, triad_gbs }
}

fn render_calibration(r: &Roofline) -> String {
    format!(
        "{{\"schema\":\"{CALIBRATION_SCHEMA}\",\"copy_gbs\":{:.3},\"triad_gbs\":{:.3}}}\n",
        r.copy_gbs, r.triad_gbs
    )
}

/// Extract `"key": <number>` from the tiny calibration document. The
/// probe crate takes no runtime dependencies, so the parser is the
/// minimal hand-rolled scan the fixed writer format needs.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &doc[doc.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn load_calibration(path: &Path) -> Option<Roofline> {
    let doc = fs::read_to_string(path).ok()?;
    if !doc.contains(CALIBRATION_SCHEMA) {
        return None;
    }
    let copy_gbs = json_number(&doc, "copy_gbs")?;
    let triad_gbs = json_number(&doc, "triad_gbs")?;
    (copy_gbs > 0.0 && triad_gbs > 0.0).then_some(Roofline { copy_gbs, triad_gbs })
}

fn resolve_roofline() -> Option<Roofline> {
    let path = PathBuf::from(CALIBRATION_FILE);
    let knob = std::env::var("RSPARSE_CALIBRATE").unwrap_or_default();
    let knob = knob.trim().to_ascii_lowercase();
    match knob.as_str() {
        "off" | "0" | "none" | "false" => return None,
        "force" => {}
        _ => {
            if let Some(r) = load_calibration(&path) {
                return Some(r);
            }
            if !matches!(knob.as_str(), "1" | "on" | "true" | "force") {
                return None;
            }
        }
    }
    let r = calibrate();
    // Cache for every later run on this host; failure to write only
    // costs recalibration next time.
    let _ = fs::write(&path, render_calibration(&r));
    Some(r)
}

/// The host roofline, if available: the cached calibration when
/// `.rsparse_calibration.json` exists, a fresh (then cached) one when
/// `RSPARSE_CALIBRATE=1` asks for it, `None` otherwise. Resolved once
/// per process.
pub fn roofline() -> Option<Roofline> {
    static ROOFLINE: OnceLock<Option<Roofline>> = OnceLock::new();
    *ROOFLINE.get_or_init(resolve_roofline)
}

/// One kernel's model joined with its measurements on one rank — the row
/// rendered by the summary sink, the Prometheus exporter and the solve
/// ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEfficiency {
    /// Kernel name the model was registered under (e.g. `"spmv"`).
    pub name: &'static str,
    /// Span the measurements came from.
    pub span: &'static str,
    /// Units executed (span calls or counter value, per the model).
    pub units: u64,
    /// Measured seconds (span total or self time, per the model).
    pub seconds: f64,
    /// Modelled flops moved (`units · model.flops`).
    pub flops: u64,
    /// Modelled bytes touched (`units · model.bytes`).
    pub bytes: u64,
    /// Achieved GF/s (`flops / seconds / 1e9`).
    pub gflops: f64,
    /// Achieved GB/s (`bytes / seconds / 1e9`).
    pub gbs: f64,
    /// Arithmetic intensity (flops per byte).
    pub ai: f64,
    /// Achieved GB/s as a percentage of the roofline copy bandwidth;
    /// `None` when no calibration is available.
    pub pct_of_roofline: Option<f64>,
    /// Right-hand sides per modelled unit (from the model; 1 for
    /// single-RHS kernels).
    pub nrhs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_traffic_counts_every_stream_once() {
        let (flops, bytes) = csr_traffic(10, 50);
        assert_eq!(flops, 100);
        // 24·nnz + 16·rows + 8 row-pointer tail.
        assert_eq!(bytes, 24 * 50 + 16 * 10 + 8);
    }

    #[test]
    fn csr_traffic_multi_amortizes_the_matrix_read() {
        // k = 1 reduces exactly to the single-RHS model.
        assert_eq!(csr_traffic_multi(10, 50, 1), csr_traffic(10, 50));
        // k = 8: flops scale with k, but only the vector streams do —
        // the matrix (values + indices + row pointers) is read once.
        let (flops, bytes) = csr_traffic_multi(10, 50, 8);
        assert_eq!(flops, 8 * 100);
        let matrix = 16 * 50 + 8 * 10 + 8;
        let vectors = 8 * (8 * 50 + 8 * 10);
        assert_eq!(bytes, matrix + vectors);
        assert!(bytes < 8 * csr_traffic(10, 50).1);
    }

    #[test]
    fn calibration_document_round_trips() {
        let r = Roofline { copy_gbs: 12.345, triad_gbs: 9.876 };
        let doc = render_calibration(&r);
        assert_eq!(json_number(&doc, "copy_gbs"), Some(12.345));
        assert_eq!(json_number(&doc, "triad_gbs"), Some(9.876));
        let dir = std::env::temp_dir().join("rsparse_calibration_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(CALIBRATION_FILE);
        fs::write(&path, &doc).unwrap();
        let loaded = load_calibration(&path).expect("load");
        assert_eq!(loaded, r);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn models_register_last_wins() {
        let model = KernelModel {
            span: "work",
            flops: 7,
            bytes: 11,
            unit: WorkUnit::SpanCalls,
            time: TimeBase::Total,
            nrhs: 1,
        };
        register("test_kernel", model);
        register("test_kernel", KernelModel { bytes: 13, ..model });
        let models = recorder::with_local(|r| r.models_snapshot());
        assert_eq!(models.get("test_kernel").unwrap().bytes, 13);
    }
}
